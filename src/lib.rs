//! # psh — Parallel Spanners and Hopsets
//!
//! A full reproduction of *"Improved Parallel Algorithms for Spanners and
//! Hopsets"* (Miller, Peng, Vladu, Xu — SPAA 2015) as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`psh_graph`] | CSR graphs, generators, parallel BFS / bucketed SSSP / hop-limited Bellman–Ford, connectivity, quotient graphs |
//! | [`psh_pram`] | the work/depth (PRAM) cost model every algorithm reports in |
//! | [`psh_cluster`] | exponential start time clustering (Algorithm 1) |
//! | [`psh_core`] | spanners (Theorem 1.1), hopsets (Theorem 1.2), the approximate-distance oracle, Appendices B–C |
//! | [`psh_baselines`] | greedy spanner, Baswana–Sen, sampled-clique and sampled-hierarchy hopsets |
//!
//! This facade re-exports everything; `use psh::prelude::*` pulls in the
//! common working set. See the `examples/` directory for runnable tours
//! and `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

pub use psh_baselines as baselines;
pub use psh_cluster as cluster;
pub use psh_core as core;
pub use psh_graph as graph;
pub use psh_pram as pram;

/// The common working set: graph types, generators, the clustering, the
/// spanner/hopset constructions, and the oracle.
pub mod prelude {
    pub use psh_cluster::{est_cluster, Clustering, ExponentialShifts};
    pub use psh_core::hopset::{build_hopset, Hopset, HopsetParams, WeightClassDecomposition};
    pub use psh_core::oracle::ApproxShortestPaths;
    pub use psh_core::spanner::{unweighted_spanner, weighted_spanner, Spanner};
    pub use psh_graph::{generators, CsrGraph, Edge, VertexId, Weight, INF};
    pub use psh_pram::Cost;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let g = generators::path(4);
        assert_eq!(g.n(), 4);
        let c = Cost::new(1, 1);
        assert_eq!(c.work, 1);
    }
}
