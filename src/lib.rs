//! # psh — Parallel Spanners and Hopsets
//!
//! A full reproduction of *"Improved Parallel Algorithms for Spanners and
//! Hopsets"* (Miller, Peng, Vladu, Xu — SPAA 2015) as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`psh_exec`] | the real parallel execution layer: thread pool, deterministic combinators, [`ExecutionPolicy`](psh_exec::ExecutionPolicy) |
//! | [`psh_graph`] | CSR graphs and the `GraphView` abstraction (arena-backed `CsrView`s), generators, the shared frontier engine, parallel BFS / bucketed SSSP / Δ-stepping / hop-limited Bellman–Ford, connectivity, quotient graphs |
//! | [`psh_pram`] | the work/depth (PRAM) cost model every algorithm reports in |
//! | [`psh_cluster`] | exponential start time clustering (Algorithm 1) |
//! | [`psh_core`] | spanners (Theorem 1.1), hopsets (Theorem 1.2), the approximate-distance oracle, Appendices B–C |
//! | [`psh_baselines`] | greedy spanner, Baswana–Sen, sampled-clique and sampled-hierarchy hopsets |
//! | [`psh_net`] | the TCP serving tier: length-prefixed wire protocol, multi-threaded [`NetServer`](psh_net::NetServer) feeding the shared `OracleService`, blocking [`NetClient`](psh_net::NetClient) |
//!
//! ## The pipeline API
//!
//! Constructions are driven through the typed builders of [`pipeline`]:
//! each consumes a [`CsrGraph`](psh_graph::CsrGraph) plus a
//! [`pipeline::Seed`] and returns a [`pipeline::Run`] — artifact, cost,
//! and the seed that produced it — or a typed
//! [`pipeline::PshError`] instead of panicking:
//!
//! ```
//! use psh::prelude::*;
//!
//! let g = generators::grid(10, 10);
//! let run = SpannerBuilder::unweighted(2.0).seed(Seed(42)).build(&g).unwrap();
//! println!("spanner: {} edges, {}", run.artifact.size(), run.cost);
//! assert!(run.artifact.is_subgraph_of(&g));
//! ```
//!
//! This facade re-exports everything; `use psh::prelude::*` pulls in the
//! common working set. See the `examples/` directory for runnable tours
//! and the README for a quickstart; the experiment binaries live in
//! `crates/bench/src/bin/`.

pub use psh_baselines as baselines;
pub use psh_cluster as cluster;
pub use psh_core as core;
pub use psh_exec as exec;
pub use psh_graph as graph;
pub use psh_net as net;
pub use psh_pram as pram;

pub mod pipeline;

/// The common working set: graph types and generators, the pipeline
/// builders with their `Seed`/`Run`/error vocabulary, the execution
/// policy that selects sequential vs pooled execution, the artifact
/// types the builders produce, the snapshot serving layer, the
/// concurrent [`OracleService`](psh_core::service::OracleService)
/// front, the TCP tier's client/server pair, and the cost model.
pub mod prelude {
    pub use crate::pipeline::{
        ClusterBuilder, ClusterError, HopsetArtifact, HopsetBuilder, HopsetKind, OracleBuilder,
        OracleMode, PshError, Run, Seed, SpannerBuilder, SpannerKind,
    };
    pub use psh_cluster::{Clustering, ExponentialShifts};
    pub use psh_core::distance::{DistanceOracle, OracleDescriptor};
    pub use psh_core::hopset::{Hopset, HopsetParams, WeightClassDecomposition};
    pub use psh_core::oracle::{ApproxShortestPaths, QueryResult};
    pub use psh_core::service::{OracleService, ServiceConfig, ServiceStats};
    pub use psh_core::shard::{
        OverlayPart, ShardPlan, ShardedOracle, ShardedOracleBuilder, ShardedParts,
        ShardedReloadReport, ShardedReloader,
    };
    pub use psh_core::snapshot::{self, OracleMeta, SnapshotError};
    pub use psh_core::spanner::Spanner;
    pub use psh_exec::{ExecutionPolicy, Executor};
    pub use psh_graph::{
        generators, CompressedCsr, CompressedView, CsrGraph, CsrView, DeltaError, DeltaOp, Edge,
        GraphDelta, GraphView, SplitArena, VertexId, Weight, INF,
    };
    pub use psh_net::{
        NetClient, NetServer, ProtocolError, ReloadSummary, ServerConfig, ServerStats, WireStats,
    };
    pub use psh_pram::Cost;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let g = generators::path(4);
        assert_eq!(g.n(), 4);
        let c = Cost::new(1, 1);
        assert_eq!(c.work, 1);
        let run = SpannerBuilder::unweighted(2.0)
            .seed(Seed(1))
            .build(&g)
            .unwrap();
        assert_eq!(run.artifact.size(), 3, "a path is its own spanner");
    }
}
