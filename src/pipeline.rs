//! # The pipeline layer — one coherent way to build everything
//!
//! Every construction in the reproduction is driven through a typed
//! builder that consumes a [`CsrGraph`](psh_graph::CsrGraph) plus a
//! [`Seed`] and returns `Result<Run<A>, _>`:
//!
//! | builder | artifact | paper result |
//! |---|---|---|
//! | [`ClusterBuilder`] | [`Clustering`](psh_cluster::Clustering) | Algorithm 1 (Lemmas 2.1–2.3) |
//! | [`SpannerBuilder`] | [`Spanner`](psh_core::Spanner) | Theorem 1.1 (Algorithms 2–3) |
//! | [`HopsetBuilder`] | [`HopsetArtifact`] | Theorem 1.2 (§4, §5, Appendix C) |
//! | [`OracleBuilder`] | [`ApproxShortestPaths`](psh_core::ApproxShortestPaths) | Theorem 1.2 end-to-end |
//!
//! The [`Run`] wrapper is the pipeline's unit of account: it carries the
//! artifact, the [`Cost`](psh_pram::Cost) in the paper's work/depth
//! currency, and the [`Seed`] that produced it — so any run can be
//! replayed, compared, or cached by `(input, parameters, seed)`.
//! Errors are [`PshError`] values ([`ClusterError`] at the clustering
//! layer), never panics.
//!
//! ```
//! use psh::pipeline::{HopsetBuilder, OracleBuilder, Seed, SpannerBuilder};
//! use psh::prelude::*;
//!
//! let g = generators::grid(16, 16);
//!
//! // a 3-stretch-class spanner, reproducible by its seed
//! let spanner = SpannerBuilder::unweighted(3.0).seed(Seed(7)).build(&g)?;
//! assert!(spanner.artifact.is_subgraph_of(&g));
//!
//! // the same seed rebuilds the identical artifact
//! let again = SpannerBuilder::unweighted(3.0).seed(spanner.seed).build(&g)?;
//! assert_eq!(again.artifact, spanner.artifact);
//!
//! // a hopset and the end-to-end distance oracle
//! let hopset = HopsetBuilder::unweighted().epsilon(0.5).seed(Seed(8)).build(&g)?;
//! assert!(hopset.artifact.size() > 0);
//! let oracle = OracleBuilder::new().seed(Seed(9)).build(&g)?;
//! let (answer, _) = oracle.artifact.query(0, 255);
//! assert!(answer.distance >= oracle.artifact.query_exact(0, 255) as f64);
//!
//! // invalid parameters are typed errors, not panics
//! assert!(SpannerBuilder::unweighted(0.0).build(&g).is_err());
//! # Ok::<(), psh::pipeline::PshError>(())
//! ```
//!
//! A finished [`Run`] is also the unit of **serving**: snapshot an oracle
//! run with [`psh_core::snapshot`] (`write_oracle` /
//! `OracleMeta::of_run`), and any later process reloads it and answers
//! query batches through
//! [`ApproxShortestPaths::query_batch`](psh_core::ApproxShortestPaths::query_batch)
//! without re-running the preprocessing — byte-identical to the fresh
//! build for every [`ExecutionPolicy`](psh_exec::ExecutionPolicy).
//!
//! The pre-builder free functions (`est_cluster`, `unweighted_spanner`,
//! `weighted_spanner`, `build_hopset`, the `ApproxShortestPaths`
//! constructors) are gone: the builders are the single construction
//! surface. Callers that thread their own RNG use each builder's
//! `build_with_rng` spine, which the `builder_equivalence` suite proves
//! byte-identical to seeded `build` calls.

pub use psh_cluster::api::{ClusterBuilder, Run, Seed};
pub use psh_cluster::error::ClusterError;
pub use psh_core::api::{
    HopsetArtifact, HopsetBuilder, HopsetKind, OracleBuilder, OracleMode, SpannerBuilder,
    SpannerKind,
};
pub use psh_core::error::PshError;
