//! Connectivity via exponential start time clustering — the [SDB14]
//! application the paper cites (§1: "the clustering algorithm itself has
//! properties suitable for reducing the communication required in
//! parallel connectivity algorithms").
//!
//! Repeatedly cluster and contract: each ESTC round shrinks every
//! component to a point in O(β⁻¹ log n) rounds while cutting few edges,
//! so a handful of contraction rounds suffices. We verify the result
//! against the union-find engine.
//!
//! Run with: `cargo run --release --example parallel_connectivity`

use psh::graph::connectivity::components_union_find;
use psh::graph::quotient::quotient;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // a disconnected multi-component graph
    let mut rng = StdRng::seed_from_u64(20150625);
    let mut edges: Vec<Edge> = Vec::new();
    let mut offset = 0u32;
    for island in 0..5 {
        let n = 400 + island * 100;
        let g = generators::connected_random(n, 2 * n, &mut rng);
        edges.extend(
            g.edges()
                .iter()
                .map(|e| Edge::new(e.u + offset, e.v + offset, 1)),
        );
        offset += n as u32;
    }
    let g = CsrGraph::from_edges(offset as usize, edges);
    println!("graph: n = {}, m = {}, 5 islands", g.n(), g.m());

    // ESTC-contraction loop
    let mut current = g.clone();
    // composed labels: component label of each original vertex
    let mut labels: Vec<u32> = (0..g.n() as u32).collect();
    let mut round = 0;
    let mut total = Cost::ZERO;
    let root_seed = Seed(20150625);
    while current.m() > 0 {
        round += 1;
        let run = ClusterBuilder::new(0.25)
            .seed(root_seed.child(round))
            .build(&current)
            .expect("valid beta");
        let (c, cost) = (run.artifact, run.cost);
        let (q, qcost) = quotient(&current, &c.cluster_id, c.num_clusters);
        // compose: each original vertex follows its current-graph vertex
        // into the cluster that vertex joined (quotient vertices = dense
        // cluster ids)
        for l in labels.iter_mut() {
            *l = c.cluster_id[*l as usize];
        }
        println!(
            "  round {round}: {} vertices, {} edges remain ({cost} + {qcost})",
            q.graph.n(),
            q.graph.m()
        );
        total = total.then(cost).then(qcost);
        current = q.graph;
    }
    println!("\nconverged in {round} contraction rounds, total {total}");
    println!("components found: {}", current.n());

    let (reference, _) = components_union_find(&g);
    assert_eq!(current.n(), reference.count, "must match union-find");
    println!(
        "matches union-find reference ({} components) ✓",
        reference.count
    );
}
