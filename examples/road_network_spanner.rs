//! Weighted spanner on a synthetic road network (Theorem 3.3).
//!
//! Random geometric graphs have road-network-like locality: weights are
//! Euclidean lengths, so the weight ratio U is moderate and distances are
//! strongly metric. We build an O(k)-spanner, report the compression rate
//! and the stretch distribution, and contrast with the Baswana–Sen
//! baseline.
//!
//! Run with: `cargo run --release --example road_network_spanner`

use psh::baselines::baswana_sen::baswana_sen_spanner;
use psh::core::spanner::verify::stretch_sampled;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(20150625);
    let g = generators::random_geometric(4_000, 0.035, &mut rng);
    println!(
        "road network: n = {}, m = {}, weight ratio U = {:.0}",
        g.n(),
        g.m(),
        g.weight_ratio()
    );

    for k in [2.0f64, 4.0] {
        let run = SpannerBuilder::weighted(k)
            .seed(Seed(k as u64))
            .build(&g)
            .expect("valid parameters");
        let (ours, cost) = (run.artifact, run.cost);
        let (max_s, mean_s) = stretch_sampled(&g, &ours, 400, &mut rng);
        println!("\nESTC spanner, k = {k}:");
        println!(
            "  {} edges kept ({:.1}% of m), {cost}",
            ours.size(),
            100.0 * ours.size() as f64 / g.m() as f64
        );
        println!("  sampled stretch: max {max_s:.2}, mean {mean_s:.2}");

        let (bs, _) = baswana_sen_spanner(&g, k as usize, &mut rng);
        let (bmax, bmean) = stretch_sampled(&g, &bs, 400, &mut rng);
        println!(
            "  baswana-sen:   {} edges, stretch max {bmax:.2} mean {bmean:.2}",
            bs.size()
        );
    }
}
