//! Approximate shortest paths with hopsets vs exact engines
//! (Theorem 1.2 / Corollary 4.5 in action).
//!
//! Hopsets pay off when shortest paths have many hops, so this example
//! uses a long, skinny grid (diameter ≈ n/4): plain parallel BFS needs a
//! round per level, while the hopset-backed search settles distances in a
//! fraction of the rounds at a small accuracy cost.
//!
//! Run with: `cargo run --release --example hopset_sssp`

use psh::graph::traversal::bellman_ford::hop_limited_pair;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (rows, cols) = (4usize, 1_250usize);
    let g = generators::grid(rows, cols); // diameter rows+cols-2 ≈ 1252
    let n = g.n();
    println!(
        "grid {rows}×{cols}: n = {n}, m = {}, diameter = {}",
        g.m(),
        rows + cols - 2
    );

    let run = HopsetBuilder::unweighted()
        .params(HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        })
        .seed(Seed(20150625))
        .build(&g)
        .expect("valid parameters");
    let (artifact, pre) = (run.artifact, run.cost);
    let hopset = artifact.into_single();
    let extra = hopset.to_extra_edges();
    let mut rng = StdRng::seed_from_u64(20150625);
    println!(
        "hopset: {} edges ({} star, {} clique, {} levels), preprocessing {pre}",
        hopset.size(),
        hopset.star_count,
        hopset.clique_count,
        hopset.levels
    );

    println!(
        "\n{:>6} {:>6} {:>8} {:>10} {:>10} {:>8}",
        "s", "t", "exact", "approx", "err", "rounds"
    );
    let mut worst = 1.0f64;
    for _ in 0..8 {
        let s = rng.random_range(0..n as u32);
        let t = rng.random_range(0..n as u32);
        let exact = psh::graph::traversal::dijkstra::dijkstra_pair(&g, s, t);
        let (with_h, rounds, _) = hop_limited_pair(&g, Some(&extra), s, t, n);
        let err = with_h as f64 / exact.max(1) as f64;
        worst = worst.max(err);
        println!("{s:>6} {t:>6} {exact:>8} {with_h:>10} {err:>10.3} {rounds:>8}");
    }
    println!("\nworst observed factor: {worst:.3} (Lemma 4.2 budget: 1 + ε·log_ρ n)");
}
