//! Snapshot round trip: preprocess a graph into a distance oracle, save
//! it to a versioned binary snapshot, reload it (as a serving process
//! would), and answer a query batch — verifying the reloaded oracle
//! agrees with the fresh build answer for answer and cost for cost.
//!
//! Run with: `cargo run --release --example snapshot_roundtrip`

use psh::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Preprocess (the expensive, once-per-graph step) ---------------
    let g = generators::grid(40, 40);
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let run = OracleBuilder::new()
        .params(params)
        .seed(Seed(9))
        .build(&g)?;
    println!(
        "preprocessed n = {}, m = {}: hopset size {}, {}",
        g.n(),
        g.m(),
        run.artifact.hopset_size(),
        run.cost
    );

    // --- 2. Save the snapshot (magic + version + oracle body) -------------
    let path = std::env::temp_dir().join("psh_snapshot_roundtrip.snap");
    let meta = OracleMeta::of_run(&run, params);
    snapshot::save_oracle(&path, &run.artifact, &meta)?;
    println!(
        "snapshot saved to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // --- 3. Reload — a serving process starts here, no rebuild ------------
    let (served, meta_back) = snapshot::load_oracle(&path)?;
    assert_eq!(
        meta_back.seed,
        Seed(9),
        "provenance travels with the artifact"
    );

    // --- 4. Serve a batch on the pool and cross-check ----------------------
    let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i, 1599 - i)).collect();
    let policy = ExecutionPolicy::Parallel { threads: 4 };
    let (fresh, fresh_cost) = run.artifact.query_batch(&pairs, policy);
    let (loaded, loaded_cost) = served.query_batch(&pairs, policy);
    assert_eq!(fresh, loaded, "answers are byte-identical");
    assert_eq!(fresh_cost, loaded_cost, "and so is the work/depth cost");
    println!(
        "served {} queries: answers + cost identical to the fresh build ({})",
        pairs.len(),
        loaded_cost
    );

    // malformed snapshots are errors, not panics
    let err = snapshot::read_oracle(&b"not a snapshot"[..]).unwrap_err();
    println!("and corrupt input reports: {err}");

    std::fs::remove_file(&path).ok();
    Ok(())
}
