//! Figure 3 reproduction (E15): how an s–t path interacts with the
//! decomposition and where the star/clique shortcuts land.
//!
//! The paper's Figure 3 shows a path crossing several clusters; the first
//! and last *large* clusters it touches are bridged by two star edges and
//! one clique edge (u → c1 → c2 → v). This example builds a long path
//! graph, runs one level of the hopset decomposition by hand, and prints
//! an ASCII rendering of the same picture plus the realized shortcut.
//!
//! Run with: `cargo run --release --example figure3_shortcut`

use psh::prelude::*;

fn main() {
    let n = 120usize;
    let g = generators::path(n);
    let beta = 0.12;

    // One clustering level, coarse enough for a handful of clusters; scan
    // seeds until the draw has at least two above-average clusters so the
    // picture shows a genuine clique jump (the decomposition is random —
    // Figure 3 depicts the typical case, not every draw).
    let builder = ClusterBuilder::new(beta);
    let clustering = (0..200u64)
        .map(|seed| {
            builder
                .clone()
                .seed(Seed(20150625 + seed))
                .build(&g)
                .expect("valid beta")
                .artifact
        })
        .find(|c| {
            let sizes = c.sizes();
            let mean = n / c.num_clusters.max(1);
            sizes.iter().filter(|&&s| s >= mean).count() >= 2
        })
        .expect("some draw has two large clusters");
    println!(
        "path of {n} vertices, {} clusters from ESTC(β = {beta})\n",
        clustering.num_clusters
    );

    // Render the path: one symbol per vertex, letters = cluster ids.
    let symbols: Vec<char> = (b'a'..=b'z').map(char::from).collect();
    let line: String = (0..n)
        .map(|v| symbols[clustering.cluster_id[v] as usize % symbols.len()])
        .collect();
    for chunk in line.as_bytes().chunks(60) {
        println!("  {}", String::from_utf8_lossy(chunk));
    }

    // Declare clusters "large" above the mean size (the ρ-threshold of
    // Algorithm 4, simplified for the illustration).
    let sizes = clustering.sizes();
    let mean = g.n() / clustering.num_clusters.max(1);
    let large: Vec<usize> = (0..clustering.num_clusters)
        .filter(|&c| sizes[c] >= mean)
        .collect();
    println!(
        "\nlarge clusters (≥ mean size {mean}): {:?}",
        large
            .iter()
            .map(|&c| symbols[c % symbols.len()])
            .collect::<Vec<_>>()
    );

    // Walk the s-t path (the path graph itself) like Lemma 4.2's proof:
    // find the first vertex u in a large cluster and the last vertex v in
    // a large cluster, then shortcut u -> c(u) -> c(v) -> v.
    let is_large = |v: usize| large.contains(&(clustering.cluster_id[v] as usize));
    let u = (0..n).find(|&v| is_large(v));
    // last path vertex in a large cluster *different* from u's, so the
    // clique edge in the picture is a real inter-cluster jump
    let v = u.and_then(|u| {
        (0..n)
            .rev()
            .find(|&v| is_large(v) && clustering.cluster_id[v] != clustering.cluster_id[u])
    });
    match (u, v) {
        (Some(u), Some(v)) if u < v => {
            let cu = clustering.center[u] as usize;
            let cv = clustering.center[v] as usize;
            println!("\nFigure 3 realized on this instance:");
            println!("  s = 0 … u = {u} ─(star {})→ c1 = {cu}", u.abs_diff(cu));
            println!("            c1 ─(clique {})→ c2 = {cv}", cu.abs_diff(cv));
            println!(
                "            c2 ─(star {})→ v = {v} … t = {}",
                cv.abs_diff(v),
                n - 1
            );
            let shortcut = u.abs_diff(cu) + cu.abs_diff(cv) + cv.abs_diff(v);
            let replaced = v - u;
            println!(
                "\nreplaced a {replaced}-hop middle segment with 3 shortcut edges \
                 of total weight {shortcut} (additive distortion {})",
                shortcut as i64 - replaced as i64
            );
        }
        _ => println!("\n(no two large clusters on this seed — rerun with another seed)"),
    }
}
