//! Quickstart: build a graph, construct a spanner and a distance oracle
//! through the pipeline builders, and answer approximate queries.
//!
//! Run with: `cargo run --release --example quickstart`

use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PshError> {
    // --- 1. A graph -------------------------------------------------------
    // 2000-vertex connected random graph with 6000 extra edges.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::connected_random(2_000, 6_000, &mut rng);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // --- 2. A spanner (Theorem 1.1) ---------------------------------------
    // O(k)-stretch, expected O(n^{1+1/k}) edges. Here k = 3. The returned
    // Run carries the artifact, its work/depth cost, and the seed — the
    // same seed always rebuilds the identical spanner.
    let spanner = SpannerBuilder::unweighted(3.0).seed(Seed(11)).build(&g)?;
    println!(
        "spanner: {} edges ({}% of m), built with {} [{}]",
        spanner.artifact.size(),
        100 * spanner.artifact.size() / g.m(),
        spanner.cost,
        spanner.seed,
    );

    // --- 3. A hopset-backed oracle (Theorem 1.2) ---------------------------
    let oracle = OracleBuilder::new()
        .params(HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        })
        .seed(Seed(12))
        .build(&g)?;
    println!(
        "hopset: {} shortcut edges, preprocessing {}",
        oracle.artifact.hopset_size(),
        oracle.cost
    );

    // --- 4. Queries ---------------------------------------------------------
    for (s, t) in [(0u32, 1999u32), (17, 1234), (42, 43)] {
        let (answer, qcost) = oracle.artifact.query(s, t);
        let exact = oracle.artifact.query_exact(s, t);
        println!(
            "dist({s:4}, {t:4}) ≈ {:6.1}   exact {exact:4}   query {}",
            answer.distance, qcost
        );
        assert!(answer.distance >= exact as f64);
    }

    // --- 5. Execution policy: same artifact, real threads -------------------
    // Builders run on the psh-exec pool by default (PSH_THREADS or the
    // machine's parallelism). The policy only changes wall-clock — the
    // artifact and its cost are byte-identical for every thread count.
    let par = SpannerBuilder::unweighted(3.0)
        .seed(Seed(11))
        .execution(ExecutionPolicy::Parallel { threads: 4 })
        .build(&g)?;
    assert_eq!(par.artifact, spanner.artifact);
    assert_eq!(par.cost, spanner.cost);
    println!("parallel(4) rebuilt the byte-identical spanner");

    // --- 6. Errors are values, not panics -----------------------------------
    let err = SpannerBuilder::unweighted(0.5).build(&g).unwrap_err();
    println!("k = 0.5 is rejected up front: {err}");
    println!("all answers are sound upper bounds — done.");
    Ok(())
}
