//! Quickstart: build a graph, construct a spanner and a hopset, and answer
//! approximate distance queries.
//!
//! Run with: `cargo run --release --example quickstart`

use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. A graph -------------------------------------------------------
    // 2000-vertex connected random graph with 6000 extra edges.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::connected_random(2_000, 6_000, &mut rng);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // --- 2. A spanner (Theorem 1.1) ---------------------------------------
    // O(k)-stretch, expected O(n^{1+1/k}) edges. Here k = 3.
    let (spanner, cost) = unweighted_spanner(&g, 3.0, &mut rng);
    println!(
        "spanner: {} edges ({}% of m), built with {}",
        spanner.size(),
        100 * spanner.size() / g.m(),
        cost
    );

    // --- 3. A hopset + oracle (Theorem 1.2) --------------------------------
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let (oracle, pre) = ApproxShortestPaths::build_unweighted(&g, &params, &mut rng);
    println!(
        "hopset: {} shortcut edges, preprocessing {}",
        oracle.hopset_size(),
        pre
    );

    // --- 4. Queries ---------------------------------------------------------
    for (s, t) in [(0u32, 1999u32), (17, 1234), (42, 43)] {
        let (answer, qcost) = oracle.query(s, t);
        let exact = oracle.query_exact(s, t);
        println!(
            "dist({s:4}, {t:4}) ≈ {:6.1}   exact {exact:4}   query {}",
            answer.distance, qcost
        );
        assert!(answer.distance >= exact as f64);
    }
    println!("all answers are sound upper bounds — done.");
}
