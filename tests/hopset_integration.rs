//! Integration tests: hopsets and the approximate-distance oracle —
//! Theorem 1.2 end-to-end, against the baselines.

use psh::baselines::ks_hopset::sampled_clique_hopset;
use psh::graph::traversal::bellman_ford::hop_limited_pair;
use psh::graph::traversal::dijkstra::dijkstra_pair;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn oracle_sound_and_accurate_on_many_random_pairs() {
    let g = generators::grid(30, 30);
    let oracle = OracleBuilder::new()
        .params(params())
        .seed(Seed(1))
        .build(&g)
        .unwrap()
        .artifact;
    let mut qrng = StdRng::seed_from_u64(2);
    for _ in 0..40 {
        let s = qrng.random_range(0..g.n() as u32);
        let t = qrng.random_range(0..g.n() as u32);
        let (r, _) = oracle.query(s, t);
        let exact = oracle.query_exact(s, t);
        if exact == INF {
            assert!(r.distance.is_infinite());
            continue;
        }
        assert!(r.distance >= exact as f64, "undershoot at ({s},{t})");
        assert!(
            r.distance <= 2.0 * exact.max(1) as f64,
            "({s},{t}): {} vs {exact}",
            r.distance
        );
    }
}

#[test]
fn hopset_query_depth_beats_plain_bfs_on_high_diameter() {
    // the whole point of Theorem 1.2: depth ≪ diameter
    let n = 3_000usize;
    let g = generators::path(n);
    let h = HopsetBuilder::unweighted()
        .params(params())
        .seed(Seed(3))
        .build(&g)
        .unwrap()
        .artifact
        .into_single();
    let extra = h.to_extra_edges();
    let (d, hops, _) = hop_limited_pair(&g, Some(&extra), 0, (n - 1) as u32, n);
    assert!(d != INF);
    assert!(
        (hops as usize) < n / 4,
        "hops {hops} not far below the {n}-hop baseline"
    );
    // distortion within the Lemma 4.2 budget (generous constant)
    assert!((d as f64) <= 2.0 * (n - 1) as f64);
}

#[test]
fn ours_vs_sampled_clique_tradeoff() {
    // [KS97] is exact but pays ~m√n construction work; ours is near-linear
    // work at bounded distortion. Check both sides of the trade.
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::connected_random(1_200, 3_600, &mut rng);
    let ours_run = HopsetBuilder::unweighted()
        .params(params())
        .seed(Seed(5))
        .build(&g)
        .unwrap();
    let (ks, ks_cost) = sampled_clique_hopset(&g, &mut StdRng::seed_from_u64(5));
    assert!(
        ours_run.cost.work < ks_cost.work,
        "ours {} work should undercut sampled-clique {}",
        ours_run.cost.work,
        ks_cost.work
    );
    // and both hopsets are structurally valid
    ours_run
        .artifact
        .into_single()
        .validate_no_shortcuts_below_distance(&g)
        .unwrap();
    ks.validate_no_shortcuts_below_distance(&g).unwrap();
}

#[test]
fn weighted_oracle_end_to_end() {
    let mut rng = StdRng::seed_from_u64(6);
    let base = generators::grid(14, 14);
    let g = generators::with_uniform_weights(&base, 1, 100, &mut rng);
    let oracle = OracleBuilder::new()
        .params(params())
        .eta(0.4)
        .seed(Seed(6))
        .build(&g)
        .unwrap()
        .artifact;
    let mut qrng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let s = qrng.random_range(0..g.n() as u32);
        let t = qrng.random_range(0..g.n() as u32);
        let (r, _) = oracle.query(s, t);
        let exact = oracle.query_exact(s, t);
        if exact == INF {
            continue;
        }
        assert!(r.distance >= exact as f64 - 1e-9);
        assert!(
            r.distance <= 3.0 * exact.max(1) as f64,
            "({s},{t}): {} vs {exact}",
            r.distance
        );
    }
}

#[test]
fn appendix_b_plus_dijkstra_handles_astronomical_weight_ratios() {
    // weights spanning 1e15 ≫ n³: the oracle builder refuses such inputs
    // up front, and the Appendix B decomposition routes queries to
    // poly-bounded quotient graphs
    let mut rng = StdRng::seed_from_u64(8);
    let base = generators::connected_random(300, 700, &mut rng);
    let g = generators::with_log_uniform_weights(&base, 1e15, &mut rng);
    let err = OracleBuilder::new().params(params()).build(&g).unwrap_err();
    assert!(
        matches!(err, PshError::WeightRangeTooLarge { .. }),
        "expected the weight-range precondition to fire, got {err}"
    );
    let (dec, _) = WeightClassDecomposition::build(&g, 0.2);
    assert!(dec.max_query_weight_ratio() <= dec.base.powi(3));
    let mut qrng = StdRng::seed_from_u64(9);
    for _ in 0..30 {
        let s = qrng.random_range(0..g.n() as u32);
        let t = qrng.random_range(0..g.n() as u32);
        let approx = dec.query(s, t);
        let exact = dijkstra_pair(&g, s, t);
        if exact == INF {
            assert_eq!(approx, INF);
            continue;
        }
        assert!(approx <= exact);
        assert!(
            approx as f64 >= 0.8 * exact as f64 - 1.0,
            "({s},{t}): {approx} vs {exact}"
        );
    }
}

#[test]
fn definition_2_4_probability_clause() {
    // Definition 2.4(3): for any u, v, with probability ≥ 1/2 over the
    // construction's randomness, dist^h_{E∪E'}(u,v) ≤ (1+ε)·dist(u,v)
    // at the Lemma 4.2 hop bound h. We measure the success fraction over
    // independent constructions on the hop-adversarial path.
    let n = 1_024usize;
    let g = generators::path(n);
    let p = params();
    let (s, t) = (0u32, (n - 1) as u32);
    let exact = (n - 1) as u64;
    let eps_total = 1.0; // ε·log_ρ n budget with these test params
    let mut successes = 0;
    let trials = 10;
    let builder = HopsetBuilder::unweighted().params(p);
    for seed in 0..trials {
        let h = builder
            .clone()
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .artifact
            .into_single();
        let extra = h.to_extra_edges();
        let budget = p.hop_bound(n, p.beta0(n), exact);
        let (d, _, _) = hop_limited_pair(&g, Some(&extra), s, t, budget);
        if d != INF && (d as f64) <= (1.0 + eps_total) * exact as f64 {
            successes += 1;
        }
    }
    assert!(
        successes * 2 >= trials,
        "Definition 2.4 clause failed: {successes}/{trials} constructions succeeded"
    );
}

#[test]
fn hopset_plus_spanner_compose() {
    // run the hopset on a spanner: a downstream pattern (sparsify first,
    // then shortcut) — both guarantees must survive composition
    let mut rng = StdRng::seed_from_u64(10);
    let g = generators::erdos_renyi(800, 8_000, &mut rng);
    let s = SpannerBuilder::unweighted(2.0)
        .seed(Seed(11))
        .build(&g)
        .unwrap()
        .artifact;
    let h_graph = s.as_graph();
    let hopset = HopsetBuilder::unweighted()
        .params(params())
        .seed(Seed(12))
        .build(&h_graph)
        .unwrap()
        .artifact
        .into_single();
    hopset
        .validate_no_shortcuts_below_distance(&h_graph)
        .unwrap();
    let extra = hopset.to_extra_edges();
    let (d, _, _) = hop_limited_pair(&h_graph, Some(&extra), 0, 799, h_graph.n());
    let exact_g = dijkstra_pair(&g, 0, 799);
    // spanner stretch (≤ 18) times hopset distortion (≤ 2)
    assert!(d as f64 <= 36.0 * exact_g.max(1) as f64);
}
