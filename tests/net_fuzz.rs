//! Fuzzing the wire decoder: arbitrary bytes, truncations, oversized
//! length prefixes, and header mutations through [`read_frame`] /
//! [`Request::decode`] / [`Response::decode`] must always come back as
//! a typed [`ProtocolError`] or a valid value — **never** a panic, and
//! never an allocation sized by an attacker-controlled length prefix
//! (the length is validated against [`MAX_FRAME_BYTES`] before any
//! buffer grows, so a frame claiming 4 GiB fails as `Oversized` even
//! though no such bytes exist).

use proptest::prelude::*;
use psh::net::protocol::{
    read_frame, write_frame, Frame, ProtocolError, Request, Response, HEADER_BYTES,
    MAX_FRAME_BYTES, OP_ANSWER, OP_ERROR, OP_INFO_REPLY, OP_QUERY, OP_QUERY_BATCH, OP_STATS_REPLY,
    OP_STREAM, OP_STREAM_END, OP_SUBSCRIBE, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};

fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u16..256, 0..max_len)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// A syntactically well-formed header (magic/version/op/len fields laid
/// out little-endian) with arbitrary field values.
fn header(magic: [u8; 4], version: u16, op: u16, len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_BYTES);
    h.extend_from_slice(&magic);
    h.extend_from_slice(&version.to_le_bytes());
    h.extend_from_slice(&op.to_le_bytes());
    h.extend_from_slice(&len.to_le_bytes());
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Raw garbage never panics the frame reader: every outcome is a
    /// frame (if the bytes happen to spell one) or a typed error.
    #[test]
    fn prop_arbitrary_bytes_never_panic_read_frame(data in bytes(256)) {
        match read_frame(&mut data.as_slice()) {
            Ok(frame) => prop_assert!(frame.body.len() <= data.len()),
            Err(e) => {
                let rendered = format!("{e}");
                prop_assert!(!rendered.is_empty(), "errors must describe themselves");
            }
        }
    }

    /// Any valid frame cut off at any point is `Closed` (clean EOF at
    /// offset 0) or `Truncated` — and re-reading the whole thing works.
    #[test]
    fn prop_truncation_at_every_prefix_is_typed(
        op_pick in 0usize..4,
        body in bytes(48),
        keep_permille in 0u32..1000,
    ) {
        let ops = [OP_QUERY, OP_QUERY_BATCH, OP_ANSWER, OP_ERROR];
        let mut encoded = Vec::new();
        write_frame(&mut encoded, ops[op_pick], &body).unwrap();
        let keep = (encoded.len() - 1) * keep_permille as usize / 1000;
        match read_frame(&mut &encoded[..keep]) {
            Err(ProtocolError::Closed) => prop_assert_eq!(keep, 0),
            Err(ProtocolError::Truncated { .. }) => prop_assert!(keep > 0),
            other => prop_assert!(false, "cut at {}/{}: {:?}", keep, encoded.len(), other),
        }
        let full = read_frame(&mut encoded.as_slice()).unwrap();
        prop_assert_eq!(full.op, ops[op_pick]);
        prop_assert_eq!(full.body, body);
    }

    /// An attacker-controlled length prefix above the cap is rejected as
    /// `Oversized` before any body bytes are read or allocated — the
    /// reader never waits for (or reserves) the claimed gigabytes.
    #[test]
    fn prop_oversized_length_prefix_rejected_before_allocation(
        excess in 1u32..1_000_000,
        trailing in bytes(32),
    ) {
        let len = MAX_FRAME_BYTES as u32 + excess;
        let mut data = header(PROTOCOL_MAGIC, PROTOCOL_VERSION, OP_QUERY, len);
        data.extend_from_slice(&trailing); // far fewer than `len` bytes exist
        match read_frame(&mut data.as_slice()) {
            Err(ProtocolError::Oversized { len: l, .. }) => prop_assert_eq!(l, u64::from(len)),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    /// Header validation is ordered and typed: wrong magic beats wrong
    /// version beats unknown op.
    #[test]
    fn prop_header_mutations_yield_the_right_error(
        magic in (0u16..256, 0u16..256, 0u16..256, 0u16..256),
        version in 0u16..1024,
        op in 0u16..1024,
    ) {
        let magic = [magic.0 as u8, magic.1 as u8, magic.2 as u8, magic.3 as u8];
        let data = header(magic, version, op, 0);
        match read_frame(&mut data.as_slice()) {
            Err(ProtocolError::BadMagic { found }) => {
                prop_assert_ne!(magic, PROTOCOL_MAGIC);
                prop_assert_eq!(found, magic);
            }
            Err(ProtocolError::UnsupportedVersion { found, .. }) => {
                prop_assert_eq!(magic, PROTOCOL_MAGIC);
                prop_assert_ne!(version, PROTOCOL_VERSION);
                prop_assert_eq!(found, version);
            }
            Err(ProtocolError::UnknownOp { found }) => {
                prop_assert_eq!(magic, PROTOCOL_MAGIC);
                prop_assert_eq!(version, PROTOCOL_VERSION);
                prop_assert_eq!(found, op);
            }
            Ok(frame) => {
                prop_assert_eq!(magic, PROTOCOL_MAGIC);
                prop_assert_eq!(version, PROTOCOL_VERSION);
                prop_assert_eq!(frame.op, op);
                prop_assert_eq!(frame.body.len(), 0);
            }
            other => prop_assert!(false, "unexpected outcome: {:?}", other),
        }
    }

    /// Arbitrary bodies under every known op decode to a value or a
    /// typed error — both directions, never a panic.
    #[test]
    fn prop_arbitrary_bodies_never_panic_decoders(
        op_pick in 0usize..9,
        body in bytes(128),
    ) {
        let ops = [
            OP_QUERY, OP_QUERY_BATCH, OP_SUBSCRIBE,
            OP_ANSWER, OP_STREAM, OP_STREAM_END,
            OP_STATS_REPLY, OP_INFO_REPLY, OP_ERROR,
        ];
        let frame = Frame { op: ops[op_pick], body };
        // request ops decode as requests, response ops as responses;
        // the wrong direction must also fail typed, not panic
        for outcome in [
            Request::decode(&frame).map(|_| ()),
            Response::decode(&frame).map(|_| ()),
        ] {
            if let Err(e) = outcome {
                let rendered = format!("{e}");
                prop_assert!(!rendered.is_empty());
            }
        }
    }

    /// Round trip: every request survives encode → frame → decode, and
    /// answers carry arbitrary `f64` bit patterns through unchanged
    /// (compared as bits — NaN payloads included).
    #[test]
    fn prop_request_and_answer_round_trip(
        s in 0u32..1_000_000, t in 0u32..1_000_000,
        pairs in proptest::collection::vec((0u32..9999, 0u32..9999), 0..40),
        chunk in 1u32..512,
        bits in proptest::collection::vec((0u64..u64::MAX, 0u16..2), 0..40),
    ) {
        let requests = [
            Request::Query { s, t },
            Request::QueryBatch(pairs.clone()),
            Request::Subscribe { chunk, pairs },
        ];
        for req in requests {
            let (op, body) = req.encode();
            let mut wire = Vec::new();
            write_frame(&mut wire, op, &body).unwrap();
            let back = Request::decode(&read_frame(&mut wire.as_slice()).unwrap()).unwrap();
            prop_assert_eq!(&back, &req);
        }

        let answers: Vec<psh::prelude::QueryResult> = bits
            .iter()
            .map(|&(b, ub)| psh::prelude::QueryResult {
                distance: f64::from_bits(b),
                upper_bound: ub == 1,
            })
            .collect();
        let (op, body) = Response::Answer(answers.clone()).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, op, &body).unwrap();
        match Response::decode(&read_frame(&mut wire.as_slice()).unwrap()).unwrap() {
            Response::Answer(back) => {
                prop_assert_eq!(back.len(), answers.len());
                for (b, a) in back.iter().zip(&answers) {
                    prop_assert_eq!(b.distance.to_bits(), a.distance.to_bits());
                    prop_assert_eq!(b.upper_bound, a.upper_bound);
                }
            }
            other => prop_assert!(false, "expected an answer, got {:?}", other),
        }
    }
}
