//! The wire tier's correctness contract, pinned over real loopback TCP:
//! every answer a [`NetClient`] receives — single query, batch, or
//! streamed subscription, from any number of concurrent sockets — must
//! be **byte-identical** to the single-threaded in-process reference on
//! the same oracle, for every [`ExecutionPolicy`] (including the
//! env-selected one, so the CI `PSH_THREADS={1,4}` matrix exercises
//! both). Plus the failure half of the contract: out-of-range ids,
//! request caps, busy servers, silent peers, and shutdown all surface
//! as typed [`ProtocolError`]s, never panics or garbled frames.

use psh::core::service::{OracleService, ServiceConfig};
use psh::net::protocol::{ERR_BUSY, ERR_CONN_CAP, ERR_GLOBAL_CAP, ERR_OUT_OF_RANGE};
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

fn build_oracle(weighted: bool, seed: u64) -> ApproxShortestPaths {
    let base = generators::grid(12, 12);
    let g = if weighted {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::with_uniform_weights(&base, 1, 20, &mut rng)
    } else {
        base
    };
    OracleBuilder::new()
        .params(test_params())
        .seed(Seed(seed))
        .build(&g)
        .expect("test oracle build")
        .artifact
}

/// Far pairs, neighbors, self-pairs, repeats — everything a real
/// workload interleaves.
fn workload(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..q)
        .map(|i| {
            if i % 9 == 0 {
                let v = rng.random_range(0..n as u32);
                (v, v)
            } else {
                (rng.random_range(0..n as u32), rng.random_range(0..n as u32))
            }
        })
        .collect()
}

fn bind(oracle: ApproxShortestPaths, policy: ExecutionPolicy, config: ServerConfig) -> NetServer {
    let service = Arc::new(OracleService::new(
        oracle,
        ServiceConfig::with_policy(policy),
    ));
    NetServer::bind("127.0.0.1:0", service, config).expect("bind loopback")
}

fn assert_bitwise(wire: &[QueryResult], reference: &[QueryResult], what: &str) {
    assert_eq!(wire.len(), reference.len(), "{what}: answer count");
    for (i, (w, r)) in wire.iter().zip(reference).enumerate() {
        assert_eq!(
            w.distance.to_bits(),
            r.distance.to_bits(),
            "{what}: distance bits diverge at {i} ({} vs {})",
            w.distance,
            r.distance
        );
        assert_eq!(w.upper_bound, r.upper_bound, "{what}: flag diverges at {i}");
    }
}

// ---------------------------------------------------------------------------
// the equivalence half
// ---------------------------------------------------------------------------

#[test]
fn every_policy_serves_bitwise_identical_answers_over_the_wire() {
    // from_env() makes the CI PSH_THREADS matrix a third axis here
    let policies = [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
        ExecutionPolicy::from_env(),
    ];
    for weighted in [false, true] {
        let oracle = build_oracle(weighted, 31);
        let n = oracle.graph().n();
        let pairs = workload(n, 120, 7);
        let reference: Vec<QueryResult> =
            pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
        for policy in policies {
            let server = bind(build_oracle(weighted, 31), policy, ServerConfig::default());
            let mut client = NetClient::connect(server.local_addr()).expect("connect");

            // single queries
            let singles: Vec<QueryResult> = pairs[..20]
                .iter()
                .map(|&(s, t)| client.query(s, t).expect("query"))
                .collect();
            assert_bitwise(&singles, &reference[..20], "singles");

            // one batch round trip
            let batch = client.query_batch(&pairs).expect("batch");
            assert_bitwise(&batch, &reference, "batch");

            // streamed subscription, checking chunk offsets partition
            let mut offsets = Vec::new();
            let mut streamed = Vec::new();
            let summary = client
                .subscribe(&pairs, 17, |offset, part| {
                    offsets.push(offset as usize);
                    streamed.extend_from_slice(part);
                })
                .expect("subscribe");
            assert_bitwise(&streamed, &reference, "stream");
            assert_eq!(summary.served, pairs.len() as u64);
            assert_eq!(
                offsets,
                (0..pairs.len()).step_by(17).collect::<Vec<_>>(),
                "chunks must partition the pair list in order"
            );
        }
    }
}

#[test]
fn concurrent_sockets_with_mixed_submission_match_the_reference() {
    const SOCKETS: usize = 6;
    let oracle = build_oracle(true, 13);
    let n = oracle.graph().n();
    let pairs = workload(n, 240, 99);
    let reference: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
    // env policy again: the thread matrix covers sequential and pooled
    let server = bind(
        build_oracle(true, 13),
        ExecutionPolicy::from_env(),
        ServerConfig::default(),
    );
    let addr = server.local_addr();

    let indexed: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SOCKETS)
            .map(|k| {
                let pairs = &pairs;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    let mine: Vec<(usize, (u32, u32))> = pairs
                        .iter()
                        .copied()
                        .enumerate()
                        .skip(k)
                        .step_by(SOCKETS)
                        .collect();
                    let mut got = Vec::with_capacity(mine.len());
                    if k % 2 == 0 {
                        // even sockets: one query per round trip
                        for (i, (s, t)) in mine {
                            got.push((i, client.query(s, t).expect("query")));
                        }
                    } else {
                        // odd sockets: batches of 7
                        for trip in mine.chunks(7) {
                            let ask: Vec<(u32, u32)> = trip.iter().map(|&(_, p)| p).collect();
                            let answers = client.query_batch(&ask).expect("batch");
                            got.extend(trip.iter().map(|&(i, _)| i).zip(answers));
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("socket thread"))
            .collect()
    });

    let mut wire: Vec<Option<QueryResult>> = vec![None; pairs.len()];
    for (i, a) in indexed {
        assert!(wire[i].replace(a).is_none(), "index {i} answered twice");
    }
    let wire: Vec<QueryResult> = wire.into_iter().map(|a| a.unwrap()).collect();
    assert_bitwise(&wire, &reference, "concurrent sockets");
}

// ---------------------------------------------------------------------------
// the failure half
// ---------------------------------------------------------------------------

#[test]
fn out_of_range_ids_get_a_typed_error_and_the_connection_survives() {
    let server = bind(
        build_oracle(false, 5),
        ExecutionPolicy::Sequential,
        ServerConfig::default(),
    );
    let n = server.service().oracle().descriptor().n as u32;
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    match client.query(n, 0) {
        Err(ProtocolError::Remote { code, message }) => {
            assert_eq!(code, ERR_OUT_OF_RANGE);
            assert!(message.contains("out of range"), "got: {message}");
        }
        other => panic!("expected a remote out-of-range error, got {other:?}"),
    }
    // one bad id inside a batch poisons only that batch, not the socket
    assert!(matches!(
        client.query_batch(&[(0, 1), (1, n)]),
        Err(ProtocolError::Remote {
            code: ERR_OUT_OF_RANGE,
            ..
        })
    ));
    let answer = client.query(0, n - 1).expect("connection still usable");
    assert!(answer.distance.is_finite());
}

#[test]
fn exceeding_the_per_connection_cap_drops_the_connection() {
    let server = bind(
        build_oracle(false, 6),
        ExecutionPolicy::Sequential,
        ServerConfig {
            max_conn_requests: 5,
            ..ServerConfig::default()
        },
    );
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.query_batch(&[(0, 1); 5]).expect("within cap").len(),
        5
    );
    match client.query(0, 1) {
        Err(ProtocolError::Remote { code, .. }) => assert_eq!(code, ERR_CONN_CAP),
        other => panic!("expected the cap error, got {other:?}"),
    }
    // the server hung up: the next exchange cannot complete
    assert!(client.query(0, 1).is_err());
    // ...but a fresh connection gets a fresh budget
    let mut again = NetClient::connect(server.local_addr()).expect("reconnect");
    assert_eq!(
        again.query_batch(&[(0, 1); 5]).expect("fresh budget").len(),
        5
    );
}

#[test]
fn exceeding_the_global_cap_rejects_whoever_overflows_it() {
    let server = bind(
        build_oracle(false, 7),
        ExecutionPolicy::Sequential,
        ServerConfig {
            max_total_requests: 10,
            ..ServerConfig::default()
        },
    );
    let mut first = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(first.query_batch(&[(0, 1); 8]).expect("8 of 10").len(), 8);
    let mut second = NetClient::connect(server.local_addr()).expect("connect");
    match second.query_batch(&[(0, 1); 5]) {
        Err(ProtocolError::Remote { code, .. }) => assert_eq!(code, ERR_GLOBAL_CAP),
        other => panic!("expected the global cap error, got {other:?}"),
    }
    // the failed admission rolled back: 2 of the budget remain for first
    assert_eq!(first.query_batch(&[(0, 1); 2]).expect("the rest").len(), 2);
}

#[test]
fn a_full_server_turns_excess_connections_away_with_busy() {
    let server = bind(
        build_oracle(false, 8),
        ExecutionPolicy::Sequential,
        ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        },
    );
    let mut occupant = NetClient::connect(server.local_addr()).expect("connect");
    occupant.query(0, 1).expect("occupant is served");
    let mut excess = NetClient::connect(server.local_addr()).expect("tcp accepts");
    match excess.query(0, 1) {
        // the courtesy ERR_BUSY frame, if the write beat the close...
        Err(ProtocolError::Remote { code, .. }) => assert_eq!(code, ERR_BUSY),
        // ...or the closed socket itself
        Err(_) => {}
        Ok(_) => panic!("the second connection must not be served"),
    }
    occupant.query(1, 0).expect("occupant unaffected");
}

#[test]
fn a_silent_server_surfaces_as_a_client_timeout() {
    // a raw listener that accepts and then never speaks
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let mut client = NetClient::connect(addr).expect("connect");
    client
        .set_timeouts(
            Some(Duration::from_millis(200)),
            Some(Duration::from_millis(200)),
        )
        .expect("set timeouts");
    let err = client.query(0, 1).expect_err("no reply can come");
    assert!(err.is_timeout(), "expected a timeout, got {err:?}");
    drop(hold.join().expect("accept thread").ok());
}

#[test]
fn wire_shutdown_stops_the_server_and_reports_final_stats() {
    let mut server = bind(
        build_oracle(false, 9),
        ExecutionPolicy::Sequential,
        ServerConfig::default(),
    );
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).expect("connect");
    client
        .query_batch(&[(0, 5), (3, 4), (2, 2)])
        .expect("served");

    let stats = client.shutdown_server().expect("shutdown handshake");
    assert_eq!(stats.served, 3);
    assert!(stats.batches >= 1);

    // wait() observes the wire-side stop and drains
    let final_stats = server.wait(Some(Duration::from_secs(5)));
    assert!(server.stopping());
    assert_eq!(final_stats.conns_accepted, 1);
    // the listener is gone: nobody new gets served
    if let Ok(mut late) = NetClient::connect(addr) {
        assert!(late.query(0, 1).is_err());
    }
}

// ---------------------------------------------------------------------------
// the hot-reload half
// ---------------------------------------------------------------------------

/// `OP_RELOAD` end to end: a journal record appears on disk, a wire
/// reload hot-swaps the serving oracle, and every post-swap answer is
/// byte-identical to a fresh in-process build of the mutated graph.
/// A second reload with nothing new reports `swapped: false`, and
/// `OP_INFO` tracks the current epoch's shape throughout.
#[test]
fn wire_reload_hot_swaps_and_matches_a_fresh_build_of_the_mutated_graph() {
    use psh::core::snapshot::{append_journal, journal_path, JournalReloader, OracleMeta};

    let seed = 31u64;
    let g = {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::with_uniform_weights(&generators::grid(12, 12), 1, 20, &mut rng)
    };
    let run = OracleBuilder::new()
        .params(test_params())
        .seed(Seed(seed))
        .build(&g)
        .expect("base oracle build");
    let meta = OracleMeta::of_run(&run, test_params());

    // the "snapshot" base path only names the journal sidecar here — the
    // oracle is already in memory, so no base file needs to exist
    let base = std::env::temp_dir().join(format!("psh_loopback_reload_{}", std::process::id()));
    let jpath = journal_path(&base);
    std::fs::remove_file(&jpath).ok();

    let service = Arc::new(OracleService::new(
        run.artifact,
        ServiceConfig::with_policy(ExecutionPolicy::from_env()),
    ));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind loopback");
    let mut reloader = JournalReloader::new(&base, g.clone(), meta);
    let svc = Arc::clone(&service);
    server.set_reload_hook(Box::new(move || {
        reloader.poll(&svc).map_err(|e| e.to_string())
    }));
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // a fresh in-process build of a graph is the reference its epoch's
    // wire answers must match byte-for-byte
    let fresh_reference = |g: &CsrGraph, pairs: &[(u32, u32)]| -> Vec<QueryResult> {
        let oracle = OracleBuilder::new()
            .params(test_params())
            .seed(Seed(seed))
            .build(g)
            .expect("reference oracle build")
            .artifact;
        pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect()
    };

    // epoch 0 serves the unmutated graph
    let n = g.n();
    let pairs = workload(n, 60, 13);
    let before = fresh_reference(&g, &pairs);
    assert_bitwise(
        &client.query_batch(&pairs).expect("pre-swap batch"),
        &before,
        "pre-swap",
    );

    // mutate: a unit shortcut appears in the journal, then over the wire
    let mut delta = GraphDelta::new(n);
    delta.insert(0, (n - 1) as u32, 1).expect("delta insert");
    delta.delete(0, 1).expect("delta delete");
    append_journal(&jpath, &delta).expect("journal append");

    let summary = client.reload().expect("wire reload");
    assert!(summary.swapped, "one new record must swap");
    assert_eq!(summary.epoch, 1);
    assert_eq!(summary.records, 1);
    assert_eq!(summary.ops, 2);
    let mutated = g.apply_delta(&delta).expect("apply delta");
    assert_eq!(summary.m, mutated.m() as u64);

    // post-swap answers ≡ a fresh build of the mutated graph
    let after = fresh_reference(&mutated, &pairs);
    assert_ne!(
        before
            .iter()
            .map(|a| a.distance.to_bits())
            .collect::<Vec<_>>(),
        after
            .iter()
            .map(|a| a.distance.to_bits())
            .collect::<Vec<_>>(),
        "the delta must change some answer for this test to mean anything"
    );
    assert_bitwise(
        &client.query_batch(&pairs).expect("post-swap batch"),
        &after,
        "post-swap",
    );

    // OP_INFO follows the swap; a second reload has nothing to do
    let info = client.server_info().expect("info");
    assert_eq!(info.m, mutated.m() as u64);
    let again = client.reload().expect("idempotent reload");
    assert!(!again.swapped);
    assert_eq!(again.epoch, 1);
    assert_eq!(again.records, 0);

    std::fs::remove_file(&jpath).ok();
}

/// Reload against a server with no reload source is a typed remote
/// error, and the connection survives it.
#[test]
fn reload_without_a_hook_is_a_typed_error_and_keeps_the_connection() {
    use psh::net::protocol::ERR_NO_RELOAD;
    let server = bind(
        build_oracle(false, 9),
        ExecutionPolicy::Sequential,
        ServerConfig::default(),
    );
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    match client.reload() {
        Err(ProtocolError::Remote { code, .. }) => assert_eq!(code, ERR_NO_RELOAD),
        other => panic!("expected ERR_NO_RELOAD, got {other:?}"),
    }
    // the connection is still usable afterwards
    client.query(0, 5).expect("connection survived the error");
}
