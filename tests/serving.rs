//! The serving contract, end to end: a snapshotted oracle answers query
//! batches byte-identically to the fresh in-process build — same
//! `QueryResult`s, same work/depth `Cost` — under every execution
//! policy; and malformed snapshots are typed errors at the facade level.

use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

fn policies() -> [ExecutionPolicy; 4] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 2 },
        ExecutionPolicy::Parallel { threads: 4 },
        ExecutionPolicy::Parallel { threads: 8 },
    ]
}

fn workload(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    // mix of far pairs, neighbors, self-pairs, and (on disconnected
    // instances) cross-component pairs
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    (0..q)
        .map(|i| {
            if i % 7 == 0 {
                let v = rng.random_range(0..n as u32);
                (v, v)
            } else {
                (rng.random_range(0..n as u32), rng.random_range(0..n as u32))
            }
        })
        .collect()
}

/// The acceptance criterion: save → load → `query_batch` equals a fresh
/// build's answers and Cost, for Sequential and Parallel{2,4,8}.
#[test]
fn snapshot_roundtrip_serves_byte_identically() {
    let base = generators::grid(10, 10);
    let mut rng = StdRng::seed_from_u64(5);
    let weighted = generators::with_uniform_weights(&base, 1, 25, &mut rng);
    for g in [base, weighted] {
        let run = OracleBuilder::new()
            .params(test_params())
            .seed(Seed(42))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, test_params());
        let mut buf = Vec::new();
        snapshot::write_oracle(&mut buf, &run.artifact, &meta).unwrap();
        let (served, meta_back) = snapshot::read_oracle(buf.as_slice()).unwrap();
        assert_eq!(meta_back, meta);

        let pairs = workload(g.n(), 60, 99);
        let (reference, ref_cost) = run
            .artifact
            .query_batch(&pairs, ExecutionPolicy::Sequential);
        for policy in policies() {
            let (fresh, fresh_cost) = run.artifact.query_batch(&pairs, policy);
            let (loaded, loaded_cost) = served.query_batch(&pairs, policy);
            assert_eq!(fresh, reference, "fresh {policy}");
            assert_eq!(fresh_cost, ref_cost, "fresh cost {policy}");
            assert_eq!(loaded, reference, "loaded {policy}");
            assert_eq!(loaded_cost, ref_cost, "loaded cost {policy}");
        }
        // the loaded oracle re-saves to the identical bytes
        let mut buf2 = Vec::new();
        snapshot::write_oracle(&mut buf2, &served, &meta_back).unwrap();
        assert_eq!(buf, buf2);
    }
}

/// Batch answers equal one-at-a-time answers pair for pair, and the batch
/// cost is their parallel composition.
#[test]
fn query_batch_is_the_query_loop() {
    let g = generators::grid(8, 8);
    let run = OracleBuilder::new()
        .params(test_params())
        .seed(Seed(3))
        .build(&g)
        .unwrap();
    let pairs = workload(g.n(), 40, 7);
    let singles: Vec<(QueryResult, Cost)> = pairs
        .iter()
        .map(|&(s, t)| run.artifact.query(s, t))
        .collect();
    let expect: Vec<QueryResult> = singles.iter().map(|(r, _)| *r).collect();
    let expect_cost = Cost::par_all(singles.iter().map(|(_, c)| *c));
    for policy in policies() {
        let (got, cost) = run.artifact.query_batch(&pairs, policy);
        assert_eq!(got, expect, "{policy}");
        assert_eq!(cost, expect_cost, "{policy}");
    }
}

/// Graph snapshots and the serving facade reject malformed bytes with
/// typed, descriptive errors at the workspace surface (`psh::prelude`).
#[test]
fn malformed_snapshots_are_typed_errors_at_the_facade() {
    let g = generators::path(5);
    let mut buf = Vec::new();
    psh::graph::io::write_graph_snapshot(&g, &mut buf).unwrap();

    // truncated header and body
    for cut in [0, 3, 6, buf.len() - 1] {
        match psh::graph::io::read_graph_snapshot(&buf[..cut]) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("cut {cut}: {other:?}"),
        }
    }
    // wrong magic
    let mut bad = buf.clone();
    bad[1] = b'?';
    assert!(matches!(
        psh::graph::io::read_graph_snapshot(bad.as_slice()),
        Err(SnapshotError::BadMagic { .. })
    ));
    // wrong version
    let mut bad = buf.clone();
    bad[4] = 200;
    assert!(matches!(
        psh::graph::io::read_graph_snapshot(bad.as_slice()),
        Err(SnapshotError::UnsupportedVersion { found: 200, .. })
    ));
    // a graph snapshot is not an oracle
    assert!(matches!(
        snapshot::read_oracle(buf.as_slice()),
        Err(SnapshotError::WrongArtifact { .. })
    ));
    // errors render human-readable messages
    let msg = snapshot::read_oracle(buf.as_slice())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("graph") && msg.contains("oracle"), "{msg}");
}

/// Hopset and spanner artifacts snapshot through the facade too.
#[test]
fn hopset_and_spanner_snapshots_round_trip_via_prelude() {
    let g = generators::grid(9, 9);
    let h = HopsetBuilder::unweighted()
        .params(test_params())
        .seed(Seed(6))
        .build(&g)
        .unwrap()
        .artifact
        .into_single();
    let mut buf = Vec::new();
    snapshot::write_hopset(&mut buf, &h).unwrap();
    assert_eq!(snapshot::read_hopset(buf.as_slice()).unwrap(), h);

    let s = SpannerBuilder::unweighted(3.0)
        .seed(Seed(7))
        .build(&g)
        .unwrap()
        .artifact;
    let mut buf = Vec::new();
    snapshot::write_spanner(&mut buf, &s).unwrap();
    assert_eq!(snapshot::read_spanner(buf.as_slice()).unwrap(), s);
}
