//! Integration tests: the work/depth claims of the theorems, measured by
//! the cost model across scales — the quantitative backbone of Figures 1
//! and 2.

use psh::graph::traversal::bfs::parallel_bfs;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn spanner_work_scales_linearly_in_m() {
    // Theorem 1.1: O(m) work. Measure work at two scales; the ratio must
    // track m, not m·k or m·log.
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(1);
        generators::connected_random(n, 4 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let builder = SpannerBuilder::unweighted(3.0).seed(Seed(2));
    let c1 = builder.build(&g1).unwrap().cost;
    let c2 = builder.build(&g2).unwrap().cost;
    let ratio = c2.work as f64 / c1.work as f64;
    let m_ratio = g2.m() as f64 / g1.m() as f64;
    assert!(
        ratio < 2.5 * m_ratio,
        "work ratio {ratio} vs m ratio {m_ratio} — superlinear?"
    );
}

#[test]
fn spanner_depth_scales_with_k_not_n() {
    // O(k log* n) depth: quadrupling n must not quadruple depth.
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(3);
        generators::connected_random(n, 4 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let builder = SpannerBuilder::unweighted(3.0).seed(Seed(4));
    let c1 = builder.build(&g1).unwrap().cost;
    let c2 = builder.build(&g2).unwrap().cost;
    assert!(
        (c2.depth as f64) < 2.0 * c1.depth as f64,
        "depth went {} -> {} on a 4x n increase",
        c1.depth,
        c2.depth
    );
}

#[test]
fn clustering_depth_tracks_inverse_beta() {
    let g = generators::path(2_000);
    let c_fine = ClusterBuilder::new(0.4)
        .seed(Seed(5))
        .build(&g)
        .unwrap()
        .cost;
    let c_coarse = ClusterBuilder::new(0.05)
        .seed(Seed(5))
        .build(&g)
        .unwrap()
        .cost;
    // β⁻¹ grew 8x; depth should grow severalfold but not explode past it
    let ratio = c_coarse.depth as f64 / c_fine.depth as f64;
    assert!(
        ratio > 2.0 && ratio < 32.0,
        "depth ratio {ratio} out of the β⁻¹ envelope"
    );
}

#[test]
fn bfs_depth_equals_eccentricity_plus_constant() {
    let g = generators::grid(40, 40);
    let (r, cost) = parallel_bfs(&g, 0);
    let ecc = r.max_finite_dist();
    assert!(cost.depth >= ecc);
    assert!(cost.depth <= ecc + 3);
}

fn hopset_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn hopset_work_is_near_linear_in_m() {
    // Theorem 4.4: O(m log^{1+δ} n · ε^{-δ}) work — near-linear. Compare
    // two scales.
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(6);
        generators::connected_random(n, 3 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let builder = HopsetBuilder::unweighted()
        .params(hopset_params())
        .seed(Seed(7));
    let c1 = builder.build(&g1).unwrap().cost;
    let c2 = builder.build(&g2).unwrap().cost;
    let ratio = c2.work as f64 / c1.work as f64;
    let m_ratio = g2.m() as f64 / g1.m() as f64;
    assert!(
        ratio < 6.0 * m_ratio,
        "hopset work ratio {ratio} vs m ratio {m_ratio}"
    );
}

#[test]
fn hopset_construction_depth_grows_sublinearly() {
    // Theorem 4.4 depth is O(n^{γ2} log² n) — sublinear in n. The w.h.p.
    // machinery behind that bound (Lemma 2.1's k·β⁻¹·ln n cluster radius)
    // only bites once k·β₀⁻¹·ln n < n, i.e. far beyond test scales on a
    // *path* (whose pieces are as deep as they are big); on bounded-degree
    // random graphs the preconditions hold already at n ≈ 10³, so that is
    // where the scaling shape is measurable: quadrupling n must multiply
    // depth by clearly less than 4 (with γ2 = 0.75 the prediction is
    // ≈ 4^0.75 ≈ 2.8; observed ratios on this family are ≈ 1.1).
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(8);
        generators::connected_random(n, 3 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let builder = HopsetBuilder::unweighted()
        .params(hopset_params())
        .seed(Seed(8));
    let c1 = builder.build(&g1).unwrap().cost;
    let c2 = builder.build(&g2).unwrap().cost;
    let ratio = c2.depth as f64 / c1.depth as f64;
    assert!(
        ratio < 3.6,
        "depth ratio {ratio} for a 4x n increase — not sublinear (depths {} -> {})",
        c1.depth,
        c2.depth
    );
}
