//! Integration tests: the work/depth claims of the theorems, measured by
//! the cost model across scales — the quantitative backbone of Figures 1
//! and 2.

use psh::graph::traversal::bfs::parallel_bfs;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn spanner_work_scales_linearly_in_m() {
    // Theorem 1.1: O(m) work. Measure work at two scales; the ratio must
    // track m, not m·k or m·log.
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(1);
        generators::connected_random(n, 4 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let (_, c1) = unweighted_spanner(&g1, 3.0, &mut StdRng::seed_from_u64(2));
    let (_, c2) = unweighted_spanner(&g2, 3.0, &mut StdRng::seed_from_u64(2));
    let ratio = c2.work as f64 / c1.work as f64;
    let m_ratio = g2.m() as f64 / g1.m() as f64;
    assert!(
        ratio < 2.5 * m_ratio,
        "work ratio {ratio} vs m ratio {m_ratio} — superlinear?"
    );
}

#[test]
fn spanner_depth_scales_with_k_not_n() {
    // O(k log* n) depth: quadrupling n must not quadruple depth.
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(3);
        generators::connected_random(n, 4 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let (_, c1) = unweighted_spanner(&g1, 3.0, &mut StdRng::seed_from_u64(4));
    let (_, c2) = unweighted_spanner(&g2, 3.0, &mut StdRng::seed_from_u64(4));
    assert!(
        (c2.depth as f64) < 2.0 * c1.depth as f64,
        "depth went {} -> {} on a 4x n increase",
        c1.depth,
        c2.depth
    );
}

#[test]
fn clustering_depth_tracks_inverse_beta() {
    let g = generators::path(2_000);
    let (_, c_fine) = est_cluster(&g, 0.4, &mut StdRng::seed_from_u64(5));
    let (_, c_coarse) = est_cluster(&g, 0.05, &mut StdRng::seed_from_u64(5));
    // β⁻¹ grew 8x; depth should grow severalfold but not explode past it
    let ratio = c_coarse.depth as f64 / c_fine.depth as f64;
    assert!(
        ratio > 2.0 && ratio < 32.0,
        "depth ratio {ratio} out of the β⁻¹ envelope"
    );
}

#[test]
fn bfs_depth_equals_eccentricity_plus_constant() {
    let g = generators::grid(40, 40);
    let (r, cost) = parallel_bfs(&g, 0);
    let ecc = r.max_finite_dist();
    assert!(cost.depth as u64 >= ecc);
    assert!(cost.depth as u64 <= ecc + 3);
}

#[test]
fn hopset_work_is_near_linear_in_m() {
    // Theorem 4.4: O(m log^{1+δ} n · ε^{-δ}) work — near-linear. Compare
    // two scales.
    let p = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let mk = |n: usize| {
        let mut rng = StdRng::seed_from_u64(6);
        generators::connected_random(n, 3 * n, &mut rng)
    };
    let g1 = mk(1_000);
    let g2 = mk(4_000);
    let (_, c1) = build_hopset(&g1, &p, &mut StdRng::seed_from_u64(7));
    let (_, c2) = build_hopset(&g2, &p, &mut StdRng::seed_from_u64(7));
    let ratio = c2.work as f64 / c1.work as f64;
    let m_ratio = g2.m() as f64 / g1.m() as f64;
    assert!(
        ratio < 6.0 * m_ratio,
        "hopset work ratio {ratio} vs m ratio {m_ratio}"
    );
}

#[test]
fn hopset_construction_depth_grows_sublinearly() {
    // Theorem 4.4 depth is O(n^{γ2} log² n) — sublinear in n. At these
    // scales the polylog factors dominate the absolute value, so we test
    // the *scaling shape*: quadrupling n must multiply depth by clearly
    // less than 4 (with γ2 = 0.75 the prediction is ≈ 4^0.75 ≈ 2.8).
    let p = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let (_, c1) = build_hopset(&generators::path(1_000), &p, &mut StdRng::seed_from_u64(8));
    let (_, c2) = build_hopset(&generators::path(4_000), &p, &mut StdRng::seed_from_u64(8));
    let ratio = c2.depth as f64 / c1.depth as f64;
    assert!(
        ratio < 3.6,
        "depth ratio {ratio} for a 4x n increase — not sublinear (depths {} -> {})",
        c1.depth,
        c2.depth
    );
}
