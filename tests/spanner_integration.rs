//! Integration tests: the spanner pipelines against the baselines, across
//! graph families — Theorem 1.1 end-to-end.

use psh::baselines::baswana_sen::baswana_sen_spanner;
use psh::baselines::greedy_spanner::greedy_spanner;
use psh::core::spanner::verify::{max_stretch_exact, verify_stretch};
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(n: usize, seed: u64) -> Vec<(&'static str, CsrGraph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("random", generators::connected_random(n, 3 * n, &mut rng)),
        ("grid", generators::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize)),
        ("power-law", generators::preferential_attachment(n, 3, &mut rng)),
    ]
}

#[test]
fn unweighted_spanner_beats_baswana_sen_on_size_at_large_k() {
    // The headline of Figure 1: our size has no k factor. At k = 8 on a
    // dense graph, Baswana–Sen should be visibly larger.
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::erdos_renyi(1_500, 30_000, &mut rng);
    let (ours, _) = unweighted_spanner(&g, 8.0, &mut StdRng::seed_from_u64(2));
    let (bs, _) = baswana_sen_spanner(&g, 8, &mut StdRng::seed_from_u64(2));
    assert!(
        ours.size() < bs.size(),
        "ours {} should be smaller than baswana-sen {}",
        ours.size(),
        bs.size()
    );
}

#[test]
fn all_families_get_valid_bounded_stretch_spanners() {
    for (name, g) in families(900, 3) {
        let k = 3.0;
        let (s, cost) = unweighted_spanner(&g, k, &mut StdRng::seed_from_u64(4));
        verify_stretch(&g, &s, 8.0 * k + 2.0)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(cost.work > 0 && cost.depth > 0, "{name}: cost not recorded");
    }
}

#[test]
fn greedy_is_the_size_floor() {
    // Greedy (2k-1) is essentially size-optimal; ours should be within a
    // moderate constant of it on a dense instance.
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::erdos_renyi(300, 4_000, &mut rng);
    let k = 3.0;
    let (ours, _) = unweighted_spanner(&g, k, &mut StdRng::seed_from_u64(6));
    let (greedy, _) = greedy_spanner(&g, 2.0 * k - 1.0);
    assert!(ours.size() >= greedy.size(), "greedy is the floor");
    assert!(
        (ours.size() as f64) < 12.0 * greedy.size() as f64,
        "ours {} too far above greedy {}",
        ours.size(),
        greedy.size()
    );
}

#[test]
fn weighted_pipeline_handles_mixed_scales_end_to_end() {
    let mut rng = StdRng::seed_from_u64(7);
    let base = generators::connected_random(700, 2_000, &mut rng);
    let g = generators::with_log_uniform_weights(&base, 16384.0, &mut rng);
    let k = 3.0;
    let (s, _) = weighted_spanner(&g, k, &mut StdRng::seed_from_u64(8));
    assert!(s.is_subgraph_of(&g));
    let stretch = max_stretch_exact(&g, &s);
    assert!(
        stretch.is_finite() && stretch <= 16.0 * k + 4.0,
        "stretch {stretch}"
    );
    // size sanity: well below m, at most a polylog multiple of n
    assert!(s.size() < g.m());
    assert!((s.size() as f64) < 10.0 * (g.n() as f64) * (k as f64).log2().max(1.0));
}

#[test]
fn spanner_of_a_spanner_composes_stretch() {
    // building a spanner of a spanner multiplies stretch bounds — a
    // downstream-usage pattern worth guarding
    let mut rng = StdRng::seed_from_u64(9);
    let g = generators::connected_random(500, 2_500, &mut rng);
    let (s1, _) = unweighted_spanner(&g, 2.0, &mut StdRng::seed_from_u64(10));
    let h1 = s1.as_graph();
    let (s2, _) = unweighted_spanner(&h1, 2.0, &mut StdRng::seed_from_u64(11));
    let stretch = max_stretch_exact(&g, &Spanner::new(g.n(), s2.edges.clone()));
    assert!(
        stretch <= (8.0 * 2.0 + 2.0f64).powi(2),
        "composed stretch {stretch}"
    );
}
