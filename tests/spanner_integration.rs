//! Integration tests: the spanner pipelines against the baselines, across
//! graph families — Theorem 1.1 end-to-end.

use psh::baselines::baswana_sen::baswana_sen_spanner;
use psh::baselines::greedy_spanner::greedy_spanner;
use psh::core::spanner::verify::{max_stretch_exact, verify_stretch};
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(n: usize, seed: u64) -> Vec<(&'static str, CsrGraph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("random", generators::connected_random(n, 3 * n, &mut rng)),
        (
            "grid",
            generators::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize),
        ),
        (
            "power-law",
            generators::preferential_attachment(n, 3, &mut rng),
        ),
    ]
}

#[test]
fn unweighted_spanner_beats_baswana_sen_on_size_at_large_k() {
    // The headline of Figure 1: our size has no k factor. At k = 8 on a
    // dense graph, Baswana–Sen should be visibly larger.
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::erdos_renyi(1_500, 30_000, &mut rng);
    let ours = SpannerBuilder::unweighted(8.0)
        .seed(Seed(2))
        .build(&g)
        .unwrap()
        .artifact;
    let (bs, _) = baswana_sen_spanner(&g, 8, &mut StdRng::seed_from_u64(2));
    assert!(
        ours.size() < bs.size(),
        "ours {} should be smaller than baswana-sen {}",
        ours.size(),
        bs.size()
    );
}

#[test]
fn all_families_get_valid_bounded_stretch_spanners() {
    for (name, g) in families(900, 3) {
        let k = 3.0;
        let run = SpannerBuilder::unweighted(k)
            .seed(Seed(4))
            .build(&g)
            .unwrap();
        verify_stretch(&g, &run.artifact, 8.0 * k + 2.0).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            run.cost.work > 0 && run.cost.depth > 0,
            "{name}: cost not recorded"
        );
    }
}

#[test]
fn size_within_constant_of_greedy_and_above_tree_floor() {
    // Greedy (2k-1) is the classical size yardstick. Ours targets the
    // looser O(k) stretch class (measured stretch up to 8k+2), so it may
    // legitimately dip *below* greedy's 2k-1 budget — down to the hard
    // floor of any connected spanner, the spanning tree. What we pin down:
    // the size never leaves [n - #components, 12 × greedy].
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::erdos_renyi(300, 4_000, &mut rng);
    let k = 3.0;
    let ours = SpannerBuilder::unweighted(k)
        .seed(Seed(6))
        .build(&g)
        .unwrap()
        .artifact;
    let (greedy, _) = greedy_spanner(&g, 2.0 * k - 1.0);
    let stretch = max_stretch_exact(&g, &ours);
    assert!(stretch <= 8.0 * k + 2.0, "stretch {stretch} out of class");
    assert!(
        ours.size() >= g.n() - 1,
        "{} edges cannot connect a connected {}-vertex graph",
        ours.size(),
        g.n()
    );
    assert!(
        (ours.size() as f64) < 12.0 * greedy.size() as f64,
        "ours {} too far above greedy {}",
        ours.size(),
        greedy.size()
    );
}

#[test]
fn weighted_pipeline_handles_mixed_scales_end_to_end() {
    let mut rng = StdRng::seed_from_u64(7);
    let base = generators::connected_random(700, 2_000, &mut rng);
    let g = generators::with_log_uniform_weights(&base, 16384.0, &mut rng);
    let k = 3.0;
    let s = SpannerBuilder::weighted(k)
        .seed(Seed(8))
        .build(&g)
        .unwrap()
        .artifact;
    assert!(s.is_subgraph_of(&g));
    let stretch = max_stretch_exact(&g, &s);
    assert!(
        stretch.is_finite() && stretch <= 16.0 * k + 4.0,
        "stretch {stretch}"
    );
    // size sanity: well below m, at most a polylog multiple of n
    assert!(s.size() < g.m());
    assert!((s.size() as f64) < 10.0 * (g.n() as f64) * k.log2().max(1.0));
}

#[test]
fn spanner_of_a_spanner_composes_stretch() {
    // building a spanner of a spanner multiplies stretch bounds — a
    // downstream-usage pattern worth guarding
    let mut rng = StdRng::seed_from_u64(9);
    let g = generators::connected_random(500, 2_500, &mut rng);
    let s1 = SpannerBuilder::unweighted(2.0)
        .seed(Seed(10))
        .build(&g)
        .unwrap()
        .artifact;
    let h1 = s1.as_graph();
    let s2 = SpannerBuilder::unweighted(2.0)
        .seed(Seed(11))
        .build(&h1)
        .unwrap()
        .artifact;
    let stretch = max_stretch_exact(&g, &Spanner::new(g.n(), s2.edges.clone()));
    assert!(
        stretch <= (8.0 * 2.0 + 2.0f64).powi(2),
        "composed stretch {stretch}"
    );
}
