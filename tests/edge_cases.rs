//! Edge-case coverage for the frontier engine and the oracle serving
//! path: empty graphs, single vertices, disconnected pairs (must report
//! `unreachable`, never panic), star/dumbbell extremes, and `s == t`
//! queries — under both execution policies.

use psh::graph::traversal::bfs::parallel_bfs_with;
use psh::graph::traversal::dial::dial_sssp_with;
use psh::graph::traversal::dijkstra::dijkstra_pair;
use psh::prelude::*;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

fn build(g: &CsrGraph, mode: OracleMode) -> ApproxShortestPaths {
    OracleBuilder::new()
        .params(test_params())
        .mode(mode)
        .seed(Seed(1))
        .build(g)
        .unwrap()
        .artifact
}

fn execs() -> [Executor; 2] {
    [
        Executor::sequential(),
        Executor::new(ExecutionPolicy::Parallel { threads: 4 }),
    ]
}

#[test]
fn empty_graph_builds_and_serves_empty_batches() {
    let g = CsrGraph::from_edges(0, std::iter::empty());
    for mode in [OracleMode::Unweighted, OracleMode::Weighted] {
        let oracle = build(&g, mode);
        assert_eq!(oracle.hopset_size(), 0);
        let (answers, cost) = oracle.query_batch(&[], ExecutionPolicy::Parallel { threads: 4 });
        assert!(answers.is_empty());
        assert_eq!(cost, Cost::ZERO);
    }
    // spanner/hopset builders are equally unbothered
    assert_eq!(
        SpannerBuilder::unweighted(2.0)
            .build(&g)
            .unwrap()
            .artifact
            .size(),
        0
    );
    assert_eq!(
        HopsetBuilder::unweighted()
            .params(test_params())
            .build(&g)
            .unwrap()
            .artifact
            .size(),
        0
    );
}

#[test]
fn single_vertex_graph_answers_self_queries() {
    let g = CsrGraph::from_edges(1, std::iter::empty());
    for mode in [OracleMode::Unweighted, OracleMode::Weighted] {
        let oracle = build(&g, mode);
        let (r, cost) = oracle.query(0, 0);
        assert_eq!(r.distance, 0.0);
        assert_eq!(cost, Cost::ZERO);
        let (batch, _) = oracle.query_batch(&[(0, 0); 5], ExecutionPolicy::Sequential);
        assert!(batch.iter().all(|a| a.distance == 0.0));
    }
    // frontier engines: a source with no edges settles only itself
    for exec in execs() {
        let (bfs, _) = parallel_bfs_with(&exec, &g, 0);
        assert_eq!(bfs.dist, vec![0]);
        let (dial, _) = dial_sssp_with(&exec, &g, 0);
        assert_eq!(dial.dist, vec![0]);
    }
}

#[test]
fn disconnected_pairs_report_unreachable_not_panic() {
    // two components, one weighted asymmetrically
    let g = CsrGraph::from_edges(
        6,
        [
            Edge::new(0, 1, 2),
            Edge::new(1, 2, 3),
            Edge::new(3, 4, 1),
            Edge::new(4, 5, 7),
        ],
    );
    let cross: Vec<(u32, u32)> = vec![(0, 3), (2, 5), (1, 4), (5, 0)];
    let oracle = build(&g, OracleMode::Weighted);
    for policy in [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ] {
        let (answers, _) = oracle.query_batch(&cross, policy);
        assert!(
            answers.iter().all(|a| a.distance.is_infinite()),
            "cross-component answers must be ∞"
        );
    }
    // within-component queries still resolve (bridge weight 1 + 7)
    let (r, _) = oracle.query(3, 5);
    assert!(r.distance >= 8.0 - 1e-9);
    // the unweighted path on a unit-weight disconnected graph
    let gu = CsrGraph::from_unit_edges(4, [(0, 1), (2, 3)]);
    let oracle = build(&gu, OracleMode::Unweighted);
    let (answers, _) = oracle.query_batch(&[(0, 2), (1, 3)], ExecutionPolicy::Sequential);
    assert!(answers.iter().all(|a| a.distance.is_infinite()));
    // frontier engines agree: unreached vertices stay at INF
    for exec in execs() {
        let (bfs, _) = parallel_bfs_with(&exec, &gu, 0);
        assert_eq!(bfs.dist[2], INF);
        assert_eq!(bfs.dist[3], INF);
        let (dial, _) = dial_sssp_with(&exec, &g, 0);
        assert_eq!(dial.dist[4], INF);
    }
}

#[test]
fn star_extreme_hub_and_leaf_queries() {
    // star: every pair of leaves is exactly 2 apart through the hub
    let g = generators::star(64);
    let oracle = build(&g, OracleMode::Unweighted);
    let pairs: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (17, 63), (5, 5)];
    let (answers, _) = oracle.query_batch(&pairs, ExecutionPolicy::Parallel { threads: 4 });
    for (&(s, t), a) in pairs.iter().zip(&answers) {
        let exact = dijkstra_pair(&g, s, t) as f64;
        assert!(a.distance >= exact && a.distance <= 2.0 * exact + 1e-9);
    }
    assert_eq!(answers[3].distance, 0.0, "s == t on the star");
    // the frontier engine settles the whole star in one expansion wave
    for exec in execs() {
        let (bfs, _) = parallel_bfs_with(&exec, &g, 0);
        assert!(bfs.dist.iter().skip(1).all(|&d| d == 1));
    }
}

#[test]
fn dumbbell_extreme_bridge_traversal() {
    // two dense lobes joined by a long bridge — the hop-count adversary
    let g = generators::dumbbell(12, 20);
    let oracle = build(&g, OracleMode::Unweighted);
    let n = g.n() as u32;
    // lobe-to-lobe must cross the whole bridge; within-lobe is ≤ 1 hop
    let pairs: Vec<(u32, u32)> = vec![(0, n - 1), (0, 1), (n - 1, n - 2), (0, 0)];
    for policy in [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ] {
        let (answers, _) = oracle.query_batch(&pairs, policy);
        for (&(s, t), a) in pairs.iter().zip(&answers) {
            let exact = dijkstra_pair(&g, s, t) as f64;
            assert!(
                a.distance >= exact && a.distance <= 2.0 * exact + 1e-9,
                "({s},{t}): {} vs exact {exact}",
                a.distance
            );
        }
    }
}

#[test]
fn self_queries_are_zero_cost_everywhere() {
    let g = generators::grid(6, 6);
    for mode in [OracleMode::Unweighted, OracleMode::Weighted] {
        let oracle = build(&g, mode);
        for v in [0u32, 17, 35] {
            let (r, cost) = oracle.query(v, v);
            assert_eq!(r.distance, 0.0);
            assert_eq!(cost, Cost::ZERO);
        }
        let pairs: Vec<(u32, u32)> = (0..36).map(|v| (v, v)).collect();
        let (answers, cost) = oracle.query_batch(&pairs, ExecutionPolicy::Parallel { threads: 2 });
        assert!(answers.iter().all(|a| a.distance == 0.0));
        assert_eq!(cost, Cost::ZERO);
    }
}
