//! seq↔par equivalence: the determinism contract of the execution layer.
//!
//! Every builder must produce a **byte-identical artifact and cost** under
//! `ExecutionPolicy::Sequential` and `Parallel { threads: 2, 4, 8 }` for
//! the same seed — ties are resolved by the frontier engine's total claim
//! order, never by scheduling. These tests are the workspace-level
//! enforcement of that contract (unit-level variants live next to each
//! engine); CI additionally runs the whole suite under `PSH_THREADS=1`
//! and `PSH_THREADS=4`, so the default-policy paths are exercised both
//! ways on every push.

use proptest::prelude::*;
use psh::prelude::*;
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::traversal::bfs::parallel_bfs_with;
use psh_graph::traversal::delta_stepping::delta_stepping_with;
use psh_graph::traversal::dial::dial_sssp_with;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POLICIES: [ExecutionPolicy; 3] = [
    ExecutionPolicy::Parallel { threads: 2 },
    ExecutionPolicy::Parallel { threads: 4 },
    ExecutionPolicy::Parallel { threads: 8 },
];

fn unit_instance(seed: u64, n: usize) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::connected_random(n, 3 * n, &mut rng)
}

fn weighted_instance(seed: u64, n: usize, wmax: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generators::connected_random(n, 3 * n, &mut rng);
    generators::with_uniform_weights(&base, 1, wmax, &mut rng)
}

#[test]
fn clustering_identical_across_policies() {
    let g = weighted_instance(1, 800, 9);
    let base = ClusterBuilder::new(0.25)
        .seed(Seed(7))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    for policy in POLICIES {
        let run = ClusterBuilder::new(0.25)
            .seed(Seed(7))
            .execution(policy)
            .build(&g)
            .unwrap();
        assert_eq!(run.artifact, base.artifact, "{policy}");
        assert_eq!(
            run.cost, base.cost,
            "{policy}: cost must not depend on execution"
        );
    }
}

#[test]
fn unweighted_spanner_identical_across_policies() {
    let g = unit_instance(2, 700);
    let base = SpannerBuilder::unweighted(3.0)
        .seed(Seed(11))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    for policy in POLICIES {
        let run = SpannerBuilder::unweighted(3.0)
            .seed(Seed(11))
            .execution(policy)
            .build(&g)
            .unwrap();
        assert_eq!(run.artifact, base.artifact, "{policy}");
        assert_eq!(run.cost, base.cost, "{policy}");
    }
}

#[test]
fn weighted_spanner_identical_across_policies() {
    let g = weighted_instance(3, 400, 1000);
    let base = SpannerBuilder::weighted(3.0)
        .seed(Seed(13))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    for policy in POLICIES {
        let run = SpannerBuilder::weighted(3.0)
            .seed(Seed(13))
            .execution(policy)
            .build(&g)
            .unwrap();
        assert_eq!(run.artifact, base.artifact, "{policy}");
        assert_eq!(run.cost, base.cost, "{policy}");
    }
}

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn hopset_identical_across_policies() {
    let g = unit_instance(4, 900);
    let base = HopsetBuilder::unweighted()
        .params(test_params())
        .seed(Seed(17))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    for policy in POLICIES {
        let run = HopsetBuilder::unweighted()
            .params(test_params())
            .seed(Seed(17))
            .execution(policy)
            .build(&g)
            .unwrap();
        assert_eq!(
            run.artifact.as_single(),
            base.artifact.as_single(),
            "{policy}"
        );
        assert_eq!(run.cost, base.cost, "{policy}");
    }
}

#[test]
fn weighted_hopset_bands_identical_across_policies() {
    let g = weighted_instance(5, 300, 40);
    let base = HopsetBuilder::weighted(0.4)
        .params(test_params())
        .seed(Seed(19))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    let base_bands = base.artifact.as_banded().unwrap();
    for policy in POLICIES {
        let run = HopsetBuilder::weighted(0.4)
            .params(test_params())
            .seed(Seed(19))
            .execution(policy)
            .build(&g)
            .unwrap();
        let bands = run.artifact.as_banded().unwrap();
        assert_eq!(bands.num_bands(), base_bands.num_bands(), "{policy}");
        for (a, b) in bands.bands.iter().zip(&base_bands.bands) {
            assert_eq!(a.hopset, b.hopset, "{policy}");
            assert_eq!(a.d, b.d, "{policy}");
        }
        assert_eq!(run.cost, base.cost, "{policy}");
    }
}

#[test]
fn oracle_answers_identical_across_policies() {
    let g = unit_instance(6, 600);
    let base = OracleBuilder::new()
        .params(test_params())
        .seed(Seed(23))
        .execution(ExecutionPolicy::Sequential)
        .build(&g)
        .unwrap();
    let pairs = [(0u32, 599u32), (5, 400), (17, 230)];
    for policy in POLICIES {
        let run = OracleBuilder::new()
            .params(test_params())
            .seed(Seed(23))
            .execution(policy)
            .build(&g)
            .unwrap();
        assert_eq!(run.cost, base.cost, "{policy}");
        for (s, t) in pairs {
            assert_eq!(
                run.artifact.query(s, t).0,
                base.artifact.query(s, t).0,
                "{policy}: query({s},{t})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_clustering_seq_equals_par(seed in 0u64..400, beta_milli in 80u64..900) {
        let beta = beta_milli as f64 / 1000.0;
        let g = weighted_instance(seed, 250, 7);
        let seq = ClusterBuilder::new(beta)
            .seed(Seed(seed))
            .execution(ExecutionPolicy::Sequential)
            .build(&g)
            .unwrap();
        let par = ClusterBuilder::new(beta)
            .seed(Seed(seed))
            .execution(ExecutionPolicy::Parallel { threads: 4 })
            .build(&g)
            .unwrap();
        prop_assert_eq!(seq.artifact, par.artifact);
        prop_assert_eq!(seq.cost, par.cost);
    }

    #[test]
    fn prop_traversals_seq_equals_par(seed in 0u64..400) {
        let g = weighted_instance(seed, 300, 15);
        let seq = Executor::sequential();
        let par = Executor::new(ExecutionPolicy::Parallel { threads: 4 });
        let (b1, c1) = parallel_bfs_with(&seq, &g, 3);
        let (b2, c2) = parallel_bfs_with(&par, &g, 3);
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(c1, c2);
        let (d1, e1) = dial_sssp_with(&seq, &g, 3);
        let (d2, e2) = dial_sssp_with(&par, &g, 3);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(e1, e2);
        let (s1, f1) = delta_stepping_with(&seq, &g, 3, 6);
        let (s2, f2) = delta_stepping_with(&par, &g, 3, 6);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(f1, f2);
    }

    #[test]
    fn prop_spanner_seq_equals_par(seed in 0u64..400) {
        let g = unit_instance(seed, 200);
        let seq = SpannerBuilder::unweighted(2.0)
            .seed(Seed(seed))
            .execution(ExecutionPolicy::Sequential)
            .build(&g)
            .unwrap();
        let par = SpannerBuilder::unweighted(2.0)
            .seed(Seed(seed))
            .execution(ExecutionPolicy::Parallel { threads: 8 })
            .build(&g)
            .unwrap();
        prop_assert_eq!(seq.artifact, par.artifact);
        prop_assert_eq!(seq.cost, par.cost);
    }
}
