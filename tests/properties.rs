//! Cross-crate property tests: the core guarantees on arbitrary random
//! inputs (small sizes, many cases) — complementing the targeted
//! integration tests with adversarial-shape coverage. All constructions
//! run through the pipeline builders.

use proptest::prelude::*;
use psh::core::spanner::verify::max_stretch_exact;
use psh::prelude::*;

fn arbitrary_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u64..16), 0..max_m).prop_map(
            move |raw| CsrGraph::from_edges(n, raw.into_iter().map(|(u, v, w)| Edge::new(u, v, w))),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Algorithm 2 output is always a subgraph, preserves connectivity,
    /// and has bounded stretch — even on disconnected/degenerate inputs.
    #[test]
    fn prop_unweighted_spanner_valid(raw in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
                                     seed in 0u64..1000, k in 1u32..6) {
        let g = CsrGraph::from_edges(30, raw.into_iter().map(|(u, v)| Edge::new(u, v, 1)));
        let s = SpannerBuilder::unweighted(k as f64).seed(Seed(seed)).build(&g).unwrap().artifact;
        prop_assert!(s.is_subgraph_of(&g));
        let stretch = max_stretch_exact(&g, &s);
        // never infinite (connectivity preserved within components)
        prop_assert!(stretch.is_finite() || g.m() == 0);
        prop_assert!(stretch <= 8.0 * k as f64 + 2.0, "stretch {stretch} for k={k}");
    }

    /// Weighted spanner: same validity on arbitrary weighted soups.
    #[test]
    fn prop_weighted_spanner_valid(g in arbitrary_graph(25, 80), seed in 0u64..1000) {
        let k = 2.0;
        let s = SpannerBuilder::weighted(k).seed(Seed(seed)).build(&g).unwrap().artifact;
        prop_assert!(s.is_subgraph_of(&g));
        let stretch = max_stretch_exact(&g, &s);
        prop_assert!(stretch.is_finite() || g.m() == 0);
        prop_assert!(stretch <= 16.0 * k + 4.0, "stretch {stretch}");
    }

    /// Hopset edges never undercut true distances and queries through
    /// them are sound (≥ exact), on arbitrary weighted graphs.
    #[test]
    fn prop_hopset_sound(g in arbitrary_graph(40, 120), seed in 0u64..1000) {
        let run = HopsetBuilder::unweighted()
            .epsilon(0.5)
            .delta(1.5)
            .gamma1(0.25)
            .gamma2(0.75)
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let h = run.artifact.into_single();
        prop_assert!(h.validate_no_shortcuts_below_distance(&g).is_ok());
        prop_assert!(h.star_count <= g.n(), "Lemma 4.3 star bound");
    }

    /// Clustering is always a valid partition with a valid forest,
    /// whatever the graph shape and β.
    #[test]
    fn prop_clustering_valid(g in arbitrary_graph(40, 120),
                             seed in 0u64..1000,
                             beta_milli in 10u64..2000) {
        let beta = beta_milli as f64 / 1000.0;
        let run = ClusterBuilder::new(beta).seed(Seed(seed)).build(&g).unwrap();
        let (c, cost) = (run.artifact, run.cost);
        prop_assert!(c.validate(&g).is_ok());
        prop_assert!(c.num_clusters >= 1);
        prop_assert!(cost.work >= g.n() as u64);
        // forest edge count check: n - #clusters tree edges
        prop_assert_eq!(c.forest_edges().len(), g.n() - c.num_clusters);
    }

    /// Builders never panic on hostile parameters: any (k, ε, β) soup
    /// either builds or reports a typed error.
    #[test]
    fn prop_builders_never_panic(g in arbitrary_graph(20, 40),
                                 k_milli in 0u64..4000,
                                 eps_milli in 0u64..1500,
                                 beta_milli in 0u64..3000,
                                 seed in 0u64..100) {
        let k = k_milli as f64 / 1000.0;
        let eps = eps_milli as f64 / 1000.0;
        let beta = beta_milli as f64 / 1000.0;
        let _ = SpannerBuilder::weighted(k).seed(Seed(seed)).build(&g);
        let _ = ClusterBuilder::new(beta).seed(Seed(seed)).build(&g);
        let _ = HopsetBuilder::weighted(eps).epsilon(eps).seed(Seed(seed)).build(&g);
    }

    /// Appendix B queries are sandwiched in [(1-ε)·d, d] on arbitrary
    /// weight scales.
    #[test]
    fn prop_weight_decomposition_sandwich(
        raw in proptest::collection::vec((0u32..20, 0u32..20, 1u64..1_000_000_000), 1..60),
        s in 0u32..20, t in 0u32..20) {
        let g = CsrGraph::from_edges(20, raw.into_iter().map(|(u, v, w)| Edge::new(u, v, w)));
        let eps = 0.3;
        let (dec, _) = WeightClassDecomposition::build(&g, eps);
        let exact = psh::graph::traversal::dijkstra::dijkstra_pair(&g, s, t);
        let approx = dec.query(s, t);
        if exact == INF {
            prop_assert_eq!(approx, INF);
        } else {
            prop_assert!(approx <= exact);
            prop_assert!(approx as f64 >= (1.0 - eps) * exact as f64 - 1.0,
                "approx {} vs exact {}", approx, exact);
        }
    }
}
