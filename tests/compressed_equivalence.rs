//! The tentpole contract of the delta-compressed adjacency: algorithms
//! driven by a [`CompressedCsr`] (or its borrowed [`CompressedView`])
//! produce **byte-identical artifacts and Costs** to the same
//! algorithms driven by the plain [`CsrGraph`], across seeds, both
//! execution policies, and both frontier queue implementations.
//!
//! Three layers are pinned down:
//!
//! 1. the substrate — every traversal engine (BFS, Dial, Δ-stepping,
//!    Dijkstra, hop-limited Bellman–Ford) is indistinguishable between
//!    the plain and compressed representations of the same graph;
//! 2. the frontier × compression cross-product — `dial_sssp_queued` and
//!    `delta_stepping_queued` land on the same bytes for every
//!    `(QueueKind, representation)` combination, which is what licenses
//!    racing the calendar queue on compressed snapshots;
//! 3. the clustering layer — `ClusterBuilder` on a compressed view
//!    equals `ClusterBuilder` on the plain graph, artifact and cost.

use proptest::prelude::*;
use psh::graph::frontier::QueueKind;
use psh::graph::traversal::bellman_ford::hop_limited_sssp;
use psh::graph::traversal::bfs::parallel_bfs_with;
use psh::graph::traversal::delta_stepping::{delta_stepping_queued, delta_stepping_with};
use psh::graph::traversal::dial::{dial_sssp_bounded_with, dial_sssp_queued, dial_sssp_with};
use psh::graph::traversal::dijkstra::dijkstra;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policies() -> [ExecutionPolicy; 2] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ]
}

fn weighted_instance(seed: u64, n: usize) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generators::connected_random(n, 2 * n + n / 4, &mut rng);
    generators::with_uniform_weights(&base, 1, 23, &mut rng)
}

#[test]
fn traversals_agree_between_plain_and_compressed() {
    for seed in 0..6u64 {
        let g = weighted_instance(seed, 150);
        let c = CompressedCsr::from_view(&g);
        let view = c.as_view();
        for policy in policies() {
            let exec = Executor::new(policy);
            assert_eq!(
                parallel_bfs_with(&exec, &g, 0),
                parallel_bfs_with(&exec, &view, 0),
                "bfs seed {seed} {policy}"
            );
            assert_eq!(
                dial_sssp_with(&exec, &g, 0),
                dial_sssp_with(&exec, &view, 0),
                "dial seed {seed} {policy}"
            );
            assert_eq!(
                dial_sssp_bounded_with(&exec, &g, &[(3, 2), (9, 0)], 40),
                dial_sssp_bounded_with(&exec, &view, &[(3, 2), (9, 0)], 40),
                "bounded dial seed {seed} {policy}"
            );
            assert_eq!(
                delta_stepping_with(&exec, &g, 0, 5),
                delta_stepping_with(&exec, &view, 0, 5),
                "delta seed {seed} {policy}"
            );
        }
        // the owned compressed form routes through the same decoder
        assert_eq!(dijkstra(&g, 0), dijkstra(&c, 0), "dijkstra seed {seed}");
        assert_eq!(
            hop_limited_sssp(&g, None, &[0, 7], 6),
            hop_limited_sssp(&view, None, &[0, 7], 6),
            "hop-limited seed {seed}"
        );
    }
}

#[test]
fn queue_kind_times_representation_is_byte_identical() {
    for seed in [1u64, 17, 20150625] {
        let g = weighted_instance(seed, 200);
        let c = CompressedCsr::from_view(&g);
        let view = c.as_view();
        for policy in policies() {
            let exec = Executor::new(policy);
            let dial_ref = dial_sssp_queued(&exec, &g, &[(0, 0)], INF, QueueKind::Btree);
            let delta_ref = delta_stepping_queued(&exec, &g, 0, 4, QueueKind::Btree);
            for kind in [QueueKind::Calendar, QueueKind::Btree] {
                assert_eq!(
                    dial_sssp_queued(&exec, &view, &[(0, 0)], INF, kind),
                    dial_ref,
                    "dial seed {seed} {policy} {kind:?}"
                );
                assert_eq!(
                    delta_stepping_queued(&exec, &view, 0, 4, kind),
                    delta_ref,
                    "delta seed {seed} {policy} {kind:?}"
                );
            }
        }
    }
}

#[test]
fn clustering_a_compressed_view_equals_clustering_the_plain_graph() {
    for seed in 0..4u64 {
        let g = weighted_instance(seed, 120);
        let c = CompressedCsr::from_view(&g);
        let view = c.as_view();
        for policy in policies() {
            let on_comp = ClusterBuilder::new(0.4)
                .seed(Seed(seed))
                .execution(policy)
                .build(&view)
                .unwrap();
            let on_plain = ClusterBuilder::new(0.4)
                .seed(Seed(seed))
                .execution(policy)
                .build(&g)
                .unwrap();
            assert_eq!(on_comp.artifact, on_plain.artifact, "seed {seed} {policy}");
            assert_eq!(on_comp.cost, on_plain.cost, "seed {seed} {policy}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary-graph sweep: multigraph/self-loop inputs collapse to a
    /// canonical CSR, and its compressed twin traverses identically
    /// under both policies and both queue kinds.
    #[test]
    fn prop_compressed_traversal_equals_plain(
        raw in proptest::collection::vec((0u32..60, 0u32..60, 1u64..30), 20..260),
        seed in 0u64..1000)
    {
        let g = CsrGraph::from_edges(60, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
        let c = CompressedCsr::from_view(&g);
        let view = c.as_view();
        let src = (seed % 60) as u32;
        for policy in policies() {
            let exec = Executor::new(policy);
            prop_assert_eq!(
                dial_sssp_with(&exec, &g, src),
                dial_sssp_with(&exec, &view, src),
                "dial {}", policy
            );
            for kind in [QueueKind::Calendar, QueueKind::Btree] {
                prop_assert_eq!(
                    delta_stepping_queued(&exec, &g, src, 3, kind),
                    delta_stepping_queued(&exec, &view, src, 3, kind),
                    "delta {} {:?}", policy, kind
                );
            }
        }
    }
}
