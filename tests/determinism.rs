//! Integration tests: every public construction is bit-deterministic
//! given a [`Seed`] — the property the probabilistic experiments and the
//! `Run`-caching plans rely on.

use psh::baselines::baswana_sen::baswana_sen_spanner;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(99);
    generators::connected_random(600, 1_800, &mut rng)
}

fn weighted_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(99);
    let base = generators::connected_random(400, 1_000, &mut rng);
    generators::with_log_uniform_weights(&base, 512.0, &mut rng)
}

fn params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn clustering_deterministic() {
    let g = graph();
    let builder = ClusterBuilder::new(0.2).seed(Seed(5));
    let a = builder.build(&g).unwrap();
    let b = builder.build(&g).unwrap();
    assert_eq!(a.artifact, b.artifact);
    assert_eq!(a.cost, b.cost, "costs must be deterministic too");
    assert_eq!(a.seed, b.seed);
}

#[test]
fn spanners_deterministic() {
    let g = graph();
    let builder = SpannerBuilder::unweighted(3.0).seed(Seed(5));
    let a = builder.build(&g).unwrap();
    let b = builder.build(&g).unwrap();
    assert_eq!(a.artifact, b.artifact);
    let wg = weighted_graph();
    let wbuilder = SpannerBuilder::weighted(3.0).seed(Seed(5));
    let a = wbuilder.build(&wg).unwrap();
    let b = wbuilder.build(&wg).unwrap();
    assert_eq!(a.artifact, b.artifact);
}

#[test]
fn hopsets_deterministic() {
    let g = graph();
    let builder = HopsetBuilder::unweighted().params(params()).seed(Seed(5));
    let a = builder.build(&g).unwrap();
    let b = builder.build(&g).unwrap();
    assert_eq!(a.artifact.as_single(), b.artifact.as_single());
    assert_eq!(a.cost, b.cost);
}

#[test]
fn weighted_hopsets_deterministic() {
    let g = weighted_graph();
    let builder = HopsetBuilder::weighted(0.4).params(params()).seed(Seed(5));
    let a = builder.build(&g).unwrap().artifact;
    let b = builder.build(&g).unwrap().artifact;
    let (a, b) = (
        a.as_banded().unwrap().clone(),
        b.as_banded().unwrap().clone(),
    );
    assert_eq!(a.total_size(), b.total_size());
    for (x, y) in a.bands.iter().zip(&b.bands) {
        assert_eq!(x.hopset, y.hopset);
        assert_eq!(x.h, y.h);
    }
}

#[test]
fn limited_hopsets_deterministic() {
    let g = generators::path(300);
    let builder = HopsetBuilder::limited(0.6).epsilon(0.5).seed(Seed(5));
    let a = builder.build(&g).unwrap().artifact.into_single();
    let b = builder.build(&g).unwrap().artifact.into_single();
    assert_eq!(a, b);
}

#[test]
fn oracle_deterministic() {
    let g = graph();
    let builder = OracleBuilder::new().params(params()).seed(Seed(5));
    let a = builder.build(&g).unwrap();
    let b = builder.build(&g).unwrap();
    assert_eq!(a.artifact.hopset_size(), b.artifact.hopset_size());
    assert_eq!(a.cost, b.cost);
    for (s, t) in [(0u32, 599u32), (7, 311)] {
        assert_eq!(a.artifact.query(s, t).0, b.artifact.query(s, t).0);
    }
}

#[test]
fn baselines_deterministic() {
    let g = graph();
    let (a, _) = baswana_sen_spanner(&g, 3, &mut StdRng::seed_from_u64(5));
    let (b, _) = baswana_sen_spanner(&g, 3, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    // sanity: the seed actually matters (we are not accidentally
    // derandomized, which would invalidate the probabilistic analysis)
    let g = graph();
    let a = ClusterBuilder::new(0.2)
        .seed(Seed(1))
        .build(&g)
        .unwrap()
        .artifact;
    let b = ClusterBuilder::new(0.2)
        .seed(Seed(2))
        .build(&g)
        .unwrap()
        .artifact;
    assert_ne!(a.center, b.center);
}
