//! Integration tests: every public construction is bit-deterministic
//! given a seed — the property the probabilistic experiments and
//! EXPERIMENTS.md's recorded numbers rely on.

use psh::baselines::baswana_sen::baswana_sen_spanner;
use psh::core::hopset::limited::low_depth_hopset;
use psh::core::hopset::weighted::build_weighted_hopsets;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(99);
    generators::connected_random(600, 1_800, &mut rng)
}

fn weighted_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(99);
    let base = generators::connected_random(400, 1_000, &mut rng);
    generators::with_log_uniform_weights(&base, 512.0, &mut rng)
}

#[test]
fn clustering_deterministic() {
    let g = graph();
    let (a, ca) = est_cluster(&g, 0.2, &mut StdRng::seed_from_u64(5));
    let (b, cb) = est_cluster(&g, 0.2, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
    assert_eq!(ca, cb, "costs must be deterministic too");
}

#[test]
fn spanners_deterministic() {
    let g = graph();
    let (a, _) = unweighted_spanner(&g, 3.0, &mut StdRng::seed_from_u64(5));
    let (b, _) = unweighted_spanner(&g, 3.0, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
    let wg = weighted_graph();
    let (a, _) = weighted_spanner(&wg, 3.0, &mut StdRng::seed_from_u64(5));
    let (b, _) = weighted_spanner(&wg, 3.0, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

#[test]
fn hopsets_deterministic() {
    let g = graph();
    let p = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let (a, ca) = build_hopset(&g, &p, &mut StdRng::seed_from_u64(5));
    let (b, cb) = build_hopset(&g, &p, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
    assert_eq!(ca, cb);
}

#[test]
fn weighted_hopsets_deterministic() {
    let g = weighted_graph();
    let p = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let (a, _) = build_weighted_hopsets(&g, &p, 0.4, &mut StdRng::seed_from_u64(5));
    let (b, _) = build_weighted_hopsets(&g, &p, 0.4, &mut StdRng::seed_from_u64(5));
    assert_eq!(a.total_size(), b.total_size());
    for (x, y) in a.bands.iter().zip(&b.bands) {
        assert_eq!(x.hopset, y.hopset);
        assert_eq!(x.h, y.h);
    }
}

#[test]
fn limited_hopsets_deterministic() {
    let g = generators::path(300);
    let (a, _) = low_depth_hopset(&g, 0.6, 0.5, &mut StdRng::seed_from_u64(5));
    let (b, _) = low_depth_hopset(&g, 0.6, 0.5, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

#[test]
fn baselines_deterministic() {
    let g = graph();
    let (a, _) = baswana_sen_spanner(&g, 3, &mut StdRng::seed_from_u64(5));
    let (b, _) = baswana_sen_spanner(&g, 3, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    // sanity: the seed actually matters (we are not accidentally
    // derandomized, which would invalidate the probabilistic analysis)
    let g = graph();
    let (a, _) = est_cluster(&g, 0.2, &mut StdRng::seed_from_u64(1));
    let (b, _) = est_cluster(&g, 0.2, &mut StdRng::seed_from_u64(2));
    assert_ne!(a.center, b.center);
}
