//! The tentpole contract of the GraphView refactor: algorithms driven by
//! arena-backed [`CsrView`]s produce **byte-identical artifacts and
//! Costs** to the same algorithms driven by materialized [`CsrGraph`]s,
//! across seeds and both execution policies.
//!
//! Three layers are pinned down:
//!
//! 1. the substrate — an arena child and its materialized twin are
//!    indistinguishable through every traversal engine (BFS, Dial,
//!    Δ-stepping, Dijkstra);
//! 2. the clustering race — `ClusterBuilder` on a view equals
//!    `ClusterBuilder` on the materialized child, artifact and cost;
//! 3. the hopset recursion — `SplitStrategy::Arena` (production) and
//!    `SplitStrategy::Materialize` (legacy reference) build identical
//!    hopsets under `Sequential` and `Parallel` policies alike, and the
//!    default builder path equals both.

use proptest::prelude::*;
use psh::core::hopset::unweighted::build_hopset_with_strategy_on;
use psh::core::hopset::SplitStrategy;
use psh::graph::subgraph::split_by_labels;
use psh::graph::traversal::bfs::parallel_bfs_with;
use psh::graph::traversal::delta_stepping::delta_stepping_with;
use psh::graph::traversal::dial::dial_sssp_with;
use psh::graph::traversal::dijkstra::dijkstra;
use psh::graph::view::SplitArena;
use psh::graph::GraphView;
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policies() -> [ExecutionPolicy; 2] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ]
}

/// Random weighted graph + a dense labeling from an actual clustering
/// (the labelings the recursion feeds to the split).
fn clustered_instance(seed: u64) -> (CsrGraph, Vec<u32>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generators::connected_random(120, 260, &mut rng);
    let g = generators::with_uniform_weights(&base, 1, 9, &mut rng);
    let c = ClusterBuilder::new(0.3)
        .seed(Seed(seed ^ 0xABCD))
        .build(&g)
        .unwrap()
        .artifact;
    let k = c.num_clusters;
    (g, c.cluster_id, k)
}

#[test]
fn traversals_agree_on_views_and_materialized_children() {
    for seed in 0..6u64 {
        let (g, labels, k) = clustered_instance(seed);
        let mut arena = SplitArena::new();
        arena.split(&g, &labels, k);
        let (subs, _) = split_by_labels(&g, &labels, k);
        for policy in policies() {
            let exec = Executor::new(policy);
            for (cid, sub) in subs.iter().enumerate() {
                if sub.n() == 0 {
                    continue;
                }
                let view = arena.view(cid);
                assert_eq!(
                    parallel_bfs_with(&exec, &view, 0),
                    parallel_bfs_with(&exec, &sub.graph, 0),
                    "bfs seed {seed} cluster {cid} {policy}"
                );
                assert_eq!(
                    dial_sssp_with(&exec, &view, 0),
                    dial_sssp_with(&exec, &sub.graph, 0),
                    "dial seed {seed} cluster {cid} {policy}"
                );
                assert_eq!(
                    delta_stepping_with(&exec, &view, 0, 3),
                    delta_stepping_with(&exec, &sub.graph, 0, 3),
                    "delta seed {seed} cluster {cid} {policy}"
                );
                assert_eq!(
                    dijkstra(&view, 0),
                    dijkstra(&sub.graph, 0),
                    "dijkstra seed {seed} cluster {cid}"
                );
            }
        }
    }
}

#[test]
fn clustering_a_view_equals_clustering_the_materialized_child() {
    for seed in 0..6u64 {
        let (g, labels, k) = clustered_instance(seed);
        let mut arena = SplitArena::new();
        arena.split(&g, &labels, k);
        let (subs, _) = split_by_labels(&g, &labels, k);
        for policy in policies() {
            for (cid, sub) in subs.iter().enumerate() {
                let view = arena.view(cid);
                let on_view = ClusterBuilder::new(0.5)
                    .seed(Seed(seed))
                    .execution(policy)
                    .build(&view)
                    .unwrap();
                let on_graph = ClusterBuilder::new(0.5)
                    .seed(Seed(seed))
                    .execution(policy)
                    .build(&sub.graph)
                    .unwrap();
                assert_eq!(
                    on_view.artifact, on_graph.artifact,
                    "seed {seed} cluster {cid} {policy}"
                );
                assert_eq!(on_view.cost, on_graph.cost, "seed {seed} cluster {cid}");
                on_view.artifact.validate(&view).unwrap();
            }
        }
    }
}

/// Shared fixed-seed hopset instance for the strategy matrix.
fn hopset_instance(seed: u64, n: usize) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::connected_random(n, 2 * n, &mut rng)
}

fn hopset_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn hopset_strategy_matrix_is_byte_identical() {
    let params = hopset_params();
    for seed in [0u64, 9, 20150625] {
        let g = hopset_instance(seed, 600);
        let beta0 = params.beta0(g.n());
        // reference: sequential, materializing (the legacy pipeline)
        let reference = build_hopset_with_strategy_on(
            &Executor::sequential(),
            &g,
            &params,
            beta0,
            SplitStrategy::Materialize,
            &mut StdRng::seed_from_u64(seed),
        );
        for policy in policies() {
            for strategy in [SplitStrategy::Arena, SplitStrategy::Materialize] {
                let got = build_hopset_with_strategy_on(
                    &Executor::new(policy),
                    &g,
                    &params,
                    beta0,
                    strategy,
                    &mut StdRng::seed_from_u64(seed),
                );
                assert_eq!(got, reference, "seed {seed} {policy} {strategy:?}");
            }
        }
        // the public builder takes the arena path by default and must
        // land on the same bytes
        let (built, built_cost) = HopsetBuilder::unweighted()
            .params(params)
            .build_with_rng(&g, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(built.into_single(), reference.0, "builder seed {seed}");
        assert_eq!(built_cost, reference.1, "builder cost seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary-seed sweep of the tentpole property: the arena recursion
    /// is indistinguishable from the materializing recursion for both
    /// execution policies.
    #[test]
    fn prop_hopset_arena_equals_materialize(seed in 0u64..5000) {
        let g = hopset_instance(seed, 300);
        let params = hopset_params();
        let beta0 = params.beta0(g.n());
        let reference = build_hopset_with_strategy_on(
            &Executor::sequential(),
            &g,
            &params,
            beta0,
            SplitStrategy::Materialize,
            &mut StdRng::seed_from_u64(seed),
        );
        for policy in policies() {
            let arena = build_hopset_with_strategy_on(
                &Executor::new(policy),
                &g,
                &params,
                beta0,
                SplitStrategy::Arena,
                &mut StdRng::seed_from_u64(seed),
            );
            prop_assert_eq!(&arena, &reference, "{}", policy);
        }
    }

    /// Views carved from arbitrary labelings cluster identically to their
    /// materialized twins (weighted graphs, both policies).
    #[test]
    fn prop_view_clustering_equals_materialized(
        raw in proptest::collection::vec((0u32..50, 0u32..50, 1u64..12), 30..220),
        labels in proptest::collection::vec(0u32..4, 50),
        seed in 0u64..1000)
    {
        let g = CsrGraph::from_edges(50, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
        let mut arena = SplitArena::new();
        arena.split(&g, &labels, 4);
        let (subs, _) = split_by_labels(&g, &labels, 4);
        for policy in policies() {
            for (cid, sub) in subs.iter().enumerate() {
                let view = arena.view(cid);
                prop_assert_eq!(view.n(), sub.n());
                let a = ClusterBuilder::new(0.4)
                    .seed(Seed(seed))
                    .execution(policy)
                    .build(&view)
                    .unwrap();
                let b = ClusterBuilder::new(0.4)
                    .seed(Seed(seed))
                    .execution(policy)
                    .build(&sub.graph)
                    .unwrap();
                prop_assert_eq!(&a.artifact, &b.artifact, "cluster {} {}", cid, policy);
                prop_assert_eq!(a.cost, b.cost);
            }
        }
    }
}
