//! Integration tests for the sharded oracle: the cross-shard stretch
//! sandwich property-tested against exact Dijkstra, build/answer
//! determinism across execution policies, the sharded manifest round
//! trip through `OracleService`, and a swap storm proving that a served
//! answer is always attributable to exactly one stitched generation —
//! never a mix of shard A's epoch k with shard B's epoch k−1.
//!
//! Stretch calibration: every composed answer is a `min` over sound
//! upper bounds, and the module-level proof in `psh_core::shard` bounds
//! the composition by `max(c_shard, c_overlay)`. The overlay is always
//! weighted (its clique weights are exact boundary distances), so with
//! the test parameters the composed bound is the weighted oracle's
//! `3×` — the same constant the monolithic §5 tests assert.

use proptest::prelude::*;
use psh::core::shard::{shard_snapshot_path, ShardedOracle};
use psh::graph::traversal::dijkstra::dijkstra_pair;
use psh::pipeline::PshError;
use psh::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

/// The composed stretch sandwich for one pair: `exact ≤ answer ≤ 3·exact`,
/// `∞` exactly when disconnected.
fn assert_sandwich(g: &CsrGraph, r: QueryResult, s: u32, t: u32) {
    let exact = dijkstra_pair(g, s, t);
    if exact == INF {
        assert!(
            r.distance.is_infinite(),
            "({s},{t}) disconnected but answered {}",
            r.distance
        );
    } else {
        assert!(
            r.distance >= exact as f64 - 1e-9,
            "({s},{t}): answer {} undershoots exact {exact}",
            r.distance
        );
        assert!(
            r.distance <= 3.0 * exact as f64 + 1e-9,
            "({s},{t}): answer {} exceeds 3× exact {exact}",
            r.distance
        );
    }
}

fn pairs_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cross-shard composed answers on arbitrary weighted soups satisfy
    /// the 3× stretch sandwich vs exact Dijkstra, and both the *build*
    /// and the *queries* are byte-identical between Sequential and
    /// Parallel{4} execution.
    #[test]
    fn prop_sharded_stretch_sandwich_and_policy_identity(
        raw in proptest::collection::vec((0u32..30, 0u32..30, 1u64..64), 0..100),
        pairs in pairs_strategy(30),
        shards in 1usize..5,
        seed in 0u64..200,
    ) {
        let g = CsrGraph::from_edges(30, raw.into_iter().map(|(u, v, w)| Edge::new(u, v, w)));
        let builder = ShardedOracleBuilder::new(shards)
            .params(test_params())
            .seed(Seed(seed));
        let seq = builder
            .clone()
            .execution(ExecutionPolicy::Sequential)
            .build(&g)
            .unwrap();
        let par = builder
            .execution(ExecutionPolicy::Parallel { threads: 4 })
            .build(&g)
            .unwrap();
        prop_assert_eq!(seq.cost, par.cost, "build cost must be policy-invariant");

        for &(s, t) in &pairs {
            let (r, _) = seq.artifact.query(s, t);
            assert_sandwich(&g, r, s, t);
        }
        let (a_seq, c_seq) = seq.artifact.query_batch(&pairs, ExecutionPolicy::Sequential);
        let (a_par, c_par) = seq
            .artifact
            .query_batch(&pairs, ExecutionPolicy::Parallel { threads: 4 });
        prop_assert_eq!(&a_seq, &a_par, "query_batch answers must be policy-invariant");
        prop_assert_eq!(c_seq, c_par, "query_batch cost must be policy-invariant");
        // the artifact built under Parallel{4} answers identically too
        let (a_cross, c_cross) = par.artifact.query_batch(&pairs, ExecutionPolicy::Sequential);
        prop_assert_eq!(&a_seq, &a_cross, "artifacts must not depend on the build policy");
        prop_assert_eq!(c_seq, c_cross);
    }
}

/// A weighted path whose long edges make every storm mutation (a
/// weight-1 shortcut inside one shard) observably change answers.
fn storm_graph(n: usize) -> CsrGraph {
    CsrGraph::from_edges(n, (0..n - 1).map(|i| Edge::new(i as u32, i as u32 + 1, 8)))
}

/// Sharded manifests round-trip byte-identically, serve through
/// `OracleService` like any `DistanceOracle`, and the loader feeds
/// `assemble`, which rejects a manifest whose overlay predates its
/// shards.
#[test]
fn sharded_manifest_serves_identically_through_service() {
    let g = storm_graph(64);
    let (run, parts) = ShardedOracleBuilder::new(3)
        .params(test_params())
        .seed(Seed(7))
        .build_with_parts(&g)
        .unwrap();
    let built = Arc::new(run.artifact);
    let base = std::env::temp_dir().join(format!("psh_sharded_it_{}.snap", std::process::id()));
    snapshot::save_sharded(&base, &built, &parts).unwrap();
    let (loaded, _) = snapshot::load_sharded(&base, psh::graph::LoadMode::Read).unwrap();
    let loaded = Arc::new(loaded);

    let pairs: Vec<(u32, u32)> = (0..32).map(|i| (i, 63 - i)).collect();
    let expect = built.query_batch(&pairs, ExecutionPolicy::Sequential);
    let got = loaded.query_batch(&pairs, ExecutionPolicy::Parallel { threads: 4 });
    assert_eq!(expect, got, "manifest round trip must preserve answers");

    let service = OracleService::from_arc(
        Arc::clone(&loaded) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(ExecutionPolicy::Parallel { threads: 4 }),
    );
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let (a, epoch) = service.query_attributed(s, t);
        assert_eq!(epoch, 0);
        assert_eq!(a.distance.to_bits(), expect.0[i].distance.to_bits());
    }

    // tamper: an overlay built from older shard epochs must be rejected
    let plan = Arc::clone(loaded.plan());
    let shards: Vec<_> = (0..loaded.num_shards())
        .map(|s| Arc::clone(loaded.shard(s)))
        .collect();
    let mut stale = loaded.overlay().expect("path has a boundary").clone();
    stale.built_from[0] += 1;
    let err = ShardedOracle::assemble(plan, shards, loaded.epochs().to_vec(), Some(stale), None)
        .expect_err("mixed-epoch stitch must be rejected");
    assert!(
        matches!(err, PshError::ShardEpochMismatch { .. }),
        "wrong error: {err}"
    );

    for s in 0..built.num_shards() {
        let _ = std::fs::remove_file(shard_snapshot_path(&base, s));
    }
    let _ = std::fs::remove_file(psh::core::shard::overlay_snapshot_path(&base));
    let _ = std::fs::remove_file(&base);
}

/// The swap storm: client threads hammer `query_attributed` without
/// pause while the main thread appends per-shard journal records and
/// polls a `ShardedReloader`. Every answer must match — bit for bit —
/// the reference answers of the *single* stitched generation its epoch
/// tag names. A stitch that mixed shard epochs would produce an answer
/// matching no generation, because every mutation observably changes
/// the touched shard's answers.
#[test]
fn swap_storm_never_serves_a_mixed_epoch_stitch() {
    const EPOCHS: usize = 4;
    const CLIENTS: usize = 4;

    let g = storm_graph(96);
    let (run, parts) = ShardedOracleBuilder::new(4)
        .params(test_params())
        .seed(Seed(11))
        .build_with_parts(&g)
        .unwrap();
    let oracle = Arc::new(run.artifact);
    let plan = Arc::clone(oracle.plan());
    let k = oracle.num_shards();
    assert!(k >= 2, "the storm needs a real partition, got {k} shard(s)");
    let base: PathBuf =
        std::env::temp_dir().join(format!("psh_sharded_storm_{}.snap", std::process::id()));
    // start from clean journals — only this test's appends replay
    for s in 0..k {
        let _ = std::fs::remove_file(snapshot::journal_path(shard_snapshot_path(&base, s)));
    }

    // the workload spans every shard: local endpoints + cross-shard pairs
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for s in 0..k {
        let members = plan.members(s);
        pairs.push((members[0], members[members.len() - 1]));
        pairs.push((members[0], plan.members((s + 1) % k)[0]));
    }

    // one journal record per epoch: a weight-1 shortcut across shard
    // `e % k`, in shard-local ids — far-apart endpoints on a weight-8
    // path, so the fold observably changes that shard's answers
    let record_for = |e: usize| -> (usize, GraphDelta) {
        let s = e % k;
        let ns = plan.members(s).len();
        // offset endpoints per pass so a shard hit twice never inserts a
        // duplicate edge
        let off = (e / k) as u32;
        let mut delta = GraphDelta::new(ns);
        delta.insert(off, ns as u32 - 1 - off, 1).unwrap();
        (s, delta)
    };

    // --- phase 1: replay the journal sequence to precompute every
    // generation's reference answers (rebuilds are seeded, so phase 2
    // reproduces these bytes exactly)
    let mut refs: Vec<Vec<QueryResult>> = Vec::with_capacity(EPOCHS + 1);
    refs.push(pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect());
    {
        let warm = OracleService::from_arc(
            Arc::clone(&oracle) as Arc<dyn DistanceOracle>,
            ServiceConfig::with_policy(ExecutionPolicy::Sequential),
        );
        let mut reloader = ShardedReloader::new(&base, Arc::clone(&oracle), parts.clone());
        for e in 1..=EPOCHS {
            let (s, delta) = record_for(e);
            snapshot::append_journal(reloader.journal(s), &delta).unwrap();
            let report = reloader
                .poll(&warm)
                .unwrap()
                .expect("a fresh record must swap");
            assert_eq!(report.epoch, e as u64);
            assert_eq!(report.shards, vec![s as u32]);
            refs.push(
                pairs
                    .iter()
                    .map(|&(s, t)| reloader.current().query(s, t).0)
                    .collect(),
            );
        }
    }
    for e in 1..=EPOCHS {
        assert_ne!(refs[e - 1], refs[e], "epoch {e} changed no answer");
    }
    for s in 0..k {
        std::fs::remove_file(snapshot::journal_path(shard_snapshot_path(&base, s))).unwrap();
    }

    // --- phase 2: the same sequence under concurrent fire
    let service = OracleService::from_arc(
        Arc::clone(&oracle) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(ExecutionPolicy::Sequential),
    );
    let mut reloader = ShardedReloader::new(&base, Arc::clone(&oracle), parts);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (service, done, pairs, refs) = (&service, &done, &pairs, &refs);
            scope.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    for j in 0..pairs.len() {
                        // rotate the start per client so the threads
                        // don't hit the pairs in lockstep
                        let i = (j + c) % pairs.len();
                        let (s, t) = pairs[i];
                        let (a, epoch) = service.query_attributed(s, t);
                        assert!(
                            (epoch as usize) < refs.len(),
                            "answer attributed to unknown epoch {epoch}"
                        );
                        let r = &refs[epoch as usize][i];
                        assert!(
                            a.distance.to_bits() == r.distance.to_bits()
                                && a.upper_bound == r.upper_bound,
                            "pair {i} diverged from generation {epoch}: got {} vs {} — \
                             a mixed-epoch stitch or a torn swap",
                            a.distance,
                            r.distance
                        );
                    }
                }
                // settled pass: the storm is over, only the final
                // generation may answer
                for (i, &(s, t)) in pairs.iter().enumerate() {
                    let (a, epoch) = service.query_attributed(s, t);
                    assert_eq!(epoch as usize, EPOCHS, "stale generation after the storm");
                    assert_eq!(a.distance.to_bits(), refs[EPOCHS][i].distance.to_bits());
                }
            });
        }

        for e in 1..=EPOCHS {
            let (s, delta) = record_for(e);
            snapshot::append_journal(reloader.journal(s), &delta).unwrap();
            let report = reloader
                .poll(&service)
                .unwrap()
                .expect("a fresh record must swap");
            assert_eq!(report.epoch, e as u64);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        done.store(true, Ordering::SeqCst);
    });
    assert_eq!(service.epoch(), EPOCHS as u64);
    assert_eq!(
        reloader.current().epochs(),
        {
            // per-shard journal epochs: one bump per record that hit the shard
            let mut want = vec![0u64; k];
            for e in 1..=EPOCHS {
                want[e % k] += 1;
            }
            want
        }
        .as_slice()
    );

    for s in 0..k {
        let _ = std::fs::remove_file(snapshot::journal_path(shard_snapshot_path(&base, s)));
    }
}
