//! Property tests for the serving path: on random weighted and
//! unweighted graphs, every oracle `query` / `query_batch` answer is
//! sandwiched between the exact Dijkstra distance and a stretch multiple
//! of it, across `Sequential` and `Parallel { 4 }` policies — and the
//! snapshot round trip preserves every answer bit for bit.
//!
//! Stretch calibration: with the test parameters (`ε = 0.5`, `δ = 1.5`,
//! `γ₁ = 0.25`, `γ₂ = 0.75`) the unweighted hop budget is generous at
//! these sizes, so unweighted answers stay within `2×` exact (the same
//! bound the targeted oracle tests assert on grids); the weighted path
//! adds the rounding distortion of Lemma 5.2, bounded well inside `3×`
//! (the bound the §5 tests use).

use proptest::prelude::*;
use psh::graph::traversal::dijkstra::dijkstra_pair;
use psh::prelude::*;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

/// Check the stretch sandwich for one pair; `stretch` is the calibrated
/// upper factor for the construction under test.
fn assert_sandwich(g: &CsrGraph, r: QueryResult, s: u32, t: u32, stretch: f64) {
    let exact = dijkstra_pair(g, s, t);
    if exact == INF {
        assert!(
            r.distance.is_infinite(),
            "({s},{t}) disconnected but answered {}",
            r.distance
        );
    } else {
        assert!(
            r.distance >= exact as f64 - 1e-9,
            "({s},{t}): answer {} undershoots exact {exact}",
            r.distance
        );
        assert!(
            r.distance <= stretch * exact as f64 + 1e-9,
            "({s},{t}): answer {} exceeds {stretch}× exact {exact}",
            r.distance
        );
    }
}

fn run_workload(g: &CsrGraph, mode: OracleMode, seed: u64, pairs: &[(u32, u32)], stretch: f64) {
    let run = OracleBuilder::new()
        .params(test_params())
        .mode(mode)
        .seed(Seed(seed))
        .build(g)
        .unwrap();

    // single queries satisfy the sandwich…
    for &(s, t) in pairs {
        let (r, _) = run.artifact.query(s, t);
        assert_sandwich(g, r, s, t, stretch);
    }
    // …and query_batch returns the same answers under both policies
    let (seq, seq_cost) = run.artifact.query_batch(pairs, ExecutionPolicy::Sequential);
    let (par, par_cost) = run
        .artifact
        .query_batch(pairs, ExecutionPolicy::Parallel { threads: 4 });
    assert_eq!(seq, par);
    assert_eq!(seq_cost, par_cost);
    for (&(s, t), &r) in pairs.iter().zip(&seq) {
        assert_sandwich(g, r, s, t, stretch);
    }
    // the snapshot round trip changes nothing
    let meta = OracleMeta::of_run(&run, test_params());
    let mut buf = Vec::new();
    snapshot::write_oracle(&mut buf, &run.artifact, &meta).unwrap();
    let (served, _) = snapshot::read_oracle(buf.as_slice()).unwrap();
    let (loaded, loaded_cost) = served.query_batch(pairs, ExecutionPolicy::Parallel { threads: 4 });
    assert_eq!(loaded, seq);
    assert_eq!(loaded_cost, seq_cost);
}

fn pairs_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unweighted oracle: `exact ≤ approx ≤ 2·exact` on arbitrary
    /// unit-weight soups (disconnected pairs answer ∞), Sequential and
    /// Parallel{4} agreeing bit for bit.
    #[test]
    fn prop_unweighted_oracle_stretch_sandwich(
        raw in proptest::collection::vec((0u32..40, 0u32..40), 0..140),
        pairs in pairs_strategy(40),
        seed in 0u64..500,
    ) {
        let g = CsrGraph::from_edges(40, raw.into_iter().map(|(u, v)| Edge::new(u, v, 1)));
        run_workload(&g, OracleMode::Unweighted, seed, &pairs, 2.0);
    }

    /// Weighted oracle (§5 bands): `exact ≤ approx ≤ 3·exact` on
    /// arbitrary weighted soups, same policy agreement.
    #[test]
    fn prop_weighted_oracle_stretch_sandwich(
        raw in proptest::collection::vec((0u32..30, 0u32..30, 1u64..64), 0..100),
        pairs in pairs_strategy(30),
        seed in 0u64..500,
    ) {
        let g = CsrGraph::from_edges(30, raw.into_iter().map(|(u, v, w)| Edge::new(u, v, w)));
        run_workload(&g, OracleMode::Weighted, seed, &pairs, 3.0);
    }
}
