//! The concurrent-serving contract under real OS-thread contention:
//! 32 client threads hammer one shared [`OracleService`] with
//! interleaved queries and every answer must be **byte-identical** to
//! the single-threaded `query` / `query_batch` reference — under both
//! `ExecutionPolicy` variants, on unweighted and weighted oracles, and
//! with mixed single/batch submission. This is the integration-level
//! proof behind `psh_core::service`'s determinism claim (PR 5's
//! acceptance criterion).

use psh::core::service::{CacheConfig, OracleService, ServiceConfig};
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 32;

fn test_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

fn service_policies() -> [ExecutionPolicy; 2] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ]
}

/// Far pairs, neighbors, self-pairs, repeats — everything a real
/// workload interleaves.
fn workload(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..q)
        .map(|i| {
            if i % 9 == 0 {
                let v = rng.random_range(0..n as u32);
                (v, v)
            } else {
                (rng.random_range(0..n as u32), rng.random_range(0..n as u32))
            }
        })
        .collect()
}

fn build_oracle(weighted: bool, seed: u64) -> ApproxShortestPaths {
    let base = generators::grid(12, 12);
    let g = if weighted {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::with_uniform_weights(&base, 1, 20, &mut rng)
    } else {
        base
    };
    OracleBuilder::new()
        .params(test_params())
        .seed(Seed(seed))
        .build(&g)
        .unwrap()
        .artifact
}

/// Fan `pairs` over `CLIENTS` OS threads (thread `k` takes indices
/// `k, k+CLIENTS, …`, preserving per-thread submission order) and
/// reassemble the answers in workload order.
fn hammer(service: &OracleService, pairs: &[(u32, u32)]) -> Vec<QueryResult> {
    let indexed: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                scope.spawn(move || {
                    pairs
                        .iter()
                        .enumerate()
                        .skip(k)
                        .step_by(CLIENTS)
                        .map(|(i, &(s, t))| (i, service.query(s, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread survived"))
            .collect()
    });
    let mut answers = vec![None; pairs.len()];
    for (i, a) in indexed {
        answers[i] = Some(a);
    }
    answers.into_iter().map(|a| a.unwrap()).collect()
}

/// The acceptance criterion: 32 interleaved client threads, every answer
/// byte-identical to the single-threaded reference, both policies, both
/// oracle modes.
#[test]
fn thirty_two_clients_serve_byte_identically() {
    for weighted in [false, true] {
        let oracle = build_oracle(weighted, 42);
        let n = oracle.graph().n();
        let pairs = workload(n, 384, 7);
        // single-threaded references: one-at-a-time `query`, and one
        // `query_batch` call (they must agree with each other first)
        let reference: Vec<QueryResult> =
            pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
        let (batch_ref, _) = oracle.query_batch(&pairs, ExecutionPolicy::Sequential);
        assert_eq!(
            batch_ref, reference,
            "query_batch ≡ query (weighted={weighted})"
        );

        let shared = Arc::new(oracle);
        for policy in service_policies() {
            let service = OracleService::from_arc(
                Arc::clone(&shared) as Arc<dyn DistanceOracle>,
                ServiceConfig::with_policy(policy),
            );
            let answers = hammer(&service, &pairs);
            assert_eq!(
                answers, reference,
                "32-client answers diverged (weighted={weighted}, {policy})"
            );
            let stats = service.stats();
            assert_eq!(stats.served, pairs.len() as u64);
            assert_eq!(stats.latencies_ms.len(), pairs.len());
            assert!(stats.batches >= 1 && stats.batches <= pairs.len() as u64);
            assert!(stats.largest_batch >= 1 && stats.largest_batch <= 256);
            assert!(stats.qps > 0.0, "elapsed window must be positive");
            assert!(stats.p50_ms <= stats.p999_ms);
        }
    }
}

/// Mixed submission shapes: some clients send single queries, others
/// whole batches — coalescing may merge them arbitrarily, answers must
/// not change, and batch answers must come back in input order.
#[test]
fn mixed_single_and_batch_clients_stay_consistent() {
    let oracle = build_oracle(false, 9);
    let n = oracle.graph().n();
    let pairs = workload(n, 320, 11);
    let reference: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();

    for policy in service_policies() {
        // same seed ⇒ byte-identical oracle, so the reference above applies
        let service =
            OracleService::new(build_oracle(false, 9), ServiceConfig::with_policy(policy));
        let chunk = pairs.len() / CLIENTS;
        let answers: Vec<(usize, Vec<QueryResult>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|k| {
                    let service = &service;
                    let slice = &pairs[k * chunk..(k + 1) * chunk];
                    scope.spawn(move || {
                        if k % 2 == 0 {
                            // batch client: one submission for its slice
                            (k, service.query_batch(slice))
                        } else {
                            // single-query client: one call per pair
                            (k, slice.iter().map(|&(s, t)| service.query(s, t)).collect())
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (k, got) in answers {
            assert_eq!(
                got,
                reference[k * chunk..(k + 1) * chunk],
                "client {k} diverged under {policy}"
            );
        }
        assert_eq!(service.stats().served, (chunk * CLIENTS) as u64);
    }
}

/// Contended batch caps: a small `max_batch` forces every large burst
/// through many leader rotations without changing any answer.
#[test]
fn tiny_batch_cap_under_contention_is_still_identical() {
    let oracle = build_oracle(false, 13);
    let n = oracle.graph().n();
    let pairs = workload(n, 256, 17);
    let reference: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
    let shared = Arc::new(oracle);
    for policy in service_policies() {
        let service = OracleService::from_arc(
            Arc::clone(&shared) as Arc<dyn DistanceOracle>,
            ServiceConfig {
                policy,
                max_batch: 3,
                cache: None,
            },
        );
        let answers = hammer(&service, &pairs);
        assert_eq!(answers, reference, "max_batch=3 diverged under {policy}");
        let stats = service.stats();
        assert!(
            stats.largest_batch <= 3,
            "cap violated: {}",
            stats.largest_batch
        );
        assert!(stats.batches >= (pairs.len() / 3) as u64);
    }
}

/// Hot-swap under a query storm: 32 client threads hammer the service
/// while the main thread drives a chain of epoch swaps (each epoch's
/// graph is the previous one plus a delta). Every answer must be
/// attributed to a *valid* epoch and byte-identical to that epoch's
/// reference oracle — no torn batches (an answer computed on one epoch
/// attributed to another), no stale cache hits after a flush. After the
/// storm, a settled pass must see only the final epoch.
#[test]
fn swap_storm_attributes_every_answer_to_a_valid_epoch() {
    const EPOCHS: usize = 6;
    let seed = 42u64;

    // the epoch chain: graphs[e] = graphs[e-1] + delta_e, oracles[e]
    // built fresh from graphs[e] with identical params/seed
    let base = {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::with_uniform_weights(&generators::grid(12, 12), 1, 20, &mut rng)
    };
    let n = base.n();
    let mut graphs = vec![base];
    for e in 1..=EPOCHS {
        let mut delta = GraphDelta::new(n);
        // each epoch adds a new unit-weight shortcut from vertex 0 and
        // retires the previous epoch's one, so distances keep changing
        let far = (100 + e) as u32;
        delta.insert(0, far, 1).unwrap();
        if e > 1 {
            delta.delete(0, far - 1).unwrap();
        }
        let next = graphs[e - 1].apply_delta(&delta).unwrap();
        graphs.push(next);
    }
    let oracles: Vec<Arc<ApproxShortestPaths>> = graphs
        .iter()
        .map(|g| {
            Arc::new(
                OracleBuilder::new()
                    .params(test_params())
                    .seed(Seed(seed))
                    .build(g)
                    .unwrap()
                    .artifact,
            )
        })
        .collect();

    let pairs = workload(n, 128, 31);
    let refs: Vec<Vec<QueryResult>> = oracles
        .iter()
        .map(|o| pairs.iter().map(|&(s, t)| o.query(s, t).0).collect())
        .collect();
    // the swaps must be observable: consecutive epochs disagree somewhere
    for e in 1..=EPOCHS {
        assert_ne!(refs[e - 1], refs[e], "epoch {e} changed no answer");
    }

    for policy in service_policies() {
        // the cache is on so the storm also exercises flush-on-swap:
        // a stale hit would surface as a byte mismatch below
        let service = OracleService::from_arc(
            Arc::clone(&oracles[0]) as Arc<dyn DistanceOracle>,
            ServiceConfig {
                policy,
                max_batch: 64,
                cache: Some(CacheConfig {
                    capacity: 64,
                    seed: 5,
                }),
            },
        );
        assert_eq!(service.epoch(), 0);
        let done = AtomicBool::new(false);
        let seen: HashSet<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|k| {
                    let (service, done, pairs, refs) = (&service, &done, &pairs, &refs);
                    scope.spawn(move || {
                        let mut seen = HashSet::new();
                        while !done.load(Ordering::SeqCst) {
                            for (i, &(s, t)) in pairs.iter().enumerate().skip(k % 8).step_by(8) {
                                let (a, epoch) = service.query_attributed(s, t);
                                assert!(
                                    (epoch as usize) <= EPOCHS,
                                    "answer attributed to unknown epoch {epoch}"
                                );
                                let r = &refs[epoch as usize][i];
                                assert!(
                                    a.distance.to_bits() == r.distance.to_bits()
                                        && a.upper_bound == r.upper_bound,
                                    "pair {i} diverged from epoch {epoch}'s oracle under \
                                     {policy}: got {} vs {}",
                                    a.distance,
                                    r.distance
                                );
                                seen.insert(epoch);
                            }
                        }
                        // settled pass: swaps are over, so every answer
                        // must come from (and match) the final epoch
                        for (i, &(s, t)) in pairs.iter().enumerate() {
                            let (a, epoch) = service.query_attributed(s, t);
                            assert_eq!(epoch as usize, EPOCHS, "stale epoch after the storm");
                            let r = &refs[EPOCHS][i];
                            assert_eq!(a.distance.to_bits(), r.distance.to_bits());
                            assert_eq!(a.upper_bound, r.upper_bound);
                            seen.insert(epoch);
                        }
                        seen
                    })
                })
                .collect();

            // the swap storm, riding on the main thread
            for (e, oracle) in oracles.iter().enumerate().skip(1) {
                std::thread::sleep(Duration::from_millis(5));
                let entered = service.swap_oracle(Arc::clone(oracle) as Arc<dyn DistanceOracle>);
                assert_eq!(entered, e as u64, "epochs must advance by one per swap");
            }
            done.store(true, Ordering::SeqCst);
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread survived"))
                .collect()
        });
        assert!(
            seen.contains(&0) && seen.contains(&(EPOCHS as u64)),
            "storm skipped the first or last epoch entirely: {seen:?}"
        );
    }
}

/// Repeated runs against the same shared oracle reuse it safely — the
/// service holds an `Arc`, so several services (different policies) can
/// serve one oracle simultaneously.
#[test]
fn two_services_one_oracle_agree() {
    let shared = Arc::new(build_oracle(true, 21));
    let pairs = workload(shared.graph().n(), 192, 23);
    let reference: Vec<QueryResult> = pairs.iter().map(|&(s, t)| shared.query(s, t).0).collect();
    let seq = OracleService::from_arc(
        Arc::clone(&shared) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(ExecutionPolicy::Sequential),
    );
    let par = OracleService::from_arc(
        Arc::clone(&shared) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(ExecutionPolicy::Parallel { threads: 4 }),
    );
    std::thread::scope(|scope| {
        let a = scope.spawn(|| hammer(&seq, &pairs));
        let b = scope.spawn(|| hammer(&par, &pairs));
        assert_eq!(a.join().unwrap(), reference);
        assert_eq!(b.join().unwrap(), reference);
    });
}
