//! Builder ↔ legacy equivalence: driving the pipeline builders with
//! `Seed(s)` produces byte-identical artifacts and costs to the deprecated
//! free functions driven by `StdRng::seed_from_u64(s)` — the guarantee
//! that makes incremental migration safe and lets recorded experiment
//! numbers survive the API change. Plus: invalid parameters come back as
//! typed [`PshError`]/[`ClusterError`] values where the legacy functions
//! panicked.

#![allow(deprecated)] // the whole point of this file is to compare against the legacy API

use psh::core::hopset::build_hopset;
use psh::core::spanner::{unweighted_spanner, weighted_spanner};
use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(77);
    generators::connected_random(500, 1_500, &mut rng)
}

fn weighted_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(78);
    let base = generators::connected_random(300, 900, &mut rng);
    generators::with_log_uniform_weights(&base, 1024.0, &mut rng)
}

fn params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn cluster_builder_matches_est_cluster() {
    let g = unit_graph();
    for seed in [0u64, 1, 42, 20150625] {
        let run = ClusterBuilder::new(0.3).seed(Seed(seed)).build(&g).unwrap();
        let (legacy, legacy_cost) =
            psh::cluster::est_cluster(&g, 0.3, &mut StdRng::seed_from_u64(seed));
        assert_eq!(run.artifact, legacy, "seed {seed}");
        assert_eq!(run.cost, legacy_cost, "seed {seed}");
    }
}

#[test]
fn spanner_builder_matches_unweighted_spanner() {
    let g = unit_graph();
    for seed in [0u64, 7, 99] {
        let run = SpannerBuilder::unweighted(3.0)
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (legacy, legacy_cost) = unweighted_spanner(&g, 3.0, &mut StdRng::seed_from_u64(seed));
        assert_eq!(run.artifact, legacy, "seed {seed}");
        assert_eq!(run.cost, legacy_cost, "seed {seed}");
    }
}

#[test]
fn spanner_builder_matches_weighted_spanner() {
    let g = weighted_graph();
    for seed in [0u64, 5, 123] {
        let run = SpannerBuilder::weighted(2.0)
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (legacy, legacy_cost) = weighted_spanner(&g, 2.0, &mut StdRng::seed_from_u64(seed));
        assert_eq!(run.artifact, legacy, "seed {seed}");
        assert_eq!(run.cost, legacy_cost, "seed {seed}");
    }
}

#[test]
fn hopset_builder_matches_build_hopset() {
    let g = unit_graph();
    for seed in [0u64, 3, 888] {
        let run = HopsetBuilder::unweighted()
            .params(params())
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (legacy, legacy_cost) = build_hopset(&g, &params(), &mut StdRng::seed_from_u64(seed));
        assert_eq!(run.artifact.into_single(), legacy, "seed {seed}");
        assert_eq!(run.cost, legacy_cost, "seed {seed}");
    }
}

#[test]
fn oracle_builder_matches_legacy_constructors() {
    let g = generators::grid(12, 12);
    let run = OracleBuilder::new()
        .params(params())
        .seed(Seed(4))
        .build(&g)
        .unwrap();
    let (legacy, legacy_cost) =
        ApproxShortestPaths::build_unweighted(&g, &params(), &mut StdRng::seed_from_u64(4));
    assert_eq!(run.cost, legacy_cost);
    assert_eq!(run.artifact.hopset_size(), legacy.hopset_size());
    assert_eq!(run.artifact.hop_budget(), legacy.hop_budget());
    for (s, t) in [(0u32, 143u32), (10, 100), (7, 7)] {
        assert_eq!(run.artifact.query(s, t), legacy.query(s, t));
    }

    let mut wrng = StdRng::seed_from_u64(5);
    let wg = generators::with_uniform_weights(&g, 1, 30, &mut wrng);
    let wrun = OracleBuilder::new()
        .params(params())
        .eta(0.4)
        .seed(Seed(6))
        .build(&wg)
        .unwrap();
    let (wlegacy, wlegacy_cost) =
        ApproxShortestPaths::build_weighted(&wg, &params(), 0.4, &mut StdRng::seed_from_u64(6));
    assert_eq!(wrun.cost, wlegacy_cost);
    assert_eq!(wrun.artifact.hopset_size(), wlegacy.hopset_size());
    for (s, t) in [(0u32, 143u32), (31, 97)] {
        assert_eq!(wrun.artifact.query(s, t), wlegacy.query(s, t));
    }
}

#[test]
fn invalid_params_error_where_legacy_panicked() {
    let g = unit_graph();
    // stretch below 1
    assert!(matches!(
        SpannerBuilder::unweighted(0.0).build(&g),
        Err(PshError::InvalidStretch { .. })
    ));
    assert!(matches!(
        SpannerBuilder::weighted(0.9).build(&g),
        Err(PshError::InvalidStretch { .. })
    ));
    // epsilon outside (0, 1)
    assert!(matches!(
        HopsetBuilder::unweighted().epsilon(0.0).build(&g),
        Err(PshError::InvalidHopsetParams { .. })
    ));
    assert!(matches!(
        HopsetBuilder::unweighted().epsilon(1.5).build(&g),
        Err(PshError::InvalidHopsetParams { .. })
    ));
    // band / hop-target exponents outside (0, 1)
    assert!(matches!(
        HopsetBuilder::weighted(1.0).build(&g),
        Err(PshError::InvalidEta { eta }) if eta == 1.0
    ));
    assert!(matches!(
        HopsetBuilder::limited(0.0).build(&g),
        Err(PshError::InvalidAlpha { .. })
    ));
    // invalid clustering beta
    assert!(matches!(
        ClusterBuilder::new(f64::NAN).build(&g),
        Err(ClusterError::InvalidBeta { .. })
    ));
    // weighted input into the unit-weight algorithm
    let wg = weighted_graph();
    assert!(matches!(
        SpannerBuilder::unweighted(2.0).build(&wg),
        Err(PshError::RequiresUnitWeights { .. })
    ));
}

#[test]
fn run_seed_replays_artifact() {
    // the provenance contract: rebuilding from run.seed reproduces the run
    let g = unit_graph();
    let first = SpannerBuilder::unweighted(4.0)
        .seed(Seed(31337))
        .build(&g)
        .unwrap();
    let replay = SpannerBuilder::unweighted(4.0)
        .seed(first.seed)
        .build(&g)
        .unwrap();
    assert_eq!(first.artifact, replay.artifact);
    assert_eq!(first.cost, replay.cost);
}
