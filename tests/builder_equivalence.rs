//! Builder provenance equivalence: `.seed(Seed(s)).build(g)` is exactly
//! sugar for driving the builder's RNG spine (`build_with_rng`) with
//! `StdRng::seed_from_u64(s)` — byte-identical artifacts and costs. This
//! is the guarantee that makes the recorded seed in every [`Run`] an
//! honest replay handle, and lets callers that thread one RNG through a
//! composite construction trust they get the same bytes a seeded build
//! would produce. Plus: invalid parameters come back as typed
//! [`PshError`]/[`ClusterError`] values instead of panics.

use psh::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(77);
    generators::connected_random(500, 1_500, &mut rng)
}

fn weighted_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(78);
    let base = generators::connected_random(300, 900, &mut rng);
    generators::with_log_uniform_weights(&base, 1024.0, &mut rng)
}

fn params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

#[test]
fn cluster_build_matches_rng_spine() {
    let g = unit_graph();
    for seed in [0u64, 1, 42, 20150625] {
        let run = ClusterBuilder::new(0.3).seed(Seed(seed)).build(&g).unwrap();
        let (spine, spine_cost) = ClusterBuilder::new(0.3)
            .build_with_rng(&g, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(run.artifact, spine, "seed {seed}");
        assert_eq!(run.cost, spine_cost, "seed {seed}");
        assert_eq!(run.seed, Seed(seed));
    }
}

#[test]
fn unweighted_spanner_build_matches_rng_spine() {
    let g = unit_graph();
    for seed in [0u64, 7, 99] {
        let run = SpannerBuilder::unweighted(3.0)
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (spine, spine_cost) = SpannerBuilder::unweighted(3.0)
            .build_with_rng(&g, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(run.artifact, spine, "seed {seed}");
        assert_eq!(run.cost, spine_cost, "seed {seed}");
    }
}

#[test]
fn weighted_spanner_build_matches_rng_spine() {
    let g = weighted_graph();
    for seed in [0u64, 5, 123] {
        let run = SpannerBuilder::weighted(2.0)
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (spine, spine_cost) = SpannerBuilder::weighted(2.0)
            .build_with_rng(&g, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(run.artifact, spine, "seed {seed}");
        assert_eq!(run.cost, spine_cost, "seed {seed}");
    }
}

#[test]
fn hopset_build_matches_rng_spine() {
    let g = unit_graph();
    for seed in [0u64, 3, 888] {
        let run = HopsetBuilder::unweighted()
            .params(params())
            .seed(Seed(seed))
            .build(&g)
            .unwrap();
        let (spine, spine_cost) = HopsetBuilder::unweighted()
            .params(params())
            .build_with_rng(&g, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(
            run.artifact.into_single(),
            spine.into_single(),
            "seed {seed}"
        );
        assert_eq!(run.cost, spine_cost, "seed {seed}");
    }
}

#[test]
fn oracle_build_matches_rng_spine() {
    let g = generators::grid(12, 12);
    let run = OracleBuilder::new()
        .params(params())
        .seed(Seed(4))
        .build(&g)
        .unwrap();
    let (spine, spine_cost) = OracleBuilder::new()
        .params(params())
        .build_with_rng(&g, &mut StdRng::seed_from_u64(4))
        .unwrap();
    assert_eq!(run.cost, spine_cost);
    assert_eq!(run.artifact.hopset_size(), spine.hopset_size());
    assert_eq!(run.artifact.hop_budget(), spine.hop_budget());
    for (s, t) in [(0u32, 143u32), (10, 100), (7, 7)] {
        assert_eq!(run.artifact.query(s, t), spine.query(s, t));
    }

    let mut wrng = StdRng::seed_from_u64(5);
    let wg = generators::with_uniform_weights(&g, 1, 30, &mut wrng);
    let wrun = OracleBuilder::new()
        .params(params())
        .eta(0.4)
        .seed(Seed(6))
        .build(&wg)
        .unwrap();
    let (wspine, wspine_cost) = OracleBuilder::new()
        .params(params())
        .eta(0.4)
        .build_with_rng(&wg, &mut StdRng::seed_from_u64(6))
        .unwrap();
    assert_eq!(wrun.cost, wspine_cost);
    assert_eq!(wrun.artifact.hopset_size(), wspine.hopset_size());
    for (s, t) in [(0u32, 143u32), (31, 97)] {
        assert_eq!(wrun.artifact.query(s, t), wspine.query(s, t));
    }
}

#[test]
fn invalid_params_are_typed_errors() {
    let g = unit_graph();
    // stretch below 1
    assert!(matches!(
        SpannerBuilder::unweighted(0.0).build(&g),
        Err(PshError::InvalidStretch { .. })
    ));
    assert!(matches!(
        SpannerBuilder::weighted(0.9).build(&g),
        Err(PshError::InvalidStretch { .. })
    ));
    // epsilon outside (0, 1)
    assert!(matches!(
        HopsetBuilder::unweighted().epsilon(0.0).build(&g),
        Err(PshError::InvalidHopsetParams { .. })
    ));
    assert!(matches!(
        HopsetBuilder::unweighted().epsilon(1.5).build(&g),
        Err(PshError::InvalidHopsetParams { .. })
    ));
    // band / hop-target exponents outside (0, 1)
    assert!(matches!(
        HopsetBuilder::weighted(1.0).build(&g),
        Err(PshError::InvalidEta { eta }) if eta == 1.0
    ));
    assert!(matches!(
        HopsetBuilder::limited(0.0).build(&g),
        Err(PshError::InvalidAlpha { .. })
    ));
    // invalid clustering beta
    assert!(matches!(
        ClusterBuilder::new(f64::NAN).build(&g),
        Err(ClusterError::InvalidBeta { .. })
    ));
    // weighted input into the unit-weight algorithm
    let wg = weighted_graph();
    assert!(matches!(
        SpannerBuilder::unweighted(2.0).build(&wg),
        Err(PshError::RequiresUnitWeights { .. })
    ));
}

#[test]
fn run_seed_replays_artifact() {
    // the provenance contract: rebuilding from run.seed reproduces the run
    let g = unit_graph();
    let first = SpannerBuilder::unweighted(4.0)
        .seed(Seed(31337))
        .build(&g)
        .unwrap();
    let replay = SpannerBuilder::unweighted(4.0)
        .seed(first.seed)
        .build(&g)
        .unwrap();
    assert_eq!(first.artifact, replay.artifact);
    assert_eq!(first.cost, replay.cost);
}
