//! Offline stand-in for [`rayon`](https://docs.rs/rayon) — now only the
//! **sequential fallback** for cold paths.
//!
//! Since the `psh-exec` execution layer landed, every hot path (the
//! shared frontier engine behind the clustering race, BFS, Dial,
//! Δ-stepping, the hopset recursion and its clique searches, and the
//! spanner selection) runs on `psh_exec::Executor`'s real thread pool
//! under `ExecutionPolicy::{Sequential, Parallel}`. What remains on this
//! stub are cold, non-policy-gated helpers (connectivity, prefix sums,
//! union-find sweeps, subgraph splits, verification oracles, baselines),
//! for which it supplies the `rayon::prelude` surface — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks`, `par_chunks_mut`,
//! `par_sort_unstable`, `flat_map_iter` — as thin wrappers over
//! **sequential** std iterators, i.e. exactly the
//! `ExecutionPolicy::Sequential` semantics.
//!
//! Results are unaffected: the codebase uses deterministic two-phase
//! patterns that make parallel and sequential execution agree, and the
//! `psh_pram::Cost` work/depth accounting never depended on wall-clock.
//! The build environment has no registry access; when one is reachable,
//! swapping the real rayon back in for these cold paths is a one-line
//! `Cargo.toml` change (delete the `[patch.crates-io]` line).

pub mod prelude {
    pub use crate::{
        FlatMapIterExt, IntoParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`, blanket
/// implemented for everything iterable: `into_par_iter` is `into_iter`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// Sequential stand-in for rayon's shared-slice methods.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }

    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Sequential stand-in for rayon's mutable-slice methods.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }

    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }

    #[inline]
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    #[inline]
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// `ParallelIterator::flat_map_iter` has no std equivalent by that name;
/// provide it for every iterator as plain `flat_map`.
pub trait FlatMapIterExt: Iterator + Sized {
    #[inline]
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }
}

impl<I: Iterator> FlatMapIterExt for I {}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let doubled: Vec<u32> = (0..5u32).into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let kept: Vec<i32> = vec![1, -2, 3]
            .into_par_iter()
            .filter(|&x| x > 0)
            .collect();
        assert_eq!(kept, vec![1, 3]);
    }

    #[test]
    fn chunk_zip_pipeline() {
        let xs = [1usize, 2, 3, 4, 5, 6];
        let mut out = [0usize; 6];
        out.par_chunks_mut(2)
            .zip(xs.par_chunks(2))
            .for_each(|(o, i)| o.copy_from_slice(i));
        assert_eq!(out, xs);
    }

    #[test]
    fn flat_map_iter_and_sort() {
        let mut v: Vec<u32> = [3u32, 1, 2]
            .par_iter()
            .flat_map_iter(|&x| [x, x + 10])
            .collect();
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 11, 12, 13]);
    }
}
