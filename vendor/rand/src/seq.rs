//! Sequence utilities: the `SliceRandom::shuffle` subset.

use crate::Rng;

/// The subset of `rand::seq::SliceRandom` this workspace uses.
pub trait SliceRandom {
    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
