//! Sampling support for [`Rng::random`] and [`Rng::random_range`].

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// Types with a canonical "standard" distribution (`rand`'s
/// `StandardUniform`): full-width uniform for integers, `[0, 1)` for
/// floats.
pub trait StandardSample: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is < 2⁻⁶⁴·span, irrelevant for
/// the experiment workloads this crate serves).
#[inline]
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}
