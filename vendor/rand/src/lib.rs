//! Offline stand-in for [`rand` 0.9](https://docs.rs/rand/0.9).
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API surface the workspace uses — `Rng`
//! (`random`, `random_range`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::shuffle` — with the same
//! generic signatures, so swapping in the real crate is a one-line
//! `Cargo.toml` change and a rebuild.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 (the seeding
//! scheme recommended by the xoshiro authors). It is deterministic given
//! a seed, statistically solid for the experiment suite, and fast. It is
//! **not** the same stream as the real `StdRng` (ChaCha12), so recorded
//! experiment numbers change if the real crate is restored — seeds, not
//! streams, are the reproducibility contract in this workspace.

pub mod rngs;
pub mod seq;

mod distr;

pub use distr::{SampleRange, StandardSample};

/// The subset of `rand::Rng` this workspace uses.
///
/// All provided methods derive from `next_u64`, so implementing a new
/// generator takes one method.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` is uniform in `[0, 1)`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching the real crate.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_f64_in_range_and_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..1000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.random_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying in place is ~impossible");
    }
}
