//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec`]: a range or an exact size, matching
/// proptest's `SizeRange` conversions.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
