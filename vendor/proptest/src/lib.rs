//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range and tuple strategies, [`collection::vec`],
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], and the
//! `prop_assert!` family.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG
//!   from a fixed seed and `i`, so failures reproduce exactly across
//!   runs — there is no persistence file.
//!
//! Swapping the real proptest back in is a one-line `Cargo.toml` change;
//! the macro and strategy syntax used by the tests is identical.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::Range;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{TestCaseError, TestRunner};

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runner configuration: only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Run one property: sample `cases` inputs, run `f` on each.
///
/// Used by the expansion of [`proptest!`]; not part of the public
/// proptest API but public so the macro can reach it.
pub fn run_cases<V: Debug, S: Strategy<Value = V>>(
    config: &ProptestConfig,
    test_name: &str,
    strategy: &S,
    mut f: impl FnMut(V) -> Result<(), TestCaseError>,
) {
    // Different tests get different streams; the same test gets the same
    // stream every run.
    let base = test_name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(case as u64));
        let value = strategy.generate(&mut rng);
        let described = format!("{value:?}");
        if let Err(e) = f(value) {
            panic!(
                "proptest case {case}/{} failed for `{test_name}`:\n  input: {described}\n  {e}",
                config.cases
            );
        }
    }
}

/// `0..n` over `usize` — handy default size range (mirrors proptest's
/// `SizeRange` conversions used by [`collection::vec`]).
pub type SizeRange = Range<usize>;

/// The property-test macro. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///     #[test]
///     fn name(a in strat_a, b in strat_b) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_cases(&config, stringify!($name), &strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fallible assertion: reports the failing inputs instead of panicking
/// deep inside the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuple_and_range_strategies(a in 0u32..10, b in 1u64..1 << 40, c in 0usize..5) {
            prop_assert!(a < 10);
            prop_assert!(b >= 1);
            prop_assert!(c < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_form_parses(x in 0i32..3) {
            prop_assert!((0..3).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn vec_and_map_strategies(
            v in crate::collection::vec((0u32..8, 0u32..8), 0..20),
            n in (2usize..30).prop_map(|n| n * 2)
        ) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(n % 2, 0);
            for (a, b) in v {
                prop_assert!(a < 8 && b < 8);
            }
        }
    }

    proptest! {
        #[test]
        fn flat_map_strategy(
            pair in (1usize..10).prop_flat_map(|n| (crate::strategy::Just(n), 0usize..n))
        ) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_input() {
        crate::run_cases(
            &ProptestConfig::with_cases(5),
            "always_fails",
            &(0u32..10),
            |_| Err(TestCaseError::fail("nope".to_string())),
        );
    }
}
