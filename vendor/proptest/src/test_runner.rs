//! Case execution plumbing: the error type `prop_assert!` produces and a
//! minimal named runner (kept for API familiarity; [`crate::run_cases`]
//! is what the macro actually drives).

use std::fmt;

/// A failed property case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct a failure with a message (proptest's `fail`).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Minimal stand-in for proptest's `TestRunner`.
pub struct TestRunner {
    pub cases: u32,
}

impl TestRunner {
    pub fn new(cases: u32) -> Self {
        TestRunner { cases }
    }
}
