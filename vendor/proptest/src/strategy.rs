//! Strategies: value generators composable with `prop_map` /
//! `prop_flat_map`. No shrinking — see the crate docs.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}
