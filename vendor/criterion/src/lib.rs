//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the criterion 0.5 API the workspace's benches
//! use (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `sample_size`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`).
//! Each benchmark runs a short warm-up plus `sample_size` timed
//! iterations and prints the mean — enough to compare alternatives
//! locally; swap the real criterion back in for publishable statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's minimum is
    /// 10; we honour whatever is set).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            timed_iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            timed_iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &label);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
    timed_iters: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // one warm-up iteration, untimed
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(f());
        }
        self.elapsed += start.elapsed();
        self.timed_iters += self.iterations;
    }

    fn report(&self, group: &str, label: &str) {
        if self.timed_iters == 0 {
            eprintln!("  {group}/{label}: no iterations run");
            return;
        }
        let mean = self.elapsed / self.timed_iters as u32;
        eprintln!(
            "  {group}/{label}: mean {mean:?} over {} iterations",
            self.timed_iters
        );
    }
}

/// Collects benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        // 1 warm-up + 3 timed
        assert_eq!(runs, 4);
    }
}
