//! Atomic operation counters for measuring *work* inside rayon parallel
//! sections, where threading a `&mut Cost` through closures is impossible.
//!
//! The counter is intentionally minimal: a relaxed atomic add is ~1ns and
//! does not perturb what we measure (we measure operation counts, not time).

use std::sync::atomic::{AtomicU64, Ordering};

/// A shareable work counter. Clone-free: pass `&OpCounter` into parallel
/// closures. Depth cannot be counted this way (it is a property of the
/// round structure, not of the operations), so algorithms track rounds
/// explicitly and only use `OpCounter` for work.
#[derive(Debug, Default)]
pub struct OpCounter {
    ops: AtomicU64,
}

impl OpCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` operations. Relaxed ordering: counts are only read after
    /// the parallel section joins, and rayon's join provides the necessary
    /// happens-before edge.
    #[inline]
    pub fn add(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a single operation.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Total operations recorded so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous total.
    pub fn take(&self) -> u64 {
        self.ops.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = OpCounter::new();
        c.add(3);
        c.bump();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn take_resets() {
        let c = OpCounter::new();
        c.add(10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let c = OpCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
