//! Atomic operation counters for measuring *work* inside `psh-exec`
//! parallel sections, where threading a `&mut Cost` through closures is
//! impossible. The frontier engine (`psh_graph::frontier::drive`) counts
//! claims examined, edges scanned, and winners committed this way while
//! its phases run on the pool.
//!
//! The counter is intentionally minimal: a relaxed atomic add is ~1ns and
//! does not perturb what we measure (we measure operation counts, not time).
//!
//! # Happens-before
//!
//! Reads are only meaningful after the parallel section that performed
//! the adds has joined. `psh_exec::Executor::scope` (which every `par_*`
//! combinator is built on) establishes the required edge: each task's
//! completion is a `Release` decrement of the batch latch and the scope
//! caller observes zero with `Acquire`, so every `Relaxed` add inside any
//! task is visible to a [`OpCounter::get`] after `scope` returns. This is
//! asserted by the `visible_after_exec_scope_join` test below.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shareable work counter. Clone-free: pass `&OpCounter` into parallel
/// closures. Depth cannot be counted this way (it is a property of the
/// round structure, not of the operations), so the frontier engine counts
/// rounds explicitly and only uses `OpCounter` for work.
#[derive(Debug, Default)]
pub struct OpCounter {
    ops: AtomicU64,
}

impl OpCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` operations. Relaxed ordering suffices: counts are only
    /// read after the parallel section joins, and `psh-exec`'s scope join
    /// provides the necessary happens-before edge (see module docs).
    #[inline]
    pub fn add(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a single operation.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Total operations recorded so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous total.
    pub fn take(&self) -> u64 {
        self.ops.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = OpCounter::new();
        c.add(3);
        c.bump();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn take_resets() {
        let c = OpCounter::new();
        c.add(10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let c = OpCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn visible_after_exec_scope_join() {
        // The happens-before contract from the module docs: every add
        // performed inside a psh-exec scope (pool tasks and combinators
        // alike) is visible to a plain `get` after the scope returns.
        use psh_exec::{ExecutionPolicy, Executor};
        let exec = Executor::new(ExecutionPolicy::Parallel { threads: 4 });
        let c = OpCounter::new();
        exec.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| c.add(250));
            }
        });
        assert_eq!(c.get(), 4000, "adds must be visible after scope exit");

        c.take();
        let items: Vec<u64> = (0..10_000).collect();
        exec.par_for_each_init(&items, 64, || (), |(), &x| c.add(x));
        assert_eq!(c.get(), items.iter().sum::<u64>());
    }
}
