//! # psh-pram — a work/depth (PRAM) cost model
//!
//! The paper ("Improved Parallel Algorithms for Spanners and Hopsets",
//! Miller–Peng–Vladu–Xu, SPAA 2015) states all of its results in the PRAM
//! model: *work* is the total number of operations performed and *depth* is
//! the longest chain of dependent operations. Its evaluation artifacts
//! (Figures 1 and 2) are tables of work/depth bounds — there are no
//! wall-clock numbers to match. This crate provides the measurement currency
//! used throughout the reproduction: every instrumented routine returns a
//! [`Cost`] describing the work it performed and the number of synchronous
//! parallel rounds (depth) it needed.
//!
//! Costs compose the same way the analyses in the paper do:
//!
//! * sequential composition ([`Cost::then`]) adds both work and depth;
//! * parallel composition ([`Cost::par`]) adds work and takes the maximum
//!   depth — exactly how Theorem 4.4 charges the recursive `HopSet` calls
//!   that execute "in parallel".
//!
//! The model constants the paper carries symbolically (the `O(log* n)`
//! CRCW-emulation factor of \[GMV91\]) are *not* multiplied in: Appendix A of
//! the paper notes that factor is model-dependent and `O(1)` in the
//! OR-CRCW PRAM. We count raw rounds.
//!
//! ```
//! use psh_pram::Cost;
//!
//! let bfs_round = Cost::new(100, 1); // scanned 100 edges in one round
//! let two_rounds = bfs_round.then(Cost::new(50, 1));
//! assert_eq!(two_rounds.work, 150);
//! assert_eq!(two_rounds.depth, 2);
//!
//! // two independent BFS runs in parallel: depth is the max
//! let par = two_rounds.par(Cost::new(9, 9));
//! assert_eq!(par.work, 159);
//! assert_eq!(par.depth, 9);
//! ```

pub mod counter;

pub use counter::OpCounter;

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A work/depth cost in the PRAM model.
///
/// `work` counts primitive operations (edge scans, relaxations, comparisons
/// of claims, …); `depth` counts synchronous parallel rounds. Both are
/// saturating so that composing enormous synthetic costs can never wrap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Cost {
    /// Total number of primitive operations performed.
    pub work: u64,
    /// Longest chain of dependent rounds.
    pub depth: u64,
}

impl Cost {
    /// The identity cost: zero work, zero depth.
    pub const ZERO: Cost = Cost { work: 0, depth: 0 };

    /// A cost with the given work and depth.
    #[inline]
    pub const fn new(work: u64, depth: u64) -> Self {
        Cost { work, depth }
    }

    /// A cost for `work` operations all executable in a single round.
    #[inline]
    pub const fn flat(work: u64) -> Self {
        Cost { work, depth: 1 }
    }

    /// Sequential composition: `self` then `next`.
    ///
    /// Work adds, depth adds (the second computation waits for the first).
    #[inline]
    #[must_use]
    pub fn then(self, next: Cost) -> Cost {
        Cost {
            work: self.work.saturating_add(next.work),
            depth: self.depth.saturating_add(next.depth),
        }
    }

    /// Parallel composition: `self` alongside `other`.
    ///
    /// Work adds (both computations happen), depth maxes (they overlap).
    #[inline]
    #[must_use]
    pub fn par(self, other: Cost) -> Cost {
        Cost {
            work: self.work.saturating_add(other.work),
            depth: self.depth.max(other.depth),
        }
    }

    /// Parallel composition of many costs (e.g. the recursive calls of
    /// `HopSet` on each small cluster, which the paper runs "in parallel").
    #[must_use]
    pub fn par_all<I: IntoIterator<Item = Cost>>(costs: I) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::par)
    }

    /// Sequential composition of many costs (e.g. the `for i = 1 to s` loop
    /// of `WellSeparatedSpanner`, whose iterations are dependent).
    #[must_use]
    pub fn then_all<I: IntoIterator<Item = Cost>>(costs: I) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::then)
    }

    /// Add `work` operations without consuming an extra round.
    #[inline]
    #[must_use]
    pub fn add_work(self, work: u64) -> Cost {
        Cost {
            work: self.work.saturating_add(work),
            depth: self.depth,
        }
    }

    /// Add `rounds` of depth without extra work.
    #[inline]
    #[must_use]
    pub fn add_depth(self, rounds: u64) -> Cost {
        Cost {
            work: self.work,
            depth: self.depth.saturating_add(rounds),
        }
    }

    /// True if this cost is the identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Cost::ZERO
    }
}

impl Add for Cost {
    type Output = Cost;
    /// `+` is sequential composition — the conservative default.
    fn add(self, rhs: Cost) -> Cost {
        self.then(rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::then)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "work={} depth={}", self.work, self.depth)
    }
}

/// A value paired with the cost of computing it; convenience for the
/// `(result, Cost)` convention used by every instrumented routine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Costed<T> {
    pub value: T,
    pub cost: Cost,
}

impl<T> Costed<T> {
    pub fn new(value: T, cost: Cost) -> Self {
        Costed { value, cost }
    }

    /// Map the value, keeping the cost.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Costed<U> {
        Costed {
            value: f(self.value),
            cost: self.cost,
        }
    }

    /// Split into parts.
    pub fn into_parts(self) -> (T, Cost) {
        (self.value, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_identity_for_then() {
        let c = Cost::new(7, 3);
        assert_eq!(c.then(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.then(c), c);
    }

    #[test]
    fn zero_is_identity_for_par() {
        let c = Cost::new(7, 3);
        assert_eq!(c.par(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.par(c), c);
    }

    #[test]
    fn then_adds_both_components() {
        let c = Cost::new(10, 2).then(Cost::new(5, 7));
        assert_eq!(c, Cost::new(15, 9));
    }

    #[test]
    fn par_adds_work_maxes_depth() {
        let c = Cost::new(10, 2).par(Cost::new(5, 7));
        assert_eq!(c, Cost::new(15, 7));
    }

    #[test]
    fn flat_is_one_round() {
        assert_eq!(Cost::flat(42), Cost::new(42, 1));
    }

    #[test]
    fn par_all_over_empty_is_zero() {
        assert_eq!(Cost::par_all(std::iter::empty()), Cost::ZERO);
    }

    #[test]
    fn then_all_matches_sum() {
        let xs = [Cost::new(1, 1), Cost::new(2, 2), Cost::new(3, 3)];
        assert_eq!(Cost::then_all(xs), xs.iter().copied().sum());
        assert_eq!(Cost::then_all(xs), Cost::new(6, 6));
    }

    #[test]
    fn saturation_instead_of_overflow() {
        let big = Cost::new(u64::MAX, u64::MAX);
        let c = big.then(Cost::new(1, 1));
        assert_eq!(c, big);
        let p = big.par(Cost::new(1, 1));
        assert_eq!(p.work, u64::MAX);
        assert_eq!(p.depth, u64::MAX);
    }

    #[test]
    fn add_work_and_depth() {
        let c = Cost::new(1, 1).add_work(9).add_depth(4);
        assert_eq!(c, Cost::new(10, 5));
    }

    #[test]
    fn costed_map_preserves_cost() {
        let c = Costed::new(21, Cost::new(3, 1)).map(|v| v * 2);
        assert_eq!(c.value, 42);
        assert_eq!(c.cost, Cost::new(3, 1));
    }

    #[test]
    fn display_format() {
        assert_eq!(Cost::new(5, 2).to_string(), "work=5 depth=2");
    }

    proptest! {
        #[test]
        fn prop_then_is_associative(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40,
                                    d in 0u64..20, e in 0u64..20, f in 0u64..20) {
            let (x, y, z) = (Cost::new(a, d), Cost::new(b, e), Cost::new(c, f));
            prop_assert_eq!(x.then(y).then(z), x.then(y.then(z)));
        }

        #[test]
        fn prop_par_is_commutative_and_associative(
            a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40,
            d in 0u64..20, e in 0u64..20, f in 0u64..20) {
            let (x, y, z) = (Cost::new(a, d), Cost::new(b, e), Cost::new(c, f));
            prop_assert_eq!(x.par(y), y.par(x));
            prop_assert_eq!(x.par(y).par(z), x.par(y.par(z)));
        }

        #[test]
        fn prop_par_depth_never_exceeds_then_depth(a in 0u64..1 << 40, b in 0u64..1 << 40,
                                                   d in 0u64..1 << 20, e in 0u64..1 << 20) {
            let (x, y) = (Cost::new(a, d), Cost::new(b, e));
            prop_assert!(x.par(y).depth <= x.then(y).depth);
            prop_assert_eq!(x.par(y).work, x.then(y).work);
        }
    }
}
