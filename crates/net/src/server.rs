//! The multi-threaded TCP server: an accept loop feeding per-connection
//! reader threads into one shared [`OracleService`].
//!
//! The serving architecture is deliberately thin: each connection gets a
//! blocking reader thread that decodes [`Request`]s and calls straight
//! into the service. Because [`OracleService`]'s leader–follower
//! admission queue coalesces *concurrent callers* — it never asks where
//! they came from — queries arriving on **different sockets** merge into
//! shared `query_batch` calls exactly like same-process threads do, so
//! the wire tier inherits the in-process batching for free. Answers stay
//! byte-identical to in-process queries for the same reason: the service
//! maps every pair independently through the oracle, and the wire codec
//! ships `f64` bit patterns verbatim.
//!
//! ## Lifecycle
//!
//! [`NetServer::bind`] spawns the accept loop and returns immediately;
//! [`NetServer::shutdown`] (also run on drop) stops accepting, closes
//! every live socket, and joins all threads — in-flight batches finish,
//! half-read frames do not. A client can also request shutdown over the
//! wire (`OP_SHUTDOWN`, e.g. `psh-client --shutdown`), which the serving
//! bin observes via [`NetServer::wait`] returning.
//!
//! ## Admission control
//!
//! [`ServerConfig`] bounds the blast radius of misbehaving clients:
//! `max_conns` concurrent sockets (excess connections get a typed
//! [`ERR_BUSY`] frame and are closed),
//! `max_conn_requests` queries per connection and `max_total_requests`
//! per server ([`ERR_CONN_CAP`] /
//! [`ERR_GLOBAL_CAP`], connection
//! closed), and read/write timeouts so an idle or stalled peer cannot
//! pin its thread forever.
//!
//! ## Hot reload
//!
//! A server started with a [`ReloadHook`] (see
//! [`NetServer::set_reload_hook`]; `psh-server --watch-journal` wires a
//! [`JournalReloader`](psh_core::snapshot::JournalReloader) in) answers
//! `OP_RELOAD` by applying any new journal records and hot-swapping the
//! service's oracle at a batch boundary — queries on other connections
//! keep flowing on the old epoch until the swap lands, then see the new
//! one. Reloads serialize behind one mutex; queries never wait on it.

use crate::protocol::{
    op_name, read_frame, write_response, ReloadSummary, ReplaySummary, Request, Response,
    ServerInfo, ERR_BAD_REQUEST, ERR_BUSY, ERR_CONN_CAP, ERR_GLOBAL_CAP, ERR_NO_RELOAD,
    ERR_OUT_OF_RANGE, ERR_RELOAD_FAILED, ERR_SHUTTING_DOWN,
};
use psh_core::service::OracleService;
use psh_core::snapshot::ReloadReport;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The environment variable both tiers read for their default endpoint
/// (PVXS-style env-configured addressing): the server binds it, the
/// client connects to it. Falls back to [`DEFAULT_ADDR`].
pub const ADDR_ENV: &str = "PSH_ADDR";
/// Default endpoint when [`ADDR_ENV`] is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7471";

/// The endpoint from the environment: `$PSH_ADDR`, or [`DEFAULT_ADDR`].
pub fn env_addr() -> String {
    std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_string())
}

/// Admission-control knobs for a [`NetServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Concurrent connections served at once (default 64). Connection
    /// number `max_conns + 1` receives `ERR_BUSY` and is closed.
    pub max_conns: usize,
    /// Queries one connection may issue over its lifetime (default
    /// unlimited). A batch of `k` pairs counts `k`. Exceeding it gets
    /// `ERR_CONN_CAP` and the connection is dropped.
    pub max_conn_requests: u64,
    /// Queries the server answers over its lifetime, across all
    /// connections (default unlimited). Exceeding it gets
    /// `ERR_GLOBAL_CAP` and the connection is dropped.
    pub max_total_requests: u64,
    /// Per-socket read timeout (default 30 s). A connection idle longer
    /// than this is closed — blocking reader threads must not be
    /// pinnable forever by a silent peer.
    pub read_timeout: Option<Duration>,
    /// Per-socket write timeout (default 30 s): a peer that stops
    /// draining its answers is dropped rather than stalling its thread.
    pub write_timeout: Option<Duration>,
    /// The oracle's build seed, advertised in `OP_INFO_REPLY` so clients
    /// can reproduce the served oracle (0 when unknown, e.g. embedders
    /// that built the oracle themselves).
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 64,
            max_conn_requests: u64::MAX,
            max_total_requests: u64::MAX,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            seed: 0,
        }
    }
}

/// A point-in-time snapshot of a server's connection-level counters
/// (the query-level numbers live in the shared service's
/// [`ServiceStats`](psh_core::service::ServiceStats)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub conns_accepted: u64,
    /// Connections turned away at the `max_conns` cap.
    pub conns_rejected: u64,
    /// Connections closed because their socket deadline elapsed (both
    /// `WouldBlock` and `TimedOut` land here — the platform decides
    /// which kind a timed-out socket read reports, so the server folds
    /// them into one counter instead of leaking the distinction).
    pub conns_timed_out: u64,
    /// Connections currently live.
    pub active_conns: usize,
    /// Queries answered over the wire (batch of `k` counts `k`).
    pub queries_served: u64,
    /// Queries rejected (out-of-range ids, caps, malformed frames).
    pub queries_rejected: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames written (stream chunks included).
    pub frames_out: u64,
}

struct Counters {
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_timed_out: AtomicU64,
    queries_served: AtomicU64,
    queries_rejected: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

/// A server-side reload source: polled on every wire `OP_RELOAD`, it
/// applies any new journal records to the service (hot-swapping the
/// oracle) and reports what it did — `Ok(None)` when nothing was new.
/// The hook runs under a server-wide mutex, so concurrent reload
/// requests serialize: at most one rebuild is in flight at a time, and
/// queries keep flowing on the current epoch throughout. Typically a
/// [`psh_core::snapshot::JournalReloader`] wrapped in a closure.
pub type ReloadHook = Box<dyn FnMut() -> Result<Option<ReloadReport>, String> + Send>;

struct Shared {
    service: Arc<OracleService>,
    config: ServerConfig,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    /// Global admission counter (`max_total_requests` is enforced with a
    /// compare-exchange-free fetch_add + rollback, so concurrent
    /// connections cannot double-spend the budget).
    total_admitted: AtomicU64,
    counters: Counters,
    /// Live sockets (keyed by connection id), force-closed on shutdown
    /// so blocked reader threads unblock immediately instead of waiting
    /// out their read timeout. Entries are removed when their connection
    /// ends — a lingering clone here would hold the peer's socket open
    /// past the server-side close (and leak fds on a long-lived server).
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
    /// The wire-triggered reload source (`None` until
    /// [`NetServer::set_reload_hook`]); the mutex serializes reloads.
    reload: Mutex<Option<ReloadHook>>,
}

impl Shared {
    /// Try to admit `k` more queries under both caps; on rejection
    /// returns the violated cap's error code.
    fn admit(&self, conn_served: u64, k: u64) -> Result<(), u16> {
        if conn_served.saturating_add(k) > self.config.max_conn_requests {
            return Err(ERR_CONN_CAP);
        }
        let before = self.total_admitted.fetch_add(k, Ordering::Relaxed);
        if before.saturating_add(k) > self.config.max_total_requests {
            self.total_admitted.fetch_sub(k, Ordering::Relaxed);
            return Err(ERR_GLOBAL_CAP);
        }
        Ok(())
    }

    /// Forget connection `id`'s registered socket clone (its serving
    /// thread is done; the clone must not keep the peer's socket alive).
    fn deregister(&self, id: u64) {
        self.conns.lock().unwrap().retain(|(cid, _)| *cid != id);
    }
}

/// A running TCP serving tier over one shared [`OracleService`]. See the
/// module docs for the architecture; construct with [`NetServer::bind`].
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections into `service`. Returns as soon as the
    /// listener is live; [`NetServer::local_addr`] has the bound port.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<OracleService>,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            total_admitted: AtomicU64::new(0),
            counters: Counters {
                conns_accepted: AtomicU64::new(0),
                conns_rejected: AtomicU64::new(0),
                conns_timed_out: AtomicU64::new(0),
                queries_served: AtomicU64::new(0),
                queries_rejected: AtomicU64::new(0),
                frames_in: AtomicU64::new(0),
                frames_out: AtomicU64::new(0),
            },
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
            reload: Mutex::new(None),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("psh-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_threads))
            .expect("spawn accept thread");
        Ok(NetServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound endpoint (resolves `:0` to the ephemeral port chosen).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server feeds (its
    /// [`stats`](OracleService::stats) are the query-level numbers).
    pub fn service(&self) -> &Arc<OracleService> {
        &self.shared.service
    }

    /// Install the reload source answering wire `OP_RELOAD` requests
    /// (replacing any previous hook). Until one is installed, reload
    /// requests get a typed [`ERR_NO_RELOAD`] error. See [`ReloadHook`]
    /// for the serialization contract.
    pub fn set_reload_hook(&self, hook: ReloadHook) {
        *self.shared.reload.lock().unwrap() = Some(hook);
    }

    /// Connection-level counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            conns_accepted: c.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: c.conns_rejected.load(Ordering::Relaxed),
            conns_timed_out: c.conns_timed_out.load(Ordering::Relaxed),
            active_conns: self.shared.active_conns.load(Ordering::Relaxed),
            queries_served: c.queries_served.load(Ordering::Relaxed),
            queries_rejected: c.queries_rejected.load(Ordering::Relaxed),
            frames_in: c.frames_in.load(Ordering::Relaxed),
            frames_out: c.frames_out.load(Ordering::Relaxed),
        }
    }

    /// True once shutdown has been initiated — by [`NetServer::shutdown`]
    /// or by a client's `OP_SHUTDOWN`.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until the server stops: either a wire-side `OP_SHUTDOWN`
    /// arrives or `deadline` elapses (then shutdown is initiated here).
    /// Returns the final connection-level stats. Used by the `psh-server`
    /// bin's main loop; programmatic embedders usually call
    /// [`NetServer::shutdown`] directly instead.
    pub fn wait(&mut self, deadline: Option<Duration>) -> ServerStats {
        let start = Instant::now();
        while !self.stopping() {
            if deadline.is_some_and(|d| start.elapsed() >= d) {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        self.shutdown()
    }

    /// Stop accepting, close every live connection, and join all serving
    /// threads. Idempotent; also runs on drop. Returns the final stats.
    pub fn shutdown(&mut self) -> ServerStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks `stop` after every
        // accept, so one throwaway connection to ourselves wakes it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Force-close live sockets so reader threads blocked mid-read
        // fail fast instead of waiting out their read timeout.
        for (_, conn) in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self.conn_threads.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.active_conns.load(Ordering::Relaxed) >= shared.config.max_conns {
            shared
                .counters
                .conns_rejected
                .fetch_add(1, Ordering::Relaxed);
            // best-effort courtesy frame; the close is what matters
            let mut w = BufWriter::new(&stream);
            let _ = write_response(
                &mut w,
                &Response::Error {
                    code: ERR_BUSY,
                    message: format!(
                        "server at its {}-connection cap, try again later",
                        shared.config.max_conns
                    ),
                },
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .conns_accepted
            .fetch_add(1, Ordering::Relaxed);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().push((conn_id, clone));
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("psh-net-conn".into())
            .spawn(move || {
                serve_connection(&stream, &conn_shared);
                // close the underlying socket, not just this handle: the
                // registered clone would otherwise hold the connection
                // open and the peer would never observe the drop
                let _ = stream.shutdown(Shutdown::Both);
                conn_shared.deregister(conn_id);
                conn_shared.active_conns.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        // reap finished serving threads so a long-lived server doesn't
        // accumulate one parked JoinHandle per connection ever served
        let mut threads = conn_threads.lock().unwrap();
        threads.retain(|h: &JoinHandle<()>| !h.is_finished());
        threads.push(handle);
    }
}

/// Serve one connection until the peer closes, a cap fires, framing
/// breaks, or the server stops. Never panics on malformed input: every
/// failure is either a typed `OP_ERROR` frame or a silent close.
fn serve_connection(stream: &TcpStream, shared: &Shared) {
    // A connection whose timeouts failed to arm could pin its reader
    // thread forever on a silent peer — the one failure mode the
    // timeouts exist to prevent — so a setter error closes the
    // connection rather than serving it unguarded.
    if let Err(e) = stream
        .set_read_timeout(shared.config.read_timeout)
        .and_then(|()| stream.set_write_timeout(shared.config.write_timeout))
    {
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string());
        eprintln!("psh-net: closing {peer}: could not arm socket timeouts: {e}");
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    let mut conn_served: u64 = 0;

    let send = |writer: &mut BufWriter<&TcpStream>, resp: &Response| -> bool {
        let ok = write_response(writer, resp).is_ok();
        if ok {
            shared.counters.frames_out.fetch_add(1, Ordering::Relaxed);
        }
        ok
    };

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = send(
                &mut writer,
                &Response::Error {
                    code: ERR_SHUTTING_DOWN,
                    message: "server is shutting down".into(),
                },
            );
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            // An elapsed read deadline is `WouldBlock` on unix and
            // `TimedOut` on windows; `is_timeout` folds both into the
            // one idle-timeout counter so the close is observable.
            Err(e) if e.is_timeout() => {
                shared
                    .counters
                    .conns_timed_out
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            // clean close, forced close, or garbage: nothing more can
            // be framed on this socket either way
            Err(_) => return,
        };
        shared.counters.frames_in.fetch_add(1, Ordering::Relaxed);
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                shared
                    .counters
                    .queries_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        code: ERR_BAD_REQUEST,
                        message: format!("bad {} request: {e}", op_name(frame.op)),
                    },
                );
                // framing is intact (the frame itself decoded) but the
                // peer's encoder is broken; stop trusting it
                return;
            }
        };

        match request {
            Request::Info => {
                let desc = shared.service.oracle().descriptor();
                let info = ServerInfo {
                    n: desc.n as u64,
                    m: desc.m as u64,
                    hopset: desc.hopset_edges as u64,
                    seed: shared.config.seed,
                };
                if !send(&mut writer, &Response::Info(info)) {
                    return;
                }
            }
            Request::Reload => {
                if !serve_reload(shared, &mut writer, send) {
                    return;
                }
            }
            Request::Stats => {
                let stats = shared.service.stats();
                if !send(&mut writer, &Response::Stats((&stats).into())) {
                    return;
                }
            }
            Request::Shutdown => {
                let stats = shared.service.stats();
                let _ = send(&mut writer, &Response::Stats((&stats).into()));
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Request::Query { s, t } => {
                if !serve_pairs(shared, &mut writer, &mut conn_served, &[(s, t)], None, send) {
                    return;
                }
            }
            Request::QueryBatch(pairs) => {
                if !serve_pairs(shared, &mut writer, &mut conn_served, &pairs, None, send) {
                    return;
                }
            }
            Request::Subscribe { chunk, pairs } => {
                if !serve_pairs(
                    shared,
                    &mut writer,
                    &mut conn_served,
                    &pairs,
                    Some(chunk as usize),
                    send,
                ) {
                    return;
                }
            }
        }
    }
}

/// Answer one `OP_RELOAD`: run the installed [`ReloadHook`] (serialized
/// by its mutex — concurrent reload requests queue, queries do not) and
/// report the outcome. A missing hook or a failed reload is a typed
/// error frame and the connection stays open; only a dead socket closes
/// it (returns false).
fn serve_reload(
    shared: &Shared,
    writer: &mut BufWriter<&TcpStream>,
    send: impl Fn(&mut BufWriter<&TcpStream>, &Response) -> bool,
) -> bool {
    let outcome = {
        let mut hook = shared.reload.lock().unwrap();
        match hook.as_mut() {
            None => Err((
                ERR_NO_RELOAD,
                "server has no reload source (start it with --watch-journal)".to_string(),
            )),
            Some(h) => h().map_err(|msg| (ERR_RELOAD_FAILED, msg)),
        }
    };
    let resp = match outcome {
        Ok(Some(r)) => Response::Reloaded(ReloadSummary {
            swapped: true,
            epoch: r.epoch,
            records: r.records as u64,
            ops: r.ops as u64,
            n: r.n,
            m: r.m,
        }),
        Ok(None) => {
            // nothing new: report the epoch and shape still being served
            let desc = shared.service.oracle().descriptor();
            Response::Reloaded(ReloadSummary {
                swapped: false,
                epoch: shared.service.epoch(),
                records: 0,
                ops: 0,
                n: desc.n as u64,
                m: desc.m as u64,
            })
        }
        Err((code, message)) => Response::Error { code, message },
    };
    send(writer, &resp)
}

/// Validate, admit, and answer one request's pairs. `stream_chunk:
/// Some(c)` selects the subscription path (one `OP_STREAM` per `c`
/// pairs + `OP_STREAM_END`), `None` the single `OP_ANSWER` reply.
/// Returns false when the connection must close.
fn serve_pairs(
    shared: &Shared,
    writer: &mut BufWriter<&TcpStream>,
    conn_served: &mut u64,
    pairs: &[(u32, u32)],
    stream_chunk: Option<usize>,
    send: impl Fn(&mut BufWriter<&TcpStream>, &Response) -> bool,
) -> bool {
    let reject = |writer: &mut BufWriter<&TcpStream>, code: u16, message: String| {
        shared
            .counters
            .queries_rejected
            .fetch_add(pairs.len().max(1) as u64, Ordering::Relaxed);
        let _ = send(writer, &Response::Error { code, message });
    };

    // out-of-range ids would panic inside the service's coalesced batch
    // (poisoning innocent co-batched requests), so they are rejected at
    // the door with a typed error — the connection stays usable.
    let n = shared.service.oracle().descriptor().n as u64;
    if let Some(&(s, t)) = pairs
        .iter()
        .find(|&&(s, t)| u64::from(s) >= n || u64::from(t) >= n)
    {
        reject(
            writer,
            ERR_OUT_OF_RANGE,
            format!("pair ({s}, {t}) out of range for n = {n}"),
        );
        return true;
    }
    if let Err(code) = shared.admit(*conn_served, pairs.len() as u64) {
        let cap = if code == ERR_CONN_CAP {
            ("per-connection", shared.config.max_conn_requests)
        } else {
            ("global", shared.config.max_total_requests)
        };
        reject(
            writer,
            code,
            format!("{} request cap of {} queries exhausted", cap.0, cap.1),
        );
        return false; // cap violations drop the connection
    }
    *conn_served += pairs.len() as u64;
    shared
        .counters
        .queries_served
        .fetch_add(pairs.len() as u64, Ordering::Relaxed);

    match stream_chunk {
        None => {
            let answers = shared.service.query_batch(pairs);
            send(writer, &Response::Answer(answers))
        }
        Some(chunk) => {
            let start = Instant::now();
            let mut batches = 0u64;
            let mut offset = 0usize;
            for part in pairs.chunks(chunk) {
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = send(
                        writer,
                        &Response::Error {
                            code: ERR_SHUTTING_DOWN,
                            message: "server is shutting down mid-replay".into(),
                        },
                    );
                    return false;
                }
                let answers = shared.service.query_batch(part);
                batches += 1;
                let ok = send(
                    writer,
                    &Response::Stream {
                        offset: offset as u32,
                        answers,
                    },
                );
                if !ok {
                    return false;
                }
                offset += part.len();
            }
            send(
                writer,
                &Response::StreamEnd(ReplaySummary {
                    served: pairs.len() as u64,
                    batches,
                    elapsed_s: start.elapsed().as_secs_f64(),
                }),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_core::api::{OracleBuilder, Seed};
    use psh_core::service::ServiceConfig;
    use psh_graph::generators;

    fn test_service() -> Arc<OracleService> {
        let g = generators::grid(8, 8);
        let run = OracleBuilder::new().seed(Seed(11)).build(&g).unwrap();
        Arc::new(OracleService::new(run.artifact, ServiceConfig::default()))
    }

    #[test]
    fn bind_reports_ephemeral_port_and_shuts_down_cleanly() {
        let mut server = NetServer::bind("127.0.0.1:0", test_service(), ServerConfig::default())
            .expect("bind ephemeral");
        assert_ne!(server.local_addr().port(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.conns_accepted, 0);
        // idempotent
        let again = server.shutdown();
        assert_eq!(again, stats);
    }

    #[test]
    fn env_addr_falls_back_to_default() {
        // (cannot mutate the environment safely in a threaded test
        // binary; just pin the fallback constant)
        assert_eq!(DEFAULT_ADDR, "127.0.0.1:7471");
        assert!(env_addr().contains(':'));
    }

    #[test]
    fn admit_enforces_both_caps() {
        let shared = Shared {
            service: test_service(),
            config: ServerConfig {
                max_conn_requests: 10,
                max_total_requests: 15,
                ..ServerConfig::default()
            },
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            total_admitted: AtomicU64::new(0),
            counters: Counters {
                conns_accepted: AtomicU64::new(0),
                conns_rejected: AtomicU64::new(0),
                conns_timed_out: AtomicU64::new(0),
                queries_served: AtomicU64::new(0),
                queries_rejected: AtomicU64::new(0),
                frames_in: AtomicU64::new(0),
                frames_out: AtomicU64::new(0),
            },
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
            reload: Mutex::new(None),
        };
        assert!(shared.admit(0, 10).is_ok());
        assert_eq!(shared.admit(10, 1), Err(ERR_CONN_CAP));
        // global budget: 10 spent, 5 left
        assert_eq!(shared.admit(0, 6), Err(ERR_GLOBAL_CAP));
        assert!(shared.admit(0, 5).is_ok());
        // the rejected admission rolled its reservation back
        assert_eq!(shared.total_admitted.load(Ordering::Relaxed), 15);
    }
}
