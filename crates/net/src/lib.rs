//! # psh-net — the TCP serving tier
//!
//! Everything below this crate serves queries inside one address space;
//! `psh-net` puts the preprocess-once/serve-forever oracle behind a
//! wire. Three layers:
//!
//! * [`protocol`] — the length-prefixed binary frame format (`b"PSHN"`
//!   magic + version + op, mirroring the `psh_graph::io` snapshot
//!   framing), typed [`ProtocolError`]s for
//!   every malformed input, and the [`Request`](protocol::Request)/
//!   [`Response`](protocol::Response) message vocabulary;
//! * [`server`] — [`NetServer`]: an accept loop plus
//!   per-connection reader threads feeding one shared
//!   [`OracleService`](psh_core::service::OracleService), so queries
//!   from different sockets coalesce into shared batches; graceful
//!   shutdown, connection/request caps, read/write timeouts;
//! * [`client`] — [`NetClient`]: blocking `query` /
//!   `query_batch` / streaming `subscribe` replay, plus stats/info/
//!   shutdown admin calls.
//!
//! The correctness contract of the whole tier: **answers over the wire
//! are byte-identical to in-process queries** — distances travel as
//! IEEE-754 bit patterns, the service coalesces without reordering
//! answers, and the loopback equivalence suite (`tests/net_loopback.rs`)
//! pins this for every `ExecutionPolicy`.
//!
//! The `psh-server` / `psh-client` binaries in `psh-bench` wrap these
//! types into a deployable pair; endpoints default to the `PSH_ADDR`
//! environment variable (see [`server::env_addr`]).

pub mod client;
pub mod protocol;
pub mod server;

pub use client::NetClient;
pub use protocol::{ProtocolError, ReloadSummary, ReplaySummary, ServerInfo, WireStats};
pub use server::{NetServer, ReloadHook, ServerConfig, ServerStats};
