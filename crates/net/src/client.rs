//! The blocking client library: connect once, query forever.
//!
//! [`NetClient`] speaks the frame protocol over one TCP connection. All
//! calls are synchronous request/response — the concurrency story lives
//! server-side, where the shared
//! [`OracleService`](psh_core::service::OracleService) admission queue
//! coalesces requests arriving from *different* client sockets into
//! shared batches (open several `NetClient`s from several threads to
//! exploit it; one client is strictly serial).
//!
//! Answers are byte-identical to in-process
//! [`ApproxShortestPaths::query`] — distances travel as IEEE-754 bit
//! patterns, never as text — which the loopback equivalence suite pins
//! for every [`ExecutionPolicy`](psh_exec::ExecutionPolicy).
//!
//! ```no_run
//! use psh_net::client::NetClient;
//!
//! let mut client = NetClient::connect("127.0.0.1:7471")?;
//! let answer = client.query(0, 99)?;
//! println!("d(0, 99) ≈ {}", answer.distance);
//! # Ok::<(), psh_net::protocol::ProtocolError>(())
//! ```
//!
//! [`ApproxShortestPaths::query`]: psh_core::oracle::ApproxShortestPaths::query

use crate::protocol::{
    read_response, write_request, ProtocolError, ReloadSummary, ReplaySummary, Request, Response,
    ServerInfo, WireStats,
};
use crate::server::env_addr;
use psh_core::oracle::QueryResult;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a `psh-net` server.
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl NetClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:7471"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(NetClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connect to the environment-configured endpoint (`$PSH_ADDR`, or
    /// [`DEFAULT_ADDR`](crate::server::DEFAULT_ADDR)).
    pub fn connect_env() -> Result<NetClient, ProtocolError> {
        NetClient::connect(env_addr())
    }

    /// Bound the time any single read/write may block (`None` = forever).
    /// An elapsed deadline surfaces as a [`ProtocolError`] whose
    /// [`is_timeout`](ProtocolError::is_timeout) is true; the connection
    /// should be dropped afterwards (a frame may be half-read).
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ProtocolError> {
        self.reader.get_ref().set_read_timeout(read)?;
        self.writer.get_ref().set_write_timeout(write)?;
        Ok(())
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        write_request(&mut self.writer, req)?;
        let resp = read_response(&mut self.reader)?;
        if let Response::Error { code, message } = resp {
            return Err(ProtocolError::Remote { code, message });
        }
        Ok(resp)
    }

    /// Answer one `s`–`t` query over the wire.
    pub fn query(&mut self, s: u32, t: u32) -> Result<QueryResult, ProtocolError> {
        match self.exchange(&Request::Query { s, t })? {
            Response::Answer(mut answers) if answers.len() == 1 => Ok(answers.remove(0)),
            Response::Answer(answers) => Err(ProtocolError::Corrupt {
                what: "answer list",
                detail: format!("one query, {} answers", answers.len()),
            }),
            other => Err(unexpected("an answer", &other)),
        }
    }

    /// Answer a batch of queries; answers come back in input order.
    pub fn query_batch(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<QueryResult>, ProtocolError> {
        match self.exchange(&Request::QueryBatch(pairs.to_vec()))? {
            Response::Answer(answers) if answers.len() == pairs.len() => Ok(answers),
            Response::Answer(answers) => Err(ProtocolError::Corrupt {
                what: "answer list",
                detail: format!("{} pairs, {} answers", pairs.len(), answers.len()),
            }),
            other => Err(unexpected("an answer", &other)),
        }
    }

    /// Streaming replay: ship `pairs` once, receive answers chunk by
    /// chunk (`on_chunk(offset, answers)` per server-side batch of
    /// `chunk` pairs), and return the server-side summary. The chunks
    /// partition `pairs` in order, so collecting them reconstructs the
    /// full answer list.
    pub fn subscribe(
        &mut self,
        pairs: &[(u32, u32)],
        chunk: u32,
        mut on_chunk: impl FnMut(u32, &[QueryResult]),
    ) -> Result<ReplaySummary, ProtocolError> {
        write_request(
            &mut self.writer,
            &Request::Subscribe {
                chunk,
                pairs: pairs.to_vec(),
            },
        )?;
        let mut received = 0usize;
        loop {
            match read_response(&mut self.reader)? {
                Response::Stream { offset, answers } => {
                    if offset as usize != received {
                        return Err(ProtocolError::Corrupt {
                            what: "stream offset",
                            detail: format!("chunk at {offset}, expected {received}"),
                        });
                    }
                    received += answers.len();
                    on_chunk(offset, &answers);
                }
                Response::StreamEnd(summary) => {
                    if received != pairs.len() {
                        return Err(ProtocolError::Corrupt {
                            what: "stream end",
                            detail: format!(
                                "{received} answers streamed for {} pairs",
                                pairs.len()
                            ),
                        });
                    }
                    return Ok(summary);
                }
                Response::Error { code, message } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                other => return Err(unexpected("a stream chunk", &other)),
            }
        }
    }

    /// Convenience wrapper over [`NetClient::subscribe`] that collects
    /// every streamed answer into one vector (pair order).
    pub fn replay(
        &mut self,
        pairs: &[(u32, u32)],
        chunk: u32,
    ) -> Result<(Vec<QueryResult>, ReplaySummary), ProtocolError> {
        let mut answers = Vec::with_capacity(pairs.len());
        let summary = self.subscribe(pairs, chunk, |_, part| answers.extend_from_slice(part))?;
        Ok((answers, summary))
    }

    /// The server's current serving statistics.
    pub fn server_stats(&mut self) -> Result<WireStats, ProtocolError> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("a stats reply", &other)),
        }
    }

    /// The served graph's shape (`n` bounds valid query ids).
    pub fn server_info(&mut self) -> Result<ServerInfo, ProtocolError> {
        match self.exchange(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("an info reply", &other)),
        }
    }

    /// Ask the server to poll its journal and hot-swap the oracle if new
    /// records arrived. Blocks until the reload completes (a swap
    /// includes a full oracle rebuild server-side — allow for it in
    /// [`set_timeouts`](NetClient::set_timeouts)). Servers without a
    /// reload source answer
    /// [`ERR_NO_RELOAD`](crate::protocol::ERR_NO_RELOAD), surfaced as
    /// [`ProtocolError::Remote`].
    pub fn reload(&mut self) -> Result<ReloadSummary, ProtocolError> {
        match self.exchange(&Request::Reload)? {
            Response::Reloaded(summary) => Ok(summary),
            other => Err(unexpected("a reload reply", &other)),
        }
    }

    /// Ask the server to shut down gracefully; returns its final
    /// statistics. The connection is unusable afterwards.
    pub fn shutdown_server(&mut self) -> Result<WireStats, ProtocolError> {
        match self.exchange(&Request::Shutdown)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("the final stats reply", &other)),
        }
    }
}

fn unexpected(expected: &'static str, resp: &Response) -> ProtocolError {
    let (op, _) = resp.encode();
    ProtocolError::Unexpected {
        expected,
        found: op,
    }
}
