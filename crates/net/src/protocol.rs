//! The `psh-net` wire protocol: length-prefixed binary frames over TCP.
//!
//! The framing deliberately mirrors the `psh_graph::io` snapshot header
//! (magic + version + kind, all little-endian) so a stray snapshot fed to
//! a server — or a server stream fed to the snapshot reader — fails with
//! a descriptive [`ProtocolError::BadMagic`] instead of garbage. Every
//! frame is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   = b"PSHN"
//! 4       2     protocol version (little-endian u16) = 1
//! 6       2     op code          (little-endian u16, see the op table)
//! 8       4     body length      (little-endian u32, ≤ MAX_FRAME_BYTES)
//! 12      …     op-specific body
//! ```
//!
//! Body encoding matches the snapshot conventions: integers little-endian,
//! `f64` as its IEEE-754 bit pattern in a little-endian `u64` (exact
//! round-trip — the wire never formats a float, which is what makes the
//! "byte-identical answers over the wire" contract checkable), booleans
//! one byte (`0`/`1`, anything else is [`ProtocolError::Corrupt`]).
//!
//! ## Op table
//!
//! | op | dir | body |
//! |---|---|---|
//! | `OP_QUERY` (1) | C→S | `s: u32, t: u32` |
//! | `OP_QUERY_BATCH` (2) | C→S | `count: u32, count × (s: u32, t: u32)` |
//! | `OP_SUBSCRIBE` (3) | C→S | `chunk: u32, count: u32, count × (s, t)` |
//! | `OP_STATS` (4) | C→S | empty |
//! | `OP_SHUTDOWN` (5) | C→S | empty |
//! | `OP_INFO` (6) | C→S | empty |
//! | `OP_RELOAD` (7) | C→S | empty |
//! | `OP_ANSWER` (16) | S→C | `count: u32, count × (dist: f64-bits u64, upper: u8)` |
//! | `OP_STREAM` (17) | S→C | `offset: u32`, then an `OP_ANSWER` body |
//! | `OP_STREAM_END` (18) | S→C | `served: u64, batches: u64, elapsed_s: f64` |
//! | `OP_STATS_REPLY` (19) | S→C | the [`WireStats`] scalars |
//! | `OP_INFO_REPLY` (20) | S→C | `n: u64, m: u64, hopset: u64, seed: u64` |
//! | `OP_RELOAD_REPLY` (21) | S→C | `swapped: u8, epoch: u64, records: u64, ops: u64, n: u64, m: u64` |
//! | `OP_ERROR` (31) | S→C | `code: u16, len: u32, len × utf-8 bytes` |
//!
//! `OP_SUBSCRIBE` is the streaming mode: the client ships a whole replay
//! workload once, the server serves it in `chunk`-sized batches and
//! streams one `OP_STREAM` frame per batch back (each tagged with its
//! pair offset), terminated by `OP_STREAM_END` — so a million-query
//! replay needs one request frame, not a million round trips.
//!
//! ## Robustness contract
//!
//! Decoding never panics and never trusts a length it has not bounded:
//! truncation, bad magic, a foreign version, an unknown op, an oversized
//! length prefix, non-canonical booleans, count/length mismatches, and
//! trailing bytes each map to their own [`ProtocolError`] variant
//! (`tests/net_fuzz.rs` drives arbitrary bytes through every decoder).
//! A length prefix may claim at most [`MAX_FRAME_BYTES`]; anything larger
//! is rejected *before* allocation, and the body buffer grows only as
//! bytes actually arrive, so a hostile 4 GiB claim cannot balloon memory.
//!
//! ## Versioning policy
//!
//! Same as snapshots: any layout change bumps [`PROTOCOL_VERSION`]; peers
//! accept exactly the version they were compiled against
//! ([`ProtocolError::UnsupportedVersion`] otherwise). New ops may be
//! added without a bump — old peers report [`ProtocolError::UnknownOp`].

use psh_core::oracle::QueryResult;
use psh_core::service::ServiceStats;
use std::fmt;
use std::io::{self, Read, Write};

/// First four bytes of every frame (`b"PSHN"` — "psh net", distinct from
/// the `b"PSHS"` snapshot magic so the two streams can never be confused).
pub const PROTOCOL_MAGIC: [u8; 4] = *b"PSHN";
/// The one protocol version this build speaks (see the module docs for
/// the versioning policy).
pub const PROTOCOL_VERSION: u16 = 1;
/// Fixed frame header size: magic + version + op + body length.
pub const HEADER_BYTES: usize = 12;
/// Largest body a frame may carry (64 MiB ≈ 8M query pairs). A length
/// prefix above this is [`ProtocolError::Oversized`], rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

// --- client → server ops ---------------------------------------------------
/// One `s`–`t` query.
pub const OP_QUERY: u16 = 1;
/// A batch of queries answered in input order by one reply.
pub const OP_QUERY_BATCH: u16 = 2;
/// Streaming replay: answers come back chunk-by-chunk (`OP_STREAM`).
pub const OP_SUBSCRIBE: u16 = 3;
/// Request the server's [`WireStats`].
pub const OP_STATS: u16 = 4;
/// Ask the server to shut down gracefully (reply: final `OP_STATS_REPLY`).
pub const OP_SHUTDOWN: u16 = 5;
/// Request the served graph's shape (`OP_INFO_REPLY`).
pub const OP_INFO: u16 = 6;
/// Ask the server to poll its journal and hot-swap the oracle if new
/// records arrived (reply: `OP_RELOAD_REPLY`). Servers without a reload
/// source answer [`ERR_NO_RELOAD`].
pub const OP_RELOAD: u16 = 7;

// --- server → client ops ---------------------------------------------------
/// Answers for `OP_QUERY`/`OP_QUERY_BATCH`, in request order.
pub const OP_ANSWER: u16 = 16;
/// One chunk of a subscription replay, tagged with its pair offset.
pub const OP_STREAM: u16 = 17;
/// End of a subscription replay, with the server-side summary.
pub const OP_STREAM_END: u16 = 18;
/// The server's serving statistics.
pub const OP_STATS_REPLY: u16 = 19;
/// The served graph's shape and provenance.
pub const OP_INFO_REPLY: u16 = 20;
/// Outcome of an `OP_RELOAD`: whether a swap happened, the epoch now
/// served, and the shape of the (possibly new) graph.
pub const OP_RELOAD_REPLY: u16 = 21;
/// A typed server-side failure (the connection may stay open; see codes).
pub const OP_ERROR: u16 = 31;

// --- OP_ERROR codes --------------------------------------------------------
/// The request body did not decode (the server closes the connection —
/// framing can no longer be trusted).
pub const ERR_BAD_REQUEST: u16 = 1;
/// A vertex id was ≥ the served graph's `n` (connection stays open).
pub const ERR_OUT_OF_RANGE: u16 = 2;
/// This connection exhausted its per-connection request cap (closed).
pub const ERR_CONN_CAP: u16 = 3;
/// The server exhausted its global request cap (connection closed).
pub const ERR_GLOBAL_CAP: u16 = 4;
/// The server is at its concurrent-connection cap (closed immediately).
pub const ERR_BUSY: u16 = 5;
/// The server is shutting down (connection closed).
pub const ERR_SHUTTING_DOWN: u16 = 6;
/// `OP_RELOAD` sent to a server with no reload source configured (no
/// `--watch-journal`, no programmatic hook; connection stays open).
pub const ERR_NO_RELOAD: u16 = 7;
/// The reload hook failed — e.g. a corrupt journal record or a rebuild
/// error. The previous oracle keeps serving; the connection stays open.
pub const ERR_RELOAD_FAILED: u16 = 8;

const KNOWN_OPS: [u16; 14] = [
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_SUBSCRIBE,
    OP_STATS,
    OP_SHUTDOWN,
    OP_INFO,
    OP_RELOAD,
    OP_ANSWER,
    OP_STREAM,
    OP_STREAM_END,
    OP_STATS_REPLY,
    OP_INFO_REPLY,
    OP_RELOAD_REPLY,
    OP_ERROR,
];

/// Human name of an op code (error messages and stats dumps).
pub fn op_name(op: u16) -> &'static str {
    match op {
        OP_QUERY => "query",
        OP_QUERY_BATCH => "query-batch",
        OP_SUBSCRIBE => "subscribe",
        OP_STATS => "stats",
        OP_SHUTDOWN => "shutdown",
        OP_INFO => "info",
        OP_RELOAD => "reload",
        OP_ANSWER => "answer",
        OP_STREAM => "stream",
        OP_STREAM_END => "stream-end",
        OP_STATS_REPLY => "stats-reply",
        OP_INFO_REPLY => "info-reply",
        OP_RELOAD_REPLY => "reload-reply",
        OP_ERROR => "error",
        _ => "unknown",
    }
}

/// Why a frame or body could not be written, read, or decoded. Every
/// malformed input maps to a descriptive variant; decoders never panic
/// on untrusted bytes (the fuzz suite drives arbitrary input through
/// them to enforce this).
#[derive(Debug)]
pub enum ProtocolError {
    /// An underlying socket/stream failure (includes read/write timeouts;
    /// see [`ProtocolError::is_timeout`]).
    Io(io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The first four bytes were not [`PROTOCOL_MAGIC`].
    BadMagic { found: [u8; 4] },
    /// The peer speaks a different protocol version.
    UnsupportedVersion { found: u16, supported: u16 },
    /// An op code outside the table (see the module docs).
    UnknownOp { found: u16 },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`]; rejected before
    /// allocating anything.
    Oversized { len: u64, max: usize },
    /// The stream ended in the middle of `what`.
    Truncated { what: &'static str },
    /// A structurally invalid body (count/length mismatch, non-canonical
    /// boolean, trailing bytes, zero chunk, …).
    Corrupt { what: &'static str, detail: String },
    /// The server answered with a typed `OP_ERROR` frame.
    Remote { code: u16, message: String },
    /// The peer sent a validly-framed op that makes no sense in the
    /// current exchange (e.g. a stream chunk when an answer was due).
    Unexpected { expected: &'static str, found: u16 },
}

impl ProtocolError {
    /// True when this is a socket read/write timeout (the deadline set by
    /// `set_read_timeout`/`set_write_timeout` elapsed).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtocolError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "psh-net i/o error: {e}"),
            ProtocolError::Closed => write!(f, "connection closed by peer"),
            ProtocolError::BadMagic { found } => {
                write!(f, "not a psh-net frame (magic {found:?})")
            }
            ProtocolError::UnsupportedVersion { found, supported } => write!(
                f,
                "protocol version {found} unsupported (this build speaks version {supported})"
            ),
            ProtocolError::UnknownOp { found } => write!(f, "unknown op code {found}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Truncated { what } => {
                write!(f, "frame truncated while reading {what}")
            }
            ProtocolError::Corrupt { what, detail } => {
                write!(f, "corrupt frame ({what}): {detail}")
            }
            ProtocolError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ProtocolError::Unexpected { expected, found } => write!(
                f,
                "unexpected {} frame (op {found}) while waiting for {expected}",
                op_name(*found)
            ),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// One validated frame: its op code and raw body bytes. Produced by
/// [`read_frame`], consumed by [`Request::decode`]/[`Response::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The op code (guaranteed to be in the op table).
    pub op: u16,
    /// The raw body (guaranteed ≤ [`MAX_FRAME_BYTES`]).
    pub body: Vec<u8>,
}

/// Write one frame: header + body. Fails with
/// [`ProtocolError::Oversized`] if the body exceeds the frame cap
/// (nothing is written in that case).
pub fn write_frame<W: Write>(out: &mut W, op: u16, body: &[u8]) -> Result<(), ProtocolError> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized {
            len: body.len() as u64,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut header = [0u8; HEADER_BYTES];
    header[0..4].copy_from_slice(&PROTOCOL_MAGIC);
    header[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&op.to_le_bytes());
    header[8..12].copy_from_slice(&(body.len() as u32).to_le_bytes());
    out.write_all(&header)?;
    out.write_all(body)?;
    out.flush()?;
    Ok(())
}

/// Read and validate one frame. Clean EOF *before any header byte* is
/// [`ProtocolError::Closed`] (the peer hung up between frames); EOF
/// anywhere later is [`ProtocolError::Truncated`]. The body buffer grows
/// only as bytes arrive, so a truncated stream allocates at most what it
/// actually delivered.
pub fn read_frame<R: Read>(inp: &mut R) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0usize;
    while filled < HEADER_BYTES {
        match inp.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    ProtocolError::Closed
                } else {
                    ProtocolError::Truncated {
                        what: "frame header",
                    }
                })
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    if header[0..4] != PROTOCOL_MAGIC {
        return Err(ProtocolError::BadMagic {
            found: header[0..4].try_into().expect("4-byte slice"),
        });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let op = u16::from_le_bytes(header[6..8].try_into().expect("2-byte slice"));
    if !KNOWN_OPS.contains(&op) {
        return Err(ProtocolError::UnknownOp { found: op });
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice")) as u64;
    if len > MAX_FRAME_BYTES as u64 {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    // read_to_end grows the buffer adaptively as data arrives — a length
    // claim larger than the actual stream cannot force the full
    // allocation up front.
    let mut body = Vec::new();
    inp.take(len).read_to_end(&mut body)?;
    if (body.len() as u64) < len {
        return Err(ProtocolError::Truncated { what: "frame body" });
    }
    Ok(Frame { op, body })
}

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

/// Builds a frame body (little-endian, matching the snapshot encoding).
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    /// An empty body.
    pub fn new() -> BodyWriter {
        BodyWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append a count-prefixed pair list.
    pub fn pairs(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.u32(pairs.len() as u32);
        for &(s, t) in pairs {
            self.u32(s).u32(t);
        }
        self
    }

    /// Append a count-prefixed answer list (distance bits + bound flag).
    pub fn answers(&mut self, answers: &[QueryResult]) -> &mut Self {
        self.u32(answers.len() as u32);
        for a in answers {
            self.f64(a.distance).u8(u8::from(a.upper_bound));
        }
        self
    }

    /// Take the finished body (the writer is left empty, so chained
    /// builder expressions can end in `.finish()`).
    pub fn finish(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// Reads a frame body; every primitive reports a typed
/// [`ProtocolError::Truncated`]/[`ProtocolError::Corrupt`] instead of
/// panicking, and [`BodyReader::finish`] rejects trailing bytes.
#[derive(Debug)]
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wrap a frame body.
    pub fn new(buf: &'a [u8]) -> BodyReader<'a> {
        BodyReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn chunk(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < len {
            return Err(ProtocolError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.chunk(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(
            self.chunk(2, what)?.try_into().expect("2-byte chunk"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.chunk(4, what)?.try_into().expect("4-byte chunk"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.chunk(8, what)?.try_into().expect("8-byte chunk"),
        ))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a canonical boolean byte (`0`/`1`; anything else is corrupt —
    /// a lenient read here would break the byte-identity contract).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Corrupt {
                what,
                detail: format!("boolean byte {other} (want 0 or 1)"),
            }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(what)? as usize;
        let bytes = self.chunk(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Corrupt {
            what,
            detail: "string is not valid utf-8".into(),
        })
    }

    /// Read a count-prefixed pair list. The count is validated against
    /// the bytes actually present before any allocation.
    pub fn pairs(&mut self, what: &'static str) -> Result<Vec<(u32, u32)>, ProtocolError> {
        let count = self.u32(what)? as usize;
        let need = count.checked_mul(8).ok_or(ProtocolError::Corrupt {
            what,
            detail: "pair count overflows".into(),
        })?;
        if self.remaining() < need {
            return Err(ProtocolError::Corrupt {
                what,
                detail: format!(
                    "count {count} needs {need} bytes, {} present",
                    self.remaining()
                ),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let s = self.u32(what)?;
            let t = self.u32(what)?;
            out.push((s, t));
        }
        Ok(out)
    }

    /// Read a count-prefixed answer list.
    pub fn answers(&mut self, what: &'static str) -> Result<Vec<QueryResult>, ProtocolError> {
        let count = self.u32(what)? as usize;
        let need = count.checked_mul(9).ok_or(ProtocolError::Corrupt {
            what,
            detail: "answer count overflows".into(),
        })?;
        if self.remaining() < need {
            return Err(ProtocolError::Corrupt {
                what,
                detail: format!(
                    "count {count} needs {need} bytes, {} present",
                    self.remaining()
                ),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let distance = self.f64(what)?;
            let upper_bound = self.bool(what)?;
            out.push(QueryResult {
                distance,
                upper_bound,
            });
        }
        Ok(out)
    }

    /// Assert the body is fully consumed; trailing bytes mean the peer
    /// encoded a different layout and nothing it sent can be trusted.
    pub fn finish(self, what: &'static str) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Corrupt {
                what,
                detail: format!("{} trailing bytes after the body", self.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------------

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One `s`–`t` query.
    Query { s: u32, t: u32 },
    /// A batch answered in input order by one [`Response::Answer`].
    QueryBatch(Vec<(u32, u32)>),
    /// Streaming replay: the server serves `pairs` in `chunk`-sized
    /// batches, streaming each back as a [`Response::Stream`].
    Subscribe { chunk: u32, pairs: Vec<(u32, u32)> },
    /// Request the server's [`WireStats`].
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Request the served graph's shape.
    Info,
    /// Ask the server to poll its journal and hot-swap if it grew.
    Reload,
}

impl Request {
    /// Encode into a frame (op + body).
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut w = BodyWriter::new();
        match self {
            Request::Query { s, t } => {
                w.u32(*s).u32(*t);
                (OP_QUERY, w.finish())
            }
            Request::QueryBatch(pairs) => {
                w.pairs(pairs);
                (OP_QUERY_BATCH, w.finish())
            }
            Request::Subscribe { chunk, pairs } => {
                w.u32(*chunk).pairs(pairs);
                (OP_SUBSCRIBE, w.finish())
            }
            Request::Stats => (OP_STATS, w.finish()),
            Request::Shutdown => (OP_SHUTDOWN, w.finish()),
            Request::Info => (OP_INFO, w.finish()),
            Request::Reload => (OP_RELOAD, w.finish()),
        }
    }

    /// Decode a frame the server read. Server-to-client ops are
    /// [`ProtocolError::Unexpected`].
    pub fn decode(frame: &Frame) -> Result<Request, ProtocolError> {
        let mut r = BodyReader::new(&frame.body);
        let req = match frame.op {
            OP_QUERY => Request::Query {
                s: r.u32("query source")?,
                t: r.u32("query target")?,
            },
            OP_QUERY_BATCH => Request::QueryBatch(r.pairs("batch pairs")?),
            OP_SUBSCRIBE => {
                let chunk = r.u32("subscribe chunk")?;
                if chunk == 0 {
                    return Err(ProtocolError::Corrupt {
                        what: "subscribe chunk",
                        detail: "chunk size must be at least 1".into(),
                    });
                }
                Request::Subscribe {
                    chunk,
                    pairs: r.pairs("subscribe pairs")?,
                }
            }
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_INFO => Request::Info,
            OP_RELOAD => Request::Reload,
            other => {
                return Err(ProtocolError::Unexpected {
                    expected: "a request op",
                    found: other,
                })
            }
        };
        r.finish("request body")?;
        Ok(req)
    }
}

/// The server-side summary closing a subscription replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplaySummary {
    /// Queries answered in this replay.
    pub served: u64,
    /// `query_batch` chunks the replay was served in.
    pub batches: u64,
    /// Server-side wall clock for the whole replay, seconds.
    pub elapsed_s: f64,
}

/// The scalar half of [`ServiceStats`], as carried by `OP_STATS_REPLY`
/// (the raw latency log stays server-side — it is unbounded).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireStats {
    /// Requests answered.
    pub served: u64,
    /// Coalesced `query_batch` calls issued.
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: u64,
    /// First-admission → last-publication span, seconds.
    pub elapsed_s: f64,
    /// Requests per second over `elapsed_s`.
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency, milliseconds.
    pub p999_ms: f64,
    /// Total work spent answering (PRAM cost model).
    pub work: u64,
    /// Total depth spent answering (composed batch-after-batch).
    pub depth: u64,
}

impl From<&ServiceStats> for WireStats {
    fn from(s: &ServiceStats) -> WireStats {
        WireStats {
            served: s.served,
            batches: s.batches,
            largest_batch: s.largest_batch as u64,
            elapsed_s: s.elapsed_s,
            qps: s.qps,
            p50_ms: s.p50_ms,
            p99_ms: s.p99_ms,
            p999_ms: s.p999_ms,
            work: s.total_cost.work,
            depth: s.total_cost.depth,
        }
    }
}

/// The served graph's shape and provenance, as carried by `OP_INFO_REPLY`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Vertex count of the served graph (query ids must be `< n`).
    pub n: u64,
    /// Edge count of the served graph.
    pub m: u64,
    /// Shortcut count of the oracle's hopset.
    pub hopset: u64,
    /// The seed the oracle was built from.
    pub seed: u64,
}

/// Outcome of an `OP_RELOAD`, as carried by `OP_RELOAD_REPLY`. When the
/// journal had nothing new, `swapped` is false, `records`/`ops` are zero,
/// and the rest describes the epoch still being served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReloadSummary {
    /// True when a new oracle was swapped in by this reload.
    pub swapped: bool,
    /// The service epoch now serving answers.
    pub epoch: u64,
    /// Journal records applied by this reload (0 when nothing was new).
    pub records: u64,
    /// Total delta ops across those records.
    pub ops: u64,
    /// Vertex count of the graph now served.
    pub n: u64,
    /// Edge count of the graph now served.
    pub m: u64,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answers for a query/batch, in request order.
    Answer(Vec<QueryResult>),
    /// One chunk of a subscription replay; `offset` is the index of the
    /// first answer within the subscribed pair list.
    Stream {
        /// Index of `answers[0]` within the subscribed pairs.
        offset: u32,
        /// The chunk's answers, in pair order.
        answers: Vec<QueryResult>,
    },
    /// End of a subscription replay.
    StreamEnd(ReplaySummary),
    /// The server's serving statistics.
    Stats(WireStats),
    /// The served graph's shape.
    Info(ServerInfo),
    /// Outcome of a reload request.
    Reloaded(ReloadSummary),
    /// A typed failure (see the `ERR_*` codes).
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encode into a frame (op + body).
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut w = BodyWriter::new();
        match self {
            Response::Answer(answers) => {
                w.answers(answers);
                (OP_ANSWER, w.finish())
            }
            Response::Stream { offset, answers } => {
                w.u32(*offset).answers(answers);
                (OP_STREAM, w.finish())
            }
            Response::StreamEnd(s) => {
                w.u64(s.served).u64(s.batches).f64(s.elapsed_s);
                (OP_STREAM_END, w.finish())
            }
            Response::Stats(s) => {
                w.u64(s.served)
                    .u64(s.batches)
                    .u64(s.largest_batch)
                    .f64(s.elapsed_s)
                    .f64(s.qps)
                    .f64(s.p50_ms)
                    .f64(s.p99_ms)
                    .f64(s.p999_ms)
                    .u64(s.work)
                    .u64(s.depth);
                (OP_STATS_REPLY, w.finish())
            }
            Response::Info(i) => {
                w.u64(i.n).u64(i.m).u64(i.hopset).u64(i.seed);
                (OP_INFO_REPLY, w.finish())
            }
            Response::Reloaded(r) => {
                w.u8(u8::from(r.swapped))
                    .u64(r.epoch)
                    .u64(r.records)
                    .u64(r.ops)
                    .u64(r.n)
                    .u64(r.m);
                (OP_RELOAD_REPLY, w.finish())
            }
            Response::Error { code, message } => {
                w.u16(*code).string(message);
                (OP_ERROR, w.finish())
            }
        }
    }

    /// Decode a frame the client read. Client-to-server ops are
    /// [`ProtocolError::Unexpected`].
    pub fn decode(frame: &Frame) -> Result<Response, ProtocolError> {
        let mut r = BodyReader::new(&frame.body);
        let resp = match frame.op {
            OP_ANSWER => Response::Answer(r.answers("answer list")?),
            OP_STREAM => Response::Stream {
                offset: r.u32("stream offset")?,
                answers: r.answers("stream answers")?,
            },
            OP_STREAM_END => Response::StreamEnd(ReplaySummary {
                served: r.u64("replay served")?,
                batches: r.u64("replay batches")?,
                elapsed_s: r.f64("replay elapsed")?,
            }),
            OP_STATS_REPLY => Response::Stats(WireStats {
                served: r.u64("stats served")?,
                batches: r.u64("stats batches")?,
                largest_batch: r.u64("stats largest batch")?,
                elapsed_s: r.f64("stats elapsed")?,
                qps: r.f64("stats qps")?,
                p50_ms: r.f64("stats p50")?,
                p99_ms: r.f64("stats p99")?,
                p999_ms: r.f64("stats p999")?,
                work: r.u64("stats work")?,
                depth: r.u64("stats depth")?,
            }),
            OP_INFO_REPLY => Response::Info(ServerInfo {
                n: r.u64("info n")?,
                m: r.u64("info m")?,
                hopset: r.u64("info hopset")?,
                seed: r.u64("info seed")?,
            }),
            OP_RELOAD_REPLY => Response::Reloaded(ReloadSummary {
                swapped: r.bool("reload swapped")?,
                epoch: r.u64("reload epoch")?,
                records: r.u64("reload records")?,
                ops: r.u64("reload ops")?,
                n: r.u64("reload n")?,
                m: r.u64("reload m")?,
            }),
            OP_ERROR => Response::Error {
                code: r.u16("error code")?,
                message: r.string("error message")?,
            },
            other => {
                return Err(ProtocolError::Unexpected {
                    expected: "a response op",
                    found: other,
                })
            }
        };
        r.finish("response body")?;
        Ok(resp)
    }
}

/// Write a [`Request`] as one frame.
pub fn write_request<W: Write>(out: &mut W, req: &Request) -> Result<(), ProtocolError> {
    let (op, body) = req.encode();
    write_frame(out, op, &body)
}

/// Write a [`Response`] as one frame.
pub fn write_response<W: Write>(out: &mut W, resp: &Response) -> Result<(), ProtocolError> {
    let (op, body) = resp.encode();
    write_frame(out, op, &body)
}

/// Read one frame and decode it as a [`Request`] (server side).
pub fn read_request<R: Read>(inp: &mut R) -> Result<Request, ProtocolError> {
    Request::decode(&read_frame(inp)?)
}

/// Read one frame and decode it as a [`Response`] (client side).
pub fn read_response<R: Read>(inp: &mut R) -> Result<Response, ProtocolError> {
    Response::decode(&read_frame(inp)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(op: u16, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, op, body).unwrap();
        buf
    }

    fn sample_answers() -> Vec<QueryResult> {
        vec![
            QueryResult {
                distance: 0.0,
                upper_bound: false,
            },
            QueryResult {
                distance: 12.75,
                upper_bound: true,
            },
            QueryResult {
                distance: f64::INFINITY,
                upper_bound: false,
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        let requests = [
            Request::Query { s: 3, t: 99 },
            Request::QueryBatch(vec![(0, 1), (2, 3), (4, 4)]),
            Request::QueryBatch(Vec::new()),
            Request::Subscribe {
                chunk: 64,
                pairs: vec![(7, 8), (9, 10)],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Info,
            Request::Reload,
        ];
        for req in requests {
            let mut buf = Vec::new();
            write_request(&mut buf, &req).unwrap();
            let back = read_request(&mut buf.as_slice()).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Answer(sample_answers()),
            Response::Answer(Vec::new()),
            Response::Stream {
                offset: 128,
                answers: sample_answers(),
            },
            Response::StreamEnd(ReplaySummary {
                served: 1000,
                batches: 4,
                elapsed_s: 0.125,
            }),
            Response::Stats(WireStats {
                served: 10,
                batches: 3,
                largest_batch: 5,
                elapsed_s: 1.5,
                qps: 6.67,
                p50_ms: 0.1,
                p99_ms: 0.9,
                p999_ms: 1.1,
                work: 1234,
                depth: 56,
            }),
            Response::Info(ServerInfo {
                n: 100,
                m: 180,
                hopset: 40,
                seed: 20150625,
            }),
            Response::Reloaded(ReloadSummary {
                swapped: true,
                epoch: 3,
                records: 2,
                ops: 17,
                n: 100,
                m: 181,
            }),
            Response::Reloaded(ReloadSummary {
                swapped: false,
                epoch: 3,
                records: 0,
                ops: 0,
                n: 100,
                m: 181,
            }),
            Response::Error {
                code: ERR_OUT_OF_RANGE,
                message: "vertex 107 out of range (n = 100)".into(),
            },
        ];
        for resp in responses {
            let mut buf = Vec::new();
            write_response(&mut buf, &resp).unwrap();
            let back = read_response(&mut buf.as_slice()).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn infinity_survives_the_wire_bit_for_bit() {
        let answers = vec![QueryResult {
            distance: f64::INFINITY,
            upper_bound: false,
        }];
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Answer(answers.clone())).unwrap();
        match read_response(&mut buf.as_slice()).unwrap() {
            Response::Answer(back) => {
                assert_eq!(back[0].distance.to_bits(), answers[0].distance.to_bits());
            }
            other => panic!("expected answers, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_typed() {
        let buf = frame_bytes(
            OP_QUERY_BATCH,
            &BodyWriter::new().pairs(&[(0, 1), (2, 3)]).finish(),
        );
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(ProtocolError::Closed) => assert_eq!(cut, 0, "Closed only at offset 0"),
                Err(ProtocolError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: got {other:?}"),
            }
        }
        assert!(read_frame(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn header_validation_is_ordered_and_typed() {
        let good = frame_bytes(OP_STATS, &[]);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice()),
            Err(ProtocolError::BadMagic { .. })
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut bad_version.as_slice()),
            Err(ProtocolError::UnsupportedVersion { found: 9, .. })
        ));
        let mut bad_op = good.clone();
        bad_op[6] = 0xEE;
        assert!(matches!(
            read_frame(&mut bad_op.as_slice()),
            Err(ProtocolError::UnknownOp { .. })
        ));
        let mut oversized = good.clone();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_on_write_too() {
        let body = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, OP_QUERY, &body),
            Err(ProtocolError::Oversized { .. })
        ));
        assert!(out.is_empty(), "nothing written before the rejection");
    }

    #[test]
    fn corrupt_bodies_are_descriptive_errors() {
        // trailing bytes after a valid query body
        let mut body = BodyWriter::new();
        body.u32(1).u32(2).u8(0xFF);
        let frame = Frame {
            op: OP_QUERY,
            body: body.finish(),
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
        // pair count promising more than the body holds
        let mut body = BodyWriter::new();
        body.u32(1_000_000);
        let frame = Frame {
            op: OP_QUERY_BATCH,
            body: body.finish(),
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
        // zero subscribe chunk
        let mut body = BodyWriter::new();
        body.u32(0).pairs(&[(0, 1)]);
        let frame = Frame {
            op: OP_SUBSCRIBE,
            body: body.finish(),
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
        // non-canonical boolean in an answer
        let mut body = BodyWriter::new();
        body.u32(1).f64(1.0).u8(2);
        let frame = Frame {
            op: OP_ANSWER,
            body: body.finish(),
        };
        assert!(matches!(
            Response::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
        // non-canonical swap flag in a reload reply
        let mut body = BodyWriter::new();
        body.u8(7).u64(1).u64(1).u64(1).u64(10).u64(9);
        let frame = Frame {
            op: OP_RELOAD_REPLY,
            body: body.finish(),
        };
        assert!(matches!(
            Response::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
        // error message that is not utf-8
        let mut body = BodyWriter::new();
        body.u16(ERR_BUSY).u32(2).u8(0xFF).u8(0xFE);
        let frame = Frame {
            op: OP_ERROR,
            body: body.finish(),
        };
        assert!(matches!(
            Response::decode(&frame),
            Err(ProtocolError::Corrupt { .. })
        ));
    }

    #[test]
    fn direction_mixups_are_unexpected() {
        let frame = Frame {
            op: OP_ANSWER,
            body: BodyWriter::new().answers(&[]).finish(),
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::Unexpected { .. })
        ));
        let frame = Frame {
            op: OP_QUERY,
            body: BodyWriter::new().u32(0).u32(1).finish(),
        };
        assert!(matches!(
            Response::decode(&frame),
            Err(ProtocolError::Unexpected { .. })
        ));
    }

    #[test]
    fn error_display_is_descriptive() {
        let cases: Vec<(ProtocolError, &str)> = vec![
            (
                ProtocolError::BadMagic { found: *b"PSHS" },
                "not a psh-net frame",
            ),
            (
                ProtocolError::UnsupportedVersion {
                    found: 2,
                    supported: 1,
                },
                "version 2 unsupported",
            ),
            (ProtocolError::UnknownOp { found: 77 }, "unknown op code 77"),
            (
                ProtocolError::Oversized {
                    len: 1 << 30,
                    max: MAX_FRAME_BYTES,
                },
                "exceeds",
            ),
            (
                ProtocolError::Truncated {
                    what: "frame header",
                },
                "truncated",
            ),
            (
                ProtocolError::Remote {
                    code: ERR_BUSY,
                    message: "at capacity".into(),
                },
                "server error 5",
            ),
            (ProtocolError::Closed, "closed by peer"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        }
    }

    #[test]
    fn timeout_detection_matches_socket_errors() {
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            assert!(ProtocolError::Io(io::Error::new(kind, "t")).is_timeout());
        }
        assert!(!ProtocolError::Closed.is_timeout());
        assert!(!ProtocolError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_timeout());
    }

    #[test]
    fn snapshot_magic_is_rejected_not_confused() {
        // a graph snapshot header fed to the frame reader: magic differs
        // at byte 3 ('S' vs 'N'), so the very first check catches it
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PSHS");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::BadMagic { found }) if found == *b"PSHS"
        ));
    }
}
