//! Markdown table printing for the experiment binaries.

/// A simple right-padded markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The accumulated rows (used by the `--json` report writer).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = width[i]));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float compactly (3 significant-ish digits).
pub fn fmt_f(x: f64) -> String {
    if !x.is_finite() {
        return "∞".into();
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a large integer with thousands separators.
pub fn fmt_u(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["alg", "size"]);
        t.row(["ours", "123"]).row(["baswana-sen", "4567"]);
        let r = t.render();
        assert!(r.contains("| alg         | size |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(6.54321), "6.54");
        assert_eq!(fmt_f(42.123), "42.1");
        assert_eq!(fmt_f(123456.0), "123456");
        assert_eq!(fmt_f(f64::INFINITY), "∞");
    }

    #[test]
    fn int_formatting() {
        assert_eq!(fmt_u(0), "0");
        assert_eq!(fmt_u(999), "999");
        assert_eq!(fmt_u(1000), "1,000");
        assert_eq!(fmt_u(1234567), "1,234,567");
    }
}
