//! The workload registry shared by all experiment binaries.
//!
//! Each workload is a named, seeded graph family at a size chosen by the
//! experiment; the names appear verbatim in every table the binaries
//! print, so every number is reproducible by
//! `cargo run -p psh-bench --bin …` with the seed shown.

use psh_graph::{generators, CsrGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named graph family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Connected Erdős–Rényi-ish: spanning tree + extra random edges.
    Random,
    /// Preferential attachment, 3 edges per vertex (heavy-tailed degrees).
    PowerLaw,
    /// Square grid (high diameter, planar-ish).
    Grid,
    /// Path (the hop-count adversary).
    PathGraph,
    /// Torus (vertex-transitive grid).
    Torus,
}

impl Family {
    /// All families, for sweep loops.
    pub const ALL: [Family; 5] = [
        Family::Random,
        Family::PowerLaw,
        Family::Grid,
        Family::PathGraph,
        Family::Torus,
    ];

    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::PowerLaw => "power-law",
            Family::Grid => "grid",
            Family::PathGraph => "path",
            Family::Torus => "torus",
        }
    }

    /// Instantiate at roughly `n` vertices with the given seed
    /// (unit weights).
    pub fn instantiate(&self, n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Family::Random => generators::connected_random(n, 2 * n, &mut rng),
            Family::PowerLaw => generators::preferential_attachment(n.max(5), 3, &mut rng),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid(side, side)
            }
            Family::PathGraph => generators::path(n),
            Family::Torus => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                generators::torus(side, side)
            }
        }
    }

    /// Instantiate with log-uniform weights spanning ratio `u`.
    pub fn instantiate_weighted(&self, n: usize, u: f64, seed: u64) -> CsrGraph {
        let base = self.instantiate(n, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
        generators::with_log_uniform_weights(&base, u, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_instantiate_at_requested_scale() {
        for f in Family::ALL {
            let g = f.instantiate(100, 1);
            assert!(g.n() >= 90 && g.n() <= 110, "{}: n = {}", f.name(), g.n());
            assert!(g.m() > 0);
        }
    }

    #[test]
    fn weighted_instances_span_the_ratio() {
        let g = Family::Random.instantiate_weighted(200, 1024.0, 2);
        assert!(g.weight_ratio() > 8.0);
        assert!(g.max_weight().unwrap() <= 1024);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = Family::PowerLaw.instantiate(150, 7);
        let b = Family::PowerLaw.instantiate(150, 7);
        assert_eq!(a.edges(), b.edges());
    }
}
