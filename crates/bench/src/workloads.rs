//! The workload registry shared by all experiment binaries.
//!
//! Each workload is a named, seeded graph family at a size chosen by the
//! experiment; the names appear verbatim in every table the binaries
//! print, so every number is reproducible by
//! `cargo run -p psh-bench --bin …` with the seed shown.

use psh_graph::{generators, CsrGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named graph family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Connected Erdős–Rényi-ish: spanning tree + extra random edges.
    Random,
    /// Preferential attachment, 3 edges per vertex (heavy-tailed degrees).
    PowerLaw,
    /// R-MAT recursive-matrix sample (Graph500 mix): power-law degrees
    /// with community-like skew, ~4 edge draws per vertex.
    Rmat,
    /// Square grid (high diameter, planar-ish).
    Grid,
    /// Square grid with 8-neighbor (king-move) topology.
    Grid2d,
    /// Path (the hop-count adversary).
    PathGraph,
    /// Torus (vertex-transitive grid).
    Torus,
}

impl Family {
    /// All families, for sweep loops.
    pub const ALL: [Family; 7] = [
        Family::Random,
        Family::PowerLaw,
        Family::Rmat,
        Family::Grid,
        Family::Grid2d,
        Family::PathGraph,
        Family::Torus,
    ];

    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::PowerLaw => "power-law",
            Family::Rmat => "rmat",
            Family::Grid => "grid",
            Family::Grid2d => "grid2d",
            Family::PathGraph => "path",
            Family::Torus => "torus",
        }
    }

    /// Instantiate at roughly `n` vertices with the given seed
    /// (unit weights).
    pub fn instantiate(&self, n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Family::Random => generators::connected_random(n, 2 * n, &mut rng),
            Family::PowerLaw => generators::preferential_attachment(n.max(5), 3, &mut rng),
            Family::Rmat => generators::rmat(n.max(2), 4 * n.max(2), &mut rng),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid(side, side)
            }
            Family::Grid2d => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid2d(side, side)
            }
            Family::PathGraph => generators::path(n),
            Family::Torus => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                generators::torus(side, side)
            }
        }
    }

    /// Instantiate with log-uniform weights spanning ratio `u`.
    pub fn instantiate_weighted(&self, n: usize, u: f64, seed: u64) -> CsrGraph {
        let base = self.instantiate(n, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
        generators::with_log_uniform_weights(&base, u, &mut rng)
    }
}

// ---------------------------------------------------------------------------
// Query workloads (the serving binaries' replay format)
// ---------------------------------------------------------------------------

/// Draw `q` random `s`–`t` pairs over `0..n`, deterministically from
/// `seed` (self-pairs allowed — serving must handle them).
pub fn random_pairs(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "cannot draw query pairs from an empty vertex set");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..q)
        .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
        .collect()
}

/// Write a query workload: one `q <s> <t>` line per pair (comments `c`,
/// blank lines ignored on read — same conventions as the edge-list
/// format).
pub fn write_pairs<W: std::io::Write>(pairs: &[(u32, u32)], mut out: W) -> std::io::Result<()> {
    for (s, t) in pairs {
        writeln!(out, "q {s} {t}")?;
    }
    Ok(())
}

/// Read a query workload written by [`write_pairs`]. `max_n` bounds the
/// vertex ids (pass the serving graph's `n`); out-of-range ids are a
/// descriptive error here so they can never panic inside `query_batch`.
pub fn read_pairs<R: std::io::BufRead>(input: R, max_n: usize) -> std::io::Result<Vec<(u32, u32)>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut pairs = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("q") {
            return Err(bad(format!(
                "line {}: expected a 'q s t' record",
                lineno + 1
            )));
        }
        let mut next_id = |what: &str| -> std::io::Result<u32> {
            let v: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("line {}: bad {what}", lineno + 1)))?;
            if v as usize >= max_n {
                return Err(bad(format!(
                    "line {}: vertex {v} out of range (n = {max_n})",
                    lineno + 1
                )));
            }
            Ok(v as u32)
        };
        let s = next_id("source")?;
        let t = next_id("target")?;
        pairs.push((s, t));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_instantiate_at_requested_scale() {
        for f in Family::ALL {
            let g = f.instantiate(100, 1);
            assert!(g.n() >= 90 && g.n() <= 110, "{}: n = {}", f.name(), g.n());
            assert!(g.m() > 0);
        }
    }

    #[test]
    fn weighted_instances_span_the_ratio() {
        let g = Family::Random.instantiate_weighted(200, 1024.0, 2);
        assert!(g.weight_ratio() > 8.0);
        assert!(g.max_weight().unwrap() <= 1024);
    }

    #[test]
    fn query_pairs_round_trip_and_validate() {
        let pairs = random_pairs(50, 40, 9);
        assert_eq!(pairs, random_pairs(50, 40, 9), "deterministic");
        assert!(pairs
            .iter()
            .all(|&(s, t)| (s as usize) < 50 && (t as usize) < 50));
        let mut buf = Vec::new();
        write_pairs(&pairs, &mut buf).unwrap();
        let back = read_pairs(buf.as_slice(), 50).unwrap();
        assert_eq!(pairs, back);
        // out-of-range ids are rejected with a descriptive error
        let err = read_pairs(buf.as_slice(), 3).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        assert!(read_pairs("x 1 2\n".as_bytes(), 10).is_err());
        assert!(read_pairs("q 1\n".as_bytes(), 10).is_err());
        let commented = read_pairs("c hi\n\nq 1 2\n".as_bytes(), 10).unwrap();
        assert_eq!(commented, vec![(1, 2)]);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = Family::PowerLaw.instantiate(150, 7);
        let b = Family::PowerLaw.instantiate(150, 7);
        assert_eq!(a.edges(), b.edges());
    }
}
