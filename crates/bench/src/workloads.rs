//! The workload registry shared by all experiment binaries.
//!
//! Each workload is a named, seeded graph family at a size chosen by the
//! experiment; the names appear verbatim in every table the binaries
//! print, so every number is reproducible by
//! `cargo run -p psh-bench --bin …` with the seed shown.

use psh_graph::{generators, CsrGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named graph family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Connected Erdős–Rényi-ish: spanning tree + extra random edges.
    Random,
    /// Preferential attachment, 3 edges per vertex (heavy-tailed degrees).
    PowerLaw,
    /// R-MAT recursive-matrix sample (Graph500 mix): power-law degrees
    /// with community-like skew, ~4 edge draws per vertex.
    Rmat,
    /// Square grid (high diameter, planar-ish).
    Grid,
    /// Square grid with 8-neighbor (king-move) topology.
    Grid2d,
    /// Path (the hop-count adversary).
    PathGraph,
    /// Torus (vertex-transitive grid).
    Torus,
}

impl Family {
    /// All families, for sweep loops.
    pub const ALL: [Family; 7] = [
        Family::Random,
        Family::PowerLaw,
        Family::Rmat,
        Family::Grid,
        Family::Grid2d,
        Family::PathGraph,
        Family::Torus,
    ];

    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::PowerLaw => "power-law",
            Family::Rmat => "rmat",
            Family::Grid => "grid",
            Family::Grid2d => "grid2d",
            Family::PathGraph => "path",
            Family::Torus => "torus",
        }
    }

    /// Instantiate at roughly `n` vertices with the given seed
    /// (unit weights).
    pub fn instantiate(&self, n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Family::Random => generators::connected_random(n, 2 * n, &mut rng),
            Family::PowerLaw => generators::preferential_attachment(n.max(5), 3, &mut rng),
            Family::Rmat => generators::rmat(n.max(2), 4 * n.max(2), &mut rng),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid(side, side)
            }
            Family::Grid2d => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid2d(side, side)
            }
            Family::PathGraph => generators::path(n),
            Family::Torus => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                generators::torus(side, side)
            }
        }
    }

    /// Instantiate with log-uniform weights spanning ratio `u`.
    pub fn instantiate_weighted(&self, n: usize, u: f64, seed: u64) -> CsrGraph {
        let base = self.instantiate(n, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
        generators::with_log_uniform_weights(&base, u, &mut rng)
    }
}

// ---------------------------------------------------------------------------
// Query workloads (the serving binaries' replay format)
// ---------------------------------------------------------------------------

/// Draw `q` random `s`–`t` pairs over `0..n`, deterministically from
/// `seed` (self-pairs allowed — serving must handle them).
pub fn random_pairs(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "cannot draw query pairs from an empty vertex set");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..q)
        .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
        .collect()
}

/// Draw `q` Zipf-distributed `s`–`t` pairs over `0..n` — the realistic
/// millions-of-users shape, where a few hot endpoints dominate traffic.
///
/// Both endpoints are drawn independently from a Zipf(`theta`) rank
/// distribution (`P(rank r) ∝ 1/(r+1)^theta`), and ranks are mapped to
/// vertex ids through a seeded random permutation so the hot set is not
/// correlated with generator structure (vertex 0 of a grid is a corner;
/// a hot vertex should be an arbitrary one). `theta = 0` degenerates to
/// the uniform distribution; typical web-traffic skew is `theta ≈ 0.9`.
/// Deterministic in `seed`; self-pairs allowed, as in [`random_pairs`].
pub fn zipf_pairs(n: usize, q: usize, theta: f64, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0, "cannot draw query pairs from an empty vertex set");
    assert!(
        theta.is_finite() && theta >= 0.0,
        "zipf skew must be finite and non-negative, got {theta}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // cumulative rank weights: cum[r] = Σ_{i ≤ r} 1/(i+1)^theta
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(theta);
        cum.push(total);
    }
    // rank → vertex: a seeded Fisher–Yates permutation
    let mut vertex_of: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        vertex_of.swap(i, j);
    }
    let draw = |rng: &mut StdRng| -> u32 {
        let u: f64 = rng.random::<f64>() * total;
        // first rank whose cumulative weight exceeds the draw
        let rank = cum.partition_point(|&c| c <= u).min(n - 1);
        vertex_of[rank]
    };
    (0..q).map(|_| (draw(&mut rng), draw(&mut rng))).collect()
}

/// How a generated query workload distributes its `s`–`t` endpoints.
/// Parsed from the `--workload-dist` flag the serving binaries share.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadDist {
    /// Endpoints uniform over `0..n` ([`random_pairs`]).
    Uniform,
    /// Zipf-skewed hot pairs with skew `theta` ([`zipf_pairs`]).
    Zipf {
        /// The skew exponent (`0` = uniform, `≈ 0.9` web-like).
        theta: f64,
    },
}

impl WorkloadDist {
    /// Parse a `--workload-dist` argument: `uniform` or `zipf:<theta>`.
    pub fn parse(s: &str) -> Result<WorkloadDist, String> {
        let s = s.trim();
        if s == "uniform" {
            return Ok(WorkloadDist::Uniform);
        }
        if let Some(theta) = s.strip_prefix("zipf:") {
            return match theta.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => Ok(WorkloadDist::Zipf { theta: t }),
                _ => Err(format!(
                    "bad zipf skew '{theta}' (want a non-negative number, e.g. zipf:0.9)"
                )),
            };
        }
        Err(format!(
            "unknown workload distribution '{s}' (want 'uniform' or 'zipf:<theta>')"
        ))
    }

    /// Name for table rows and reports (`uniform`, `zipf(0.9)`).
    pub fn name(&self) -> String {
        match self {
            WorkloadDist::Uniform => "uniform".into(),
            WorkloadDist::Zipf { theta } => format!("zipf({theta})"),
        }
    }

    /// Draw `q` pairs over `0..n`, deterministically from `seed`.
    pub fn pairs(&self, n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
        match self {
            WorkloadDist::Uniform => random_pairs(n, q, seed),
            WorkloadDist::Zipf { theta } => zipf_pairs(n, q, *theta, seed),
        }
    }
}

/// Write a query workload: one `q <s> <t>` line per pair (comments `c`,
/// blank lines ignored on read — same conventions as the edge-list
/// format).
pub fn write_pairs<W: std::io::Write>(pairs: &[(u32, u32)], mut out: W) -> std::io::Result<()> {
    for (s, t) in pairs {
        writeln!(out, "q {s} {t}")?;
    }
    Ok(())
}

/// Read a query workload written by [`write_pairs`]. `max_n` bounds the
/// vertex ids (pass the serving graph's `n`); out-of-range ids are a
/// descriptive error here so they can never panic inside `query_batch`.
pub fn read_pairs<R: std::io::BufRead>(input: R, max_n: usize) -> std::io::Result<Vec<(u32, u32)>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut pairs = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("q") {
            return Err(bad(format!(
                "line {}: expected a 'q s t' record",
                lineno + 1
            )));
        }
        let mut next_id = |what: &str| -> std::io::Result<u32> {
            let v: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("line {}: bad {what}", lineno + 1)))?;
            if v as usize >= max_n {
                return Err(bad(format!(
                    "line {}: vertex {v} out of range (n = {max_n})",
                    lineno + 1
                )));
            }
            Ok(v as u32)
        };
        let s = next_id("source")?;
        let t = next_id("target")?;
        pairs.push((s, t));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_instantiate_at_requested_scale() {
        for f in Family::ALL {
            let g = f.instantiate(100, 1);
            assert!(g.n() >= 90 && g.n() <= 110, "{}: n = {}", f.name(), g.n());
            assert!(g.m() > 0);
        }
    }

    #[test]
    fn weighted_instances_span_the_ratio() {
        let g = Family::Random.instantiate_weighted(200, 1024.0, 2);
        assert!(g.weight_ratio() > 8.0);
        assert!(g.max_weight().unwrap() <= 1024);
    }

    #[test]
    fn query_pairs_round_trip_and_validate() {
        let pairs = random_pairs(50, 40, 9);
        assert_eq!(pairs, random_pairs(50, 40, 9), "deterministic");
        assert!(pairs
            .iter()
            .all(|&(s, t)| (s as usize) < 50 && (t as usize) < 50));
        let mut buf = Vec::new();
        write_pairs(&pairs, &mut buf).unwrap();
        let back = read_pairs(buf.as_slice(), 50).unwrap();
        assert_eq!(pairs, back);
        // out-of-range ids are rejected with a descriptive error
        let err = read_pairs(buf.as_slice(), 3).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        assert!(read_pairs("x 1 2\n".as_bytes(), 10).is_err());
        assert!(read_pairs("q 1\n".as_bytes(), 10).is_err());
        let commented = read_pairs("c hi\n\nq 1 2\n".as_bytes(), 10).unwrap();
        assert_eq!(commented, vec![(1, 2)]);
    }

    #[test]
    fn zipf_pairs_skew_and_determinism() {
        let n = 200;
        let q = 4000;
        let pairs = zipf_pairs(n, q, 1.2, 11);
        assert_eq!(pairs, zipf_pairs(n, q, 1.2, 11), "deterministic");
        assert!(pairs
            .iter()
            .all(|&(s, t)| (s as usize) < n && (t as usize) < n));
        // the hottest endpoint should dominate well beyond a uniform
        // draw's expected q*2/n ≈ 40 hits
        let mut hits = vec![0usize; n];
        for &(s, t) in &pairs {
            hits[s as usize] += 1;
            hits[t as usize] += 1;
        }
        let hottest = *hits.iter().max().unwrap();
        assert!(
            hottest > 4 * (2 * q / n),
            "zipf(1.2) hottest endpoint only got {hottest} of {} draws",
            2 * q
        );
        // theta = 0 degenerates to (permuted) uniform: no such hot spot
        let mut uni_hits = vec![0usize; n];
        for (s, t) in zipf_pairs(n, q, 0.0, 11) {
            uni_hits[s as usize] += 1;
            uni_hits[t as usize] += 1;
        }
        assert!(*uni_hits.iter().max().unwrap() < 4 * (2 * q / n));
    }

    #[test]
    fn workload_dist_parses_and_draws() {
        assert_eq!(WorkloadDist::parse("uniform"), Ok(WorkloadDist::Uniform));
        assert_eq!(
            WorkloadDist::parse(" zipf:0.9 "),
            Ok(WorkloadDist::Zipf { theta: 0.9 })
        );
        assert_eq!(WorkloadDist::Zipf { theta: 0.9 }.name(), "zipf(0.9)");
        assert!(WorkloadDist::parse("zipf:-1").is_err());
        assert!(WorkloadDist::parse("zipf:nan").is_err());
        assert!(WorkloadDist::parse("hotcold").is_err());
        assert_eq!(
            WorkloadDist::Uniform.pairs(50, 10, 3),
            random_pairs(50, 10, 3)
        );
        assert_eq!(
            WorkloadDist::Zipf { theta: 1.0 }.pairs(50, 10, 3),
            zipf_pairs(50, 10, 1.0, 3)
        );
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = Family::PowerLaw.instantiate(150, 7);
        let b = Family::PowerLaw.instantiate(150, 7);
        assert_eq!(a.edges(), b.edges());
    }
}
