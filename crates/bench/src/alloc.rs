//! A counting global allocator for peak-memory measurements.
//!
//! Shared by the binaries that report peak allocated bytes
//! (`recursion_memory`, `benchsuite`). Each binary opts in by declaring
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: psh_bench::alloc::CountingAlloc = psh_bench::alloc::CountingAlloc;
//! ```
//!
//! and then brackets the measured region with [`reset_peak`] /
//! [`peak_above`]. The counters are process-global atomics, so
//! allocations from pool worker threads are counted exactly (peak
//! tracking uses a CAS loop). When no binary installs the allocator the
//! module is inert — the counters just stay at zero.

// GlobalAlloc is an unsafe trait; this wrapper is the workspace's one
// unsafe block outside the vendored stand-ins.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper tracking live and peak bytes.
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => peak = seen,
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the current live volume. Call at the
/// start of a measured region (and capture [`live_bytes`] as the base).
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak bytes allocated above `base` since the last [`reset_peak`].
pub fn peak_above(base: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}
