//! # psh-bench — the experiment harness
//!
//! Shared infrastructure for the table-generator binaries (`src/bin/`)
//! that regenerate every table and figure of the paper, and for the
//! Criterion micro-benchmarks (`benches/`). The workspace README lists
//! the experiment index; each binary prints its own table, and every
//! binary accepts `--json PATH` to also emit a machine-readable
//! [`json::Report`] (rows + n/m/params metadata + wall-clock + thread
//! count) for longitudinal tracking.

pub mod alloc;
pub mod json;
pub mod serving;
pub mod stats;
pub mod table;
pub mod workloads;

pub use json::Report;
pub use stats::Summary;
pub use table::Table;
