//! E8 — **Lemma 3.2 / Theorem 3.3**: spanner size scaling.
//!
//! Sweeping n at fixed k, the paper predicts size `Θ(n^{1+1/k})`
//! (unweighted) — a log-log slope of `1 + 1/k` — and an extra `log k`
//! factor (weighted). We fit the slope and print the per-n constants, for
//! both our construction and Baswana–Sen (whose constant should be ≈ k
//! times larger).
//!
//! Usage: `cargo run --release -p psh-bench --bin spanner_size_scaling [--json PATH]`

use psh_baselines::baswana_sen::baswana_sen_spanner;
use psh_bench::stats::loglog_slope;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{Seed, SpannerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 20150625u64;
    let sizes = [500usize, 1_000, 2_000, 4_000, 8_000];
    let mut report = Report::from_args("spanner_size_scaling");
    report.meta("seed", seed);
    println!("# Lemma 3.2 — spanner size vs n^(1+1/k)\n");
    for k in [2usize, 4] {
        println!("## k = {k} (dense random graphs, m = 4n)\n");
        let mut t = Table::new([
            "n",
            "m",
            "ours size",
            "ours/n^(1+1/k)",
            "BS size",
            "BS/n^(1+1/k)",
        ]);
        let mut pts_ours = Vec::new();
        let mut pts_bs = Vec::new();
        for &n in &sizes {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = psh_graph::generators::connected_random(n, 4 * n, &mut rng);
            let (ours, _) = SpannerBuilder::unweighted(k as f64)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .into_parts();
            let (bs, _) = baswana_sen_spanner(&g, k, &mut StdRng::seed_from_u64(seed));
            pts_ours.push((n as f64, ours.size() as f64));
            pts_bs.push((n as f64, bs.size() as f64));
            t.row([
                fmt_u(n as u64),
                fmt_u(g.m() as u64),
                fmt_u(ours.size() as u64),
                fmt_f(ours.size_ratio(k as f64)),
                fmt_u(bs.size() as u64),
                fmt_f(bs.size_ratio(k as f64)),
            ]);
        }
        t.print();
        report.push_table(&format!("unweighted_k{k}"), &t);
        println!(
            "\nlog-log slope: ours {} | baswana-sen {} | predicted ≤ {}\n",
            fmt_f(loglog_slope(&pts_ours)),
            fmt_f(loglog_slope(&pts_bs)),
            fmt_f(1.0 + 1.0 / k as f64),
        );
    }

    println!("# Theorem 3.3 — weighted size carries only a log k factor\n");
    let k = 3usize;
    let mut t = Table::new(["n", "U", "weighted size", "size/(n^(1+1/k)·log2 k)"]);
    for &n in &sizes[..4] {
        let g = Family::Random.instantiate_weighted(n, 4096.0, seed);
        let (s, _) = SpannerBuilder::weighted(k as f64)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .into_parts();
        let denom = (n as f64).powf(1.0 + 1.0 / k as f64) * (k as f64).log2().max(1.0);
        t.row([
            fmt_u(n as u64),
            "2^12".into(),
            fmt_u(s.size() as u64),
            fmt_f(s.size() as f64 / denom),
        ]);
    }
    t.print();
    report.push_table("weighted_logk", &t);
    report.finish();
    println!("\nexpect: constant final column (no U-dependence in size).");
}
