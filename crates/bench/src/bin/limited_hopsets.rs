//! E14 — **Appendix C / Theorem C.2**: limited hopsets and the low-depth
//! iteration.
//!
//! Each iteration of the Theorem C.2 loop should divide the hop count of
//! long paths by roughly `n^η`. We run the loop on long paths, measuring
//! after each iteration the hops needed for the end-to-end pair.
//!
//! Usage: `cargo run --release -p psh-bench --bin limited_hopsets [--json PATH]`

use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::Report;
use psh_core::hopset::limited::{limited_hopset, low_depth_hopset};
use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::{generators, CsrGraph, Edge, INF};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hops_for_pair(g: &CsrGraph, edges: &[Edge], s: u32, t: u32) -> (u64, f64) {
    let extra = ExtraEdges::from_edges(g.n(), edges);
    let use_extra = (!edges.is_empty()).then_some(&extra);
    let (d, hops, _) = hop_limited_pair(g, use_extra, s, t, g.n());
    let exact = dijkstra_pair(g, s, t);
    if d == INF {
        (u64::MAX, f64::INFINITY)
    } else {
        (hops as u64, d as f64 / exact as f64)
    }
}

fn main() {
    let seed = 20150625u64;
    let n = 2_048usize;
    let g = generators::path(n);
    let (s, t) = (0u32, (n - 1) as u32);
    let mut report = Report::from_args("limited_hopsets");
    report.meta("n", n).meta("seed", seed);

    println!("# Appendix C — iterated limited hopsets on a {n}-vertex path\n");
    println!("## Per-iteration hop reduction (Theorem C.2 loop, α = 0.6)\n");
    let mut t1 = Table::new(["iteration", "accumulated edges", "s-t hops", "distortion"]);
    {
        // replicate the loop manually to observe per-iteration state
        let eta: f64 = 0.3;
        let iterations = (1.0 / eta).ceil() as usize;
        let band = (n as f64).powf(eta).max(2.0);
        let d_max = n as u64;
        let mut working = g.clone();
        let mut acc: Vec<Edge> = Vec::new();
        let (h0, dist0) = hops_for_pair(&g, &acc, s, t);
        t1.row(["0".into(), "0".into(), fmt_u(h0), fmt_f(dist0)]);
        let mut rng = StdRng::seed_from_u64(seed);
        for it in 1..=iterations {
            let mut new_edges = Vec::new();
            let mut d = 1u64;
            while d <= d_max {
                use rand::Rng;
                let child: u64 = rng.random();
                let (es, _) =
                    limited_hopset(&working, d, eta, 0.5, &mut StdRng::seed_from_u64(child));
                new_edges.extend(es);
                d = ((d as f64 * band).ceil() as u64).max(d + 1);
            }
            acc.extend(new_edges.iter().copied());
            let merged: Vec<Edge> = working.edges().iter().copied().chain(new_edges).collect();
            working = CsrGraph::from_edges(n, merged);
            let (h, dist) = hops_for_pair(&g, &acc, s, t);
            t1.row([
                it.to_string(),
                fmt_u(acc.len() as u64),
                fmt_u(h),
                fmt_f(dist),
            ]);
        }
    }
    t1.print();
    report.push_table("per_iteration", &t1);

    println!("\n## One-shot driver (low_depth_hopset, α sweep)\n");
    let mut t2 = Table::new(["α", "hopset size", "s-t hops", "distortion"]);
    for alpha in [0.4f64, 0.6, 0.8] {
        let (h, _) = low_depth_hopset(&g, alpha, 0.5, &mut StdRng::seed_from_u64(seed));
        let (hops, dist) = hops_for_pair(&g, &h.edges, s, t);
        t2.row([
            fmt_f(alpha),
            fmt_u(h.size() as u64),
            fmt_u(hops),
            fmt_f(dist),
        ]);
    }
    t2.print();
    report.push_table("alpha_sweep", &t2);
    report.finish();
    println!("\nexpect: hops drop sharply in early iterations; distortion stays bounded.");
}
