//! E13 — **Lemma 5.1 / Appendix B**: hierarchical weight decomposition.
//!
//! On graphs whose weight ratio far exceeds `n³`, the decomposition must
//! (a) produce query graphs with polynomially bounded weights, (b) keep
//! the total collection near-linear in m, and (c) answer queries within
//! `[(1−ε)·dist, dist]`.
//!
//! Usage: `cargo run --release -p psh-bench --bin weight_decomposition [--json PATH]`

use psh_bench::stats::Summary;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::hopset::weight_classes::WeightClassDecomposition;
use psh_graph::traversal::dijkstra::dijkstra;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed = 20150625u64;
    let eps = 0.2;
    let mut report = Report::from_args("weight_decomposition");
    report.meta("seed", seed).meta("eps", eps);
    println!("# Appendix B — weight-class decomposition (ε = {eps})\n");
    let mut t = Table::new([
        "family",
        "U",
        "levels",
        "Σ query-graph edges / m",
        "max query ratio / base³",
        "mean rel err",
        "worst rel err",
        "overshoots",
    ]);
    for family in [Family::Random, Family::Grid] {
        for log10_u in [6u32, 12, 18] {
            let u = 10f64.powi(log10_u as i32);
            let g = family.instantiate_weighted(600, u, seed);
            let (dec, _) = WeightClassDecomposition::build(&g, eps);
            let (_, e_total) = dec.collection_size();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut errs = Vec::new();
            let mut overshoots = 0usize;
            for _ in 0..4 {
                let s = rng.random_range(0..g.n() as u32);
                let exact = dijkstra(&g, s);
                for _ in 0..25 {
                    let tt = rng.random_range(0..g.n() as u32);
                    let ex = exact.dist[tt as usize];
                    if ex == 0 || ex == psh_graph::INF {
                        continue;
                    }
                    let approx = dec.query(s, tt);
                    if approx > ex {
                        overshoots += 1;
                    }
                    errs.push(1.0 - approx as f64 / ex as f64);
                }
            }
            let s = Summary::of(&errs);
            t.row([
                family.name().to_string(),
                format!("1e{log10_u}"),
                dec.levels.len().to_string(),
                fmt_f(e_total as f64 / g.m() as f64),
                fmt_f(dec.max_query_weight_ratio() / dec.base.powi(3)),
                fmt_f(s.mean),
                fmt_f(s.max),
                fmt_u(overshoots as u64),
            ]);
        }
    }
    t.print();
    report.push_table("decomposition", &t);
    report.finish();
    println!("\nexpect: edges/m ≤ 3, ratio fraction ≤ 1, worst err ≤ ε, zero overshoots.");
}
