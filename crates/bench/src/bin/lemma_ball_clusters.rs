//! E7 — **Corollary 3.1**: with `β = ln n / 2k`, the unit ball around any
//! vertex meets `O(n^{1/k})` clusters in expectation.
//!
//! This is the quantity that controls the spanner size (each boundary
//! vertex contributes one edge per adjacent cluster). We estimate
//! `E[#clusters meeting B(v, 1)]` by sampling vertices over independent
//! clusterings, sweeping k.
//!
//! Usage: `cargo run --release -p psh-bench --bin lemma_ball_clusters [--json PATH]`

use psh_bench::stats::Summary;
use psh_bench::table::{fmt_f, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_cluster::analysis::ball_cluster_counts;
use psh_cluster::{ClusterBuilder, Seed};
use psh_core::spanner::unweighted::beta_for;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed = 20150625u64;
    let n = 3_000usize;
    let trials = 12u64;
    let samples_per_trial = 60;
    let mut report = Report::from_args("lemma_ball_clusters");
    report
        .meta("n", n)
        .meta("seed", seed)
        .meta("trials", trials);
    println!("# Corollary 3.1 — E[#clusters meeting B(v,1)] ≤ n^(1/k)\n");
    let mut t = Table::new([
        "family",
        "k",
        "β=ln n/2k",
        "mean #clusters in B(v,1)",
        "max",
        "bound n^(1/k)",
    ]);
    for family in [Family::Random, Family::PowerLaw] {
        let g = family.instantiate(n, seed);
        for k in [2.0f64, 3.0, 4.0, 8.0] {
            let beta = beta_for(g.n(), k);
            let mut all: Vec<f64> = Vec::new();
            for tr in 0..trials {
                let (c, _) = ClusterBuilder::new(beta)
                    .seed(Seed(seed + tr))
                    .build(&g)
                    .unwrap()
                    .into_parts();
                let mut rng = StdRng::seed_from_u64(tr);
                let centers: Vec<u32> = (0..samples_per_trial)
                    .map(|_| rng.random_range(0..g.n() as u32))
                    .collect();
                all.extend(
                    ball_cluster_counts(&g, &c, &centers, 1)
                        .into_iter()
                        .map(|x| x as f64),
                );
            }
            let s = Summary::of(&all);
            t.row([
                family.name().to_string(),
                fmt_f(k),
                fmt_f(beta),
                fmt_f(s.mean),
                fmt_f(s.max),
                fmt_f((g.n() as f64).powf(1.0 / k)),
            ]);
        }
    }
    t.print();
    report.push_table("ball_clusters", &t);
    report.finish();
    println!("\nexpect: the mean column under the bound column in every row.");
}
