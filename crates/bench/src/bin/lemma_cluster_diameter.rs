//! E5 — **Lemma 2.1**: cluster radius vs `k·log n / β`.
//!
//! The clustering certifies each cluster by a spanning tree; Lemma 2.1
//! bounds the tree radius by `k·log n/β` with probability `1 − 1/n^{k−1}`.
//! We sweep β over several graph families and report the max and mean
//! observed radius against the k = 1 and k = 2 bounds.
//!
//! Usage: `cargo run --release -p psh-bench --bin lemma_cluster_diameter [--json PATH]`

use psh_bench::stats::Summary;
use psh_bench::table::{fmt_f, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_cluster::analysis::radius_summary;
use psh_cluster::{ClusterBuilder, Seed};

fn main() {
    let seed = 20150625u64;
    let n = 4_000usize;
    let trials = 15u64;
    let mut report = Report::from_args("lemma_cluster_diameter");
    report
        .meta("n", n)
        .meta("seed", seed)
        .meta("trials", trials);
    println!("# Lemma 2.1 — cluster radius ≤ k·ln n/β w.h.p.\n");
    let mut t = Table::new([
        "family",
        "β",
        "max radius (over trials)",
        "mean radius",
        "bound k=1 (ln n/β)",
        "bound k=2",
        "depth (rounds, mean)",
    ]);
    for family in [Family::Random, Family::Grid, Family::PathGraph] {
        let g = family.instantiate(n, seed);
        let ln_n = (g.n() as f64).ln();
        for beta in [0.05f64, 0.1, 0.3, 0.8] {
            let mut maxes = Vec::new();
            let mut means = Vec::new();
            let mut depths = Vec::new();
            for tr in 0..trials {
                let (c, cost) = ClusterBuilder::new(beta)
                    .seed(Seed(seed + tr))
                    .build(&g)
                    .unwrap()
                    .into_parts();
                let (mx, mean) = radius_summary(&c);
                maxes.push(mx as f64);
                means.push(mean);
                depths.push(cost.depth as f64);
            }
            t.row([
                family.name().to_string(),
                fmt_f(beta),
                fmt_f(Summary::of(&maxes).max),
                fmt_f(Summary::of(&means).mean),
                fmt_f(ln_n / beta),
                fmt_f(2.0 * ln_n / beta),
                fmt_f(Summary::of(&depths).mean),
            ]);
        }
    }
    t.print();
    report.push_table("cluster_radius", &t);
    report.finish();
    println!("\nexpect: max radius under the k=2 bound in every row; depth tracks ln n/β.");
}
