//! E9 — **Lemma 4.2**: hop count and distortion of the shortcut paths.
//!
//! For a distance-d pair, Lemma 4.2 predicts an equivalent path with
//! `h = n^{1/δ}·n_final^{1−1/δ}·β₀·d` hops and additive distortion
//! `O(ε·log_ρ n·d)`. Paths are the adversarial case (hop count = distance)
//! so we measure on long paths and grids, sweeping the parameters that the
//! bound says matter (δ via ρ, γ₂ via β₀).
//!
//! Usage: `cargo run --release -p psh-bench --bin hopset_quality [--json PATH]`

use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::HopsetParams;
use psh_graph::traversal::bellman_ford::hop_limited_pair;
use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::INF;

fn main() {
    let seed = 20150625u64;
    let n = 4_096usize;
    let mut report = Report::from_args("hopset_quality");
    report.meta("n", n).meta("seed", seed);
    println!("# Lemma 4.2 — hops and distortion vs predicted\n");
    let mut t = Table::new([
        "family",
        "δ",
        "γ2",
        "hopset size",
        "s-t dist",
        "(1+err)",
        "hops used",
        "predicted h",
        "no-hopset hops",
    ]);
    for family in [Family::PathGraph, Family::Grid] {
        let g = family.instantiate(n, seed);
        let nn = g.n();
        let (s, tt) = (0u32, (nn - 1) as u32);
        let exact = dijkstra_pair(&g, s, tt);
        for (delta, gamma2) in [(1.25f64, 0.6f64), (1.5, 0.75), (2.0, 0.9)] {
            let params = HopsetParams {
                epsilon: 0.5,
                delta,
                gamma1: 0.25,
                gamma2,
                k_conf: 1.0,
            };
            let h = HopsetBuilder::unweighted()
                .params(params)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .artifact
                .into_single();
            let extra = h.to_extra_edges();
            let (d, hops, _) = hop_limited_pair(&g, Some(&extra), s, tt, nn);
            let predicted = params.hop_bound(nn, params.beta0(nn), exact);
            t.row([
                family.name().to_string(),
                fmt_f(delta),
                fmt_f(gamma2),
                fmt_u(h.size() as u64),
                fmt_u(exact),
                if d == INF {
                    "∞".into()
                } else {
                    fmt_f(d as f64 / exact as f64)
                },
                fmt_u(hops as u64),
                fmt_u(predicted as u64),
                fmt_u(exact), // unit graphs: hop count = distance
            ]);
        }
    }
    t.print();
    report.push_table("hops_and_distortion", &t);
    report.finish();
    println!("\nexpect: hops used ≪ no-hopset hops; distortion within the ε·log_ρ n budget.");
}
