//! `psh-server` — serve an oracle over TCP.
//!
//! The long-running half of the wire tier: build or load an oracle
//! snapshot (same `--family`/`--graph`/`--snapshot` vocabulary as
//! `psh-serve`), bind a listener, and answer `psh-client` (or any
//! `psh_net::NetClient`) until asked to stop. Queries arriving on
//! different sockets coalesce into shared `query_batch` calls through
//! the `OracleService` admission queue, so wire-side throughput scales
//! with concurrent clients just like in-process threads do.
//!
//! Usage:
//! ```text
//! psh-server [--family F] [--n N] [--weights U] [--graph PATH]
//!            [--shards K]            # serve a K-shard ShardedOracle
//!                                    # (an existing sharded --snapshot
//!                                    # is detected and served sharded
//!                                    # with or without the flag)
//!            [--snapshot PATH] [--fresh-snapshot]
//!            [--watch-journal]       # hot-swap on journal growth
//!                                    # (requires --snapshot; see below)
//!            [--addr HOST:PORT]      # default $PSH_ADDR, else 127.0.0.1:7471
//!                                    # (use :0 for an ephemeral port)
//!            [--port-file PATH]      # write the bound addr for scripts
//!            [--max-conns C] [--max-conn-requests Q] [--max-requests Q]
//!            [--timeout-secs S]      # per-socket read/write timeout
//!            [--batch B] [--threads K] [--seed S]
//!            [--cache SLOTS]         # bounded answer cache (off by default)
//!            [--max-seconds S]       # hard deadline, then shut down
//!            [--json PATH]
//! ```
//!
//! With `--watch-journal` the server watches `<snapshot>.journal` (see
//! `psh-snap journal`): the main loop polls it every 25 ms, and clients
//! may force an immediate poll with `psh-client --reload`. New records
//! are applied to the served graph, the oracle is rebuilt in the
//! background, and the service hot-swaps it at a batch boundary — the
//! old epoch keeps answering until the instant the new one takes over
//! (zero downtime, no torn batches). A corrupt or mismatched journal is
//! logged and the previous epoch keeps serving. A sharded oracle watches
//! one journal per shard (`<snapshot>.shardS.journal`, ops in
//! shard-local ids); a poll rebuilds only the touched shards plus the
//! boundary overlay and swaps the whole stitched generation at once, so
//! no answer ever mixes shard epochs.
//!
//! The server stops when any of these fires, then drains and exits 0:
//! a client sends the shutdown op (`psh-client --shutdown`), stdin
//! reaches EOF (close the pipe that feeds it — the no-signal-crate
//! stand-in for SIGTERM), or `--max-seconds` elapses. On exit it prints
//! connection- and query-level statistics (the same `ServiceStats`
//! vocabulary as `psh-serve`).

use psh_bench::json::{has_flag, parse_flag};
use psh_bench::serving::{obtain_served_oracle, parse_max_seconds, parse_policy, ServedOracle};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::Report;
use psh_core::distance::DistanceOracle;
use psh_core::service::{CacheConfig, OracleService, ServiceConfig};
use psh_core::shard::ShardedReloader;
use psh_core::snapshot::{owned_base_graph, JournalReloader, ReloadReport};
use psh_net::server::env_addr;
use psh_net::{NetServer, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PROG: &str = "psh-server";

fn die(msg: impl std::fmt::Display) -> ! {
    psh_bench::serving::die(PROG, msg)
}

fn parse_u64_flag(name: &str, default: u64) -> u64 {
    match parse_flag(name) {
        None => default,
        Some(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| die(format_args!("bad {name} '{s}' (want a count)"))),
    }
}

/// One journal-watching face over both oracle shapes. Either way a poll
/// yields the wire-level [`ReloadReport`] (`None`: nothing new); the
/// sharded report is translated using the freshly swapped generation's
/// descriptor, so the wire sees the stitched n/m it is now serving.
enum Reloader {
    Mono(JournalReloader),
    Sharded(ShardedReloader),
}

impl Reloader {
    fn poll(&mut self, service: &OracleService) -> Result<Option<ReloadReport>, String> {
        match self {
            Reloader::Mono(rl) => rl.poll(service).map_err(|e| e.to_string()),
            Reloader::Sharded(rl) => {
                let polled = rl.poll(service).map_err(|e| e.to_string())?;
                Ok(polled.map(|r| {
                    let d = rl.current().descriptor();
                    ReloadReport {
                        epoch: r.epoch,
                        records: r.records,
                        ops: r.ops,
                        n: d.n as u64,
                        m: d.m as u64,
                    }
                }))
            }
        }
    }
}

fn main() {
    let seed: u64 = parse_flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20150625);
    let mut report = Report::from_args(PROG);

    // validate every knob before the (potentially long) preprocessing
    let addr = parse_flag("--addr").unwrap_or_else(env_addr);
    let max_seconds = parse_max_seconds(PROG);
    let policy = parse_policy(PROG);
    let max_batch: usize = parse_flag("--batch")
        .and_then(|s| s.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(256);
    let cache = parse_flag("--cache").map(|s| match s.trim().parse::<usize>() {
        Ok(capacity) if capacity > 0 => CacheConfig { capacity, seed },
        _ => die(format_args!(
            "bad --cache '{s}' (want a positive slot count)"
        )),
    });
    let config = ServerConfig {
        max_conns: parse_u64_flag("--max-conns", 64) as usize,
        max_conn_requests: parse_u64_flag("--max-conn-requests", u64::MAX),
        max_total_requests: parse_u64_flag("--max-requests", u64::MAX),
        read_timeout: Some(Duration::from_secs(parse_u64_flag("--timeout-secs", 30))),
        write_timeout: Some(Duration::from_secs(parse_u64_flag("--timeout-secs", 30))),
        seed,
    };

    let watch_journal = has_flag("--watch-journal");
    let snapshot_path = parse_flag("--snapshot");
    if watch_journal && snapshot_path.is_none() {
        die("--watch-journal needs --snapshot PATH (the journal lives at <snapshot>.journal)");
    }

    let (served, loaded, prep_s) = obtain_served_oracle(PROG, seed);
    let desc = served.descriptor();
    let (n, m) = (desc.n, desc.m);
    if n == 0 {
        die("the graph has no vertices to serve");
    }

    // The monolithic reloader wants an owned copy of the served graph
    // (hot-swap rebuilds mutate it); the sharded one derives its shard
    // graphs from the oracle it tracks.
    let reloader = watch_journal.then(|| {
        let base = snapshot_path.as_deref().expect("checked above");
        Arc::new(Mutex::new(match &served {
            ServedOracle::Monolithic { oracle, meta } => {
                Reloader::Mono(JournalReloader::new(base, owned_base_graph(oracle), *meta))
            }
            ServedOracle::Sharded { oracle, parts } => Reloader::Sharded(ShardedReloader::new(
                base,
                Arc::clone(oracle),
                parts.clone(),
            )),
        }))
    });

    let service = Arc::new(OracleService::from_arc(
        served.as_dyn(),
        ServiceConfig {
            policy,
            max_batch,
            cache,
        },
    ));
    let mut server = NetServer::bind(&addr, Arc::clone(&service), config)
        .unwrap_or_else(|e| die(format_args!("cannot bind {addr}: {e}")));
    if let Some(rl) = &reloader {
        // wire `psh-client --reload`: the hook shares the one reloader
        // (and its cursor) with the 25 ms poll below
        let rl = Arc::clone(rl);
        let svc = Arc::clone(&service);
        server.set_reload_hook(Box::new(move || rl.lock().unwrap().poll(&svc)));
    }
    let bound = server.local_addr();
    println!(
        "serving n={n} m={m} ({} shard{}) on {bound} | {policy} | batches of ≤{max_batch}",
        desc.shards,
        if desc.shards == 1 { "" } else { "s" }
    );

    if let Some(path) = parse_flag("--port-file") {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| die(format_args!("cannot write {path}: {e}")));
    }

    // Shutdown triggers. There is no signal crate in this workspace, so
    // SIGTERM cannot be caught directly; instead the watcher thread
    // treats stdin EOF as the stop request (supervisors close the pipe),
    // alongside the wire-side shutdown op and the --max-seconds cap.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::Builder::new()
            .name("psh-server-stdin".into())
            .spawn(move || {
                let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
                stdin_closed.store(true, Ordering::SeqCst);
            })
            .expect("spawn stdin watcher");
    }

    let start = Instant::now();
    let mut swaps: u64 = 0;
    let why = loop {
        if server.stopping() {
            break "wire shutdown request";
        }
        if stdin_closed.load(Ordering::SeqCst) {
            break "stdin closed";
        }
        if max_seconds.is_some_and(|cap| start.elapsed().as_secs_f64() >= cap) {
            break "--max-seconds elapsed";
        }
        if let Some(rl) = &reloader {
            match rl.lock().unwrap().poll(&service) {
                Ok(Some(r)) => {
                    swaps += 1;
                    println!(
                        "hot-swap: epoch {} now serving (applied {} journal records, {} ops; n={} m={})",
                        r.epoch, r.records, r.ops, r.n, r.m
                    );
                }
                Ok(None) => {}
                Err(e) => eprintln!(
                    "{PROG}: journal reload failed: {e} (still serving the previous epoch)"
                ),
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    println!("shutting down ({why})");
    let server_stats = server.shutdown();
    let stats = service.stats();

    println!("\n# psh-server — n={n} m={m} | served from {bound} | {policy}\n");
    let mut t = Table::new([
        "conns", "rejected", "queries", "batches", "largest", "qps", "p50 (ms)", "p99 (ms)",
    ]);
    t.row([
        fmt_u(server_stats.conns_accepted),
        fmt_u(server_stats.conns_rejected),
        fmt_u(stats.served),
        fmt_u(stats.batches),
        fmt_u(stats.largest_batch as u64),
        fmt_f(stats.qps),
        fmt_f(stats.p50_ms),
        fmt_f(stats.p99_ms),
    ]);
    t.print();
    println!(
        "\nframes in/out: {}/{} | query cost: {} | preprocessing: {} ({}) {:.3}s",
        server_stats.frames_in,
        server_stats.frames_out,
        stats.total_cost,
        if loaded {
            "loaded from snapshot"
        } else {
            "built fresh"
        },
        served.seed(),
        prep_s,
    );

    report
        .meta("n", n)
        .meta("m", m)
        .meta("shards", desc.shards)
        .meta("addr", bound.to_string())
        .meta("stop_reason", why)
        .meta("policy", policy.to_string())
        .meta("loaded_snapshot", loaded)
        .meta("seed", served.seed().0)
        .meta("preprocess_s", prep_s)
        .meta("conns_accepted", server_stats.conns_accepted)
        .meta("conns_rejected", server_stats.conns_rejected)
        .meta("conns_timed_out", server_stats.conns_timed_out)
        .meta("epoch", service.epoch())
        .meta("hot_swaps", swaps)
        .meta("queries_served", server_stats.queries_served)
        .meta("queries_rejected", server_stats.queries_rejected)
        .meta("frames_in", server_stats.frames_in)
        .meta("frames_out", server_stats.frames_out)
        .meta("qps", stats.qps)
        .meta("p50_ms", stats.p50_ms)
        .meta("p99_ms", stats.p99_ms);
    report.push_table("server", &t);
    report.finish();
}
