//! E4 — **Theorem 1.2 / Corollaries 4.5 & 5.4**: end-to-end approximate
//! shortest paths.
//!
//! Preprocess once (hopset), then answer s–t queries with the h-hop
//! Bellman–Ford. We compare query work and depth against exact engines
//! (BFS levels / Dijkstra) and report the observed approximation factor.
//!
//! Usage: `cargo run --release -p psh-bench --bin sssp_endtoend [--json PATH]`

use psh_bench::stats::Summary;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{OracleBuilder, OracleMode, Seed};
use psh_core::hopset::HopsetParams;
use psh_graph::traversal::bfs::parallel_bfs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed = 20150625u64;
    let n = 4_000usize;
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let queries = 30;
    let mut report = Report::from_args("sssp_endtoend");
    report
        .meta("n", n)
        .meta("seed", seed)
        .meta("queries", queries as u64)
        .meta("epsilon", params.epsilon);

    println!("# Theorem 1.2 — end-to-end approximate SSSP\n");
    println!("## Unweighted (Corollary 4.5)\n");
    let mut t = Table::new([
        "family",
        "preproc work",
        "preproc depth",
        "hopset size",
        "query work (mean)",
        "query depth (mean)",
        "exact BFS depth",
        "max approx factor",
    ]);
    for family in [Family::PathGraph, Family::Grid, Family::Random] {
        let g = family.instantiate(n, seed);
        let (oracle, pre) = OracleBuilder::new()
            .params(params)
            .mode(OracleMode::Unweighted)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .into_parts();
        let (_, bfs_cost) = parallel_bfs(&g, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qwork = Vec::new();
        let mut qdepth = Vec::new();
        let mut factor: f64 = 1.0;
        for _ in 0..queries {
            let s = rng.random_range(0..g.n() as u32);
            let tt = rng.random_range(0..g.n() as u32);
            let (r, qc) = oracle.query(s, tt);
            qwork.push(qc.work as f64);
            qdepth.push(qc.depth as f64);
            let exact = oracle.query_exact(s, tt);
            if exact > 0 && exact != psh_graph::INF {
                factor = factor.max(r.distance / exact as f64);
            }
        }
        t.row([
            family.name().to_string(),
            fmt_u(pre.work),
            fmt_u(pre.depth),
            fmt_u(oracle.hopset_size() as u64),
            fmt_f(Summary::of(&qwork).mean),
            fmt_f(Summary::of(&qdepth).mean),
            fmt_u(bfs_cost.depth),
            fmt_f(factor),
        ]);
    }
    t.print();
    report.push_table("unweighted", &t);

    println!("\n## Weighted (Corollary 5.4)\n");
    let mut t = Table::new([
        "family",
        "U",
        "preproc work",
        "bands",
        "hopset size",
        "query depth (mean)",
        "max approx factor",
    ]);
    for family in [Family::Grid, Family::Random] {
        let g = family.instantiate_weighted(1_000, 256.0, seed);
        let (oracle, pre) = OracleBuilder::new()
            .params(params)
            .eta(0.4)
            .mode(OracleMode::Weighted)
            .allow_large_weights(true)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .into_parts();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qdepth = Vec::new();
        let mut factor: f64 = 1.0;
        for _ in 0..queries {
            let s = rng.random_range(0..g.n() as u32);
            let tt = rng.random_range(0..g.n() as u32);
            let (r, qc) = oracle.query(s, tt);
            qdepth.push(qc.depth as f64);
            let exact = oracle.query_exact(s, tt);
            if exact > 0 && exact != psh_graph::INF {
                factor = factor.max(r.distance / exact as f64);
            }
        }
        t.row([
            family.name().to_string(),
            "2^8".into(),
            fmt_u(pre.work),
            "-".into(),
            fmt_u(oracle.hopset_size() as u64),
            fmt_f(Summary::of(&qdepth).mean),
            fmt_f(factor),
        ]);
    }
    t.print();
    report.push_table("weighted", &t);
    report.finish();
    println!("\nexpect: query depth ≪ exact BFS depth on high-diameter families; factor ≤ 1+ε'.");
}
