//! E17 — the execution layer: wall-clock scaling of the frontier engine.
//!
//! Runs the same seeded constructions under `ExecutionPolicy::Sequential`
//! and `Parallel { threads }` for a sweep of thread counts, and reports
//! wall-clock, speedup, and — the contract of `psh-exec` — that every
//! policy produced a **byte-identical artifact** with the identical
//! work/depth cost. Speedups are hardware-dependent (on a single-core
//! container every policy degenerates to ≈ 1×); determinism is not, and
//! this binary exits non-zero if any policy disagrees with sequential.
//!
//! Workloads: ESTC clustering on a generated graph with `n ≥ 100k`
//! (Algorithm 1 — the acceptance workload), multi-source BFS, and Dial
//! SSSP on the same graph.
//!
//! Usage: `cargo run --release -p psh-bench --bin parallel_scaling \
//!             [--n N] [--threads 2,4,8] [--json PATH]`

use psh_bench::json::{parse_flag, JsonValue};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::Report;
use psh_cluster::{ClusterBuilder, Clustering, Seed};
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::traversal::bfs::parallel_bfs_with;
use psh_graph::traversal::dial::dial_sssp_with;
use psh_graph::{generators, CsrGraph};
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn cluster_run(g: &CsrGraph, policy: ExecutionPolicy) -> Clustering {
    ClusterBuilder::new(0.3)
        .seed(Seed(20150625))
        .execution(policy)
        .build(g)
        .unwrap()
        .artifact
}

fn main() {
    let n: usize = parse_flag("--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let threads: Vec<usize> = parse_flag("--threads")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4]);
    let mut report = Report::from_args("parallel_scaling");

    let mut rng = Seed(20150625).rng();
    let g = generators::connected_random(n, 4 * n, &mut rng);
    report
        .meta("n", g.n())
        .meta("m", g.m())
        .meta("beta", 0.3)
        .meta(
            "swept_threads",
            JsonValue::Array(threads.iter().map(|&k| JsonValue::U64(k as u64)).collect()),
        );
    println!(
        "# psh-exec scaling — seq vs parallel on n={} m={}\n",
        g.n(),
        g.m()
    );

    let mut mismatches = 0usize;

    // --- ESTC clustering (the acceptance workload) ----------------------
    let (seq_cluster, seq_t) = time(|| cluster_run(&g, ExecutionPolicy::Sequential));
    let mut t = Table::new(["policy", "wall-clock (s)", "speedup", "identical artifact"]);
    t.row([
        "sequential".to_string(),
        fmt_f(seq_t),
        "1.00".into(),
        "—".into(),
    ]);
    for &k in &threads {
        let policy = ExecutionPolicy::Parallel { threads: k };
        let (c, par_t) = time(|| cluster_run(&g, policy));
        let same = c == seq_cluster;
        mismatches += usize::from(!same);
        t.row([
            policy.to_string(),
            fmt_f(par_t),
            fmt_f(seq_t / par_t),
            if same { "yes".into() } else { "NO".to_string() },
        ]);
    }
    println!("## shifted_cluster (β = 0.3)\n");
    t.print();
    report.push_table("cluster", &t);

    // --- BFS + Dial on the frontier engine ------------------------------
    for (name, runner) in [
        (
            "parallel_bfs",
            Box::new(|exec: &Executor| parallel_bfs_with(exec, &g, 0).0)
                as Box<dyn Fn(&Executor) -> psh_graph::traversal::SsspResult>,
        ),
        (
            "dial_sssp",
            Box::new(|exec: &Executor| dial_sssp_with(exec, &g, 0).0),
        ),
    ] {
        let (seq_r, seq_t) = time(|| runner(&Executor::sequential()));
        let mut t = Table::new(["policy", "wall-clock (s)", "speedup", "identical artifact"]);
        t.row([
            "sequential".to_string(),
            fmt_f(seq_t),
            "1.00".into(),
            "—".into(),
        ]);
        for &k in &threads {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads: k });
            let (r, par_t) = time(|| runner(&exec));
            let same = r == seq_r;
            mismatches += usize::from(!same);
            t.row([
                format!("parallel({k})"),
                fmt_f(par_t),
                fmt_f(seq_t / par_t),
                if same { "yes".into() } else { "NO".to_string() },
            ]);
        }
        println!("\n## {name}\n");
        t.print();
        report.push_table(name, &t);
    }

    println!(
        "\nclusters: {} | artifact mismatches: {mismatches}",
        fmt_u(seq_cluster.num_clusters as u64)
    );
    report.meta("mismatches", mismatches);
    report.finish();
    if mismatches > 0 {
        eprintln!("FAIL: some policy produced a different artifact");
        std::process::exit(1);
    }
    println!("all policies byte-identical ✓ (speedup is hardware-dependent)");
}
