//! E12 — **§5 + Lemma 5.2**: weighted hopsets through rounding.
//!
//! Checks (a) the rounding distortion is ≤ 1+ζ per band, (b) the
//! multi-band oracle's answers sandwich the exact distances, and (c) the
//! query depth (Bellman–Ford rounds) stays near the hop bound rather than
//! the distance.
//!
//! Usage: `cargo run --release -p psh-bench --bin weighted_hopsets [--json PATH]`

use psh_bench::stats::Summary;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::HopsetParams;
use psh_graph::traversal::dijkstra::dijkstra;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed = 20150625u64;
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let mut report = Report::from_args("weighted_hopsets");
    report
        .meta("seed", seed)
        .meta("eta", 0.4)
        .meta("epsilon", params.epsilon);
    println!("# §5 — weighted hopsets via rounding + distance bands\n");
    let mut t = Table::new([
        "family",
        "U",
        "bands",
        "total hopset size",
        "mean err",
        "max err",
        "undershoots",
    ]);
    for family in [Family::Grid, Family::Random] {
        for u in [16.0f64, 256.0, 4096.0] {
            let g = family.instantiate_weighted(900, u, seed);
            let wh = HopsetBuilder::weighted(0.4)
                .params(params)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .artifact
                .as_banded()
                .expect("weighted kind yields a banded artifact")
                .clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut errs = Vec::new();
            let mut undershoots = 0usize;
            for _ in 0..5 {
                let s = rng.random_range(0..g.n() as u32);
                let exact = dijkstra(&g, s);
                for _ in 0..20 {
                    let tt = rng.random_range(0..g.n() as u32);
                    let ex = exact.dist[tt as usize];
                    if ex == 0 || ex == psh_graph::INF {
                        continue;
                    }
                    let (approx, _) = wh.query(s, tt);
                    if approx < ex as f64 - 1e-6 {
                        undershoots += 1;
                    }
                    errs.push(approx / ex as f64 - 1.0);
                }
            }
            let s = Summary::of(&errs);
            t.row([
                family.name().to_string(),
                format!("2^{}", u.log2() as u32),
                wh.num_bands().to_string(),
                fmt_u(wh.total_size() as u64),
                fmt_f(s.mean),
                fmt_f(s.max),
                undershoots.to_string(),
            ]);
        }
    }
    t.print();
    report.push_table("weighted_bands", &t);
    report.finish();
    println!("\nexpect: zero undershoots (soundness) and max err within the ε' budget.");
}
