//! `bench-compare` — the perf-diff gate: fail when a fresh benchsuite
//! run regresses against a committed baseline beyond the noise band.
//!
//! Usage:
//! ```text
//! bench-compare BASELINE.json FRESH.json
//!               [--noise F]       # noise band, default 0.25
//!               [--severe F]      # per-cell hard limit, default 0.60
//!               [--systemic F]    # per-table violation rate, default 0.20
//!               [--materiality F] # time-cell absolute floor (s), default 0.025
//! ```
//!
//! Both files are [`psh_bench::Report`] envelopes (e.g. `BENCH_8.json`
//! from `benchsuite`). For every table present in **both** documents,
//! rows are joined on their key cells (every column that isn't a
//! recognized metric) and each metric is compared:
//!
//! * columns named `qps`/`*speedup*` are **higher-is-better** — a drop
//!   below `baseline × (1 − noise)` is beyond the band;
//! * columns ending in `(s)` or `(ms)` are **lower-is-better** — a rise
//!   above `baseline × (1 + noise)` is beyond the band;
//! * every other column is part of the join key.
//!
//! ## What actually fails the gate
//!
//! A single benchmark run has heavy-tailed noise: on a busy machine the
//! p999 of a one-query batch swings 10× between back-to-back runs of the
//! *same binary*, and a ratio of two sub-millisecond timings is noise
//! squared. Gating "any cell beyond ±25%" would make the gate red on
//! every run. So cells are split into two classes:
//!
//! * **informational** — tail percentiles (`p99`, `p999`), ratio
//!   columns (`*speedup*`), and `qps rebuild` (its sampling window is
//!   the rebuild duration itself, which legitimately shrinks when
//!   builds speed up). Reported when beyond the band, never fatal.
//! * **gated** — everything else (`qps`, `p50`, absolute timings).
//!   Beyond the band they count as violations; the gate fails when a
//!   violation is **severe** (a single cell worse than the `--severe`
//!   limit — a broken code path, not jitter) or **systemic** (more than
//!   `--systemic` of a table's gated cells regress, and at least 3 — a
//!   real slowdown shifts a whole table, noise flips isolated cells).
//!
//! Tables or rows present on only one side are reported but not fatal
//! (the matrix is allowed to grow): the table-set difference is printed
//! up front as explicit `added`/`removed` lists, so a table that
//! silently fell out of the fresh run is visible rather than
//! indistinguishable from a passing one. A `meta` workload mismatch (`n`,
//! `queries`, `seed`, or `schema_version` differing) **is** fatal, since
//! numbers from different workloads cannot be meaningfully compared.
//! Tiny absolute values (both sides < 1 ms / < 1 qps) are skipped — at
//! that scale the timer, not the code, dominates. Gated **time** cells
//! additionally pass through a materiality floor: a relative band on a
//! one-shot millisecond timing turns scheduler jitter into false alarms
//! (a swap pause wobbling 0.5 ms → 2 ms is "+300%" of nothing), so a
//! time cell only counts as a violation when its absolute delta exceeds
//! `--materiality` seconds (default 25 ms); below that it is reported
//! as a note. A genuinely broken path (10 ms → 500 ms) clears the floor.
//!
//! Exit status: 0 when the gate passes, 1 on severe/systemic regression
//! or workload mismatch, 2 on unusable input.

use psh_bench::json::{parse_flag, JsonValue};

const PROG: &str = "bench-compare";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("{PROG}: {msg}");
    std::process::exit(2);
}

/// Which way a column must move to count as an improvement.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// Classify a column header: a metric with a direction, or a join key.
fn direction(column: &str) -> Option<Direction> {
    let c = column.to_ascii_lowercase();
    if c.contains("qps") || c.contains("speedup") {
        Some(Direction::HigherIsBetter)
    } else if c.ends_with("(s)") || c.ends_with("(ms)") {
        Some(Direction::LowerIsBetter)
    } else {
        None
    }
}

/// True when a metric participates in the pass/fail decision. Tail
/// percentiles and measurement ratios are reported but never gate: their
/// single-run variance is larger than any band worth alerting on.
fn gates(column: &str) -> bool {
    let c = column.to_ascii_lowercase();
    // `qps rebuild` counts queries completed inside the rebuild window,
    // and that window is itself a measured quantity: when builds get
    // faster the window shrinks below one batch completion and the cell
    // honestly reads 0. A shrinking denominator is not an independent
    // regression signal, so the cell is informational; `rebuild (s)`
    // and `swap (ms)` stay gated.
    !(c.contains("p99") || c.contains("speedup") || c == "qps rebuild")
}

/// Parse a table cell as a number (the writer's `fmt_u` inserts
/// thousands separators; strip them).
fn cell_number(cell: &JsonValue) -> Option<f64> {
    let s = cell.as_str()?;
    s.replace(',', "").trim().parse::<f64>().ok()
}

/// A table row decomposed into its join key and its metric values.
struct Row<'a> {
    key: String,
    metrics: Vec<(&'a str, Direction, f64)>,
}

fn decompose(row: &JsonValue) -> Option<Row<'_>> {
    let JsonValue::Object(fields) = row else {
        return None;
    };
    let mut key = String::new();
    let mut metrics = Vec::new();
    for (column, cell) in fields {
        match (direction(column), cell_number(cell)) {
            (Some(dir), Some(v)) => metrics.push((column.as_str(), dir, v)),
            _ => {
                // a key cell: its column name disambiguates rows even if
                // two key columns hold the same text
                key.push_str(column);
                key.push('=');
                key.push_str(cell.as_str().unwrap_or("?"));
                key.push('|');
            }
        }
    }
    Some(Row { key, metrics })
}

/// Load one report document and return its (meta, tables) objects.
fn load(path: &str) -> (JsonValue, Vec<(String, JsonValue)>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
    let doc = JsonValue::parse(&text)
        .unwrap_or_else(|e| die(format_args!("{path} is not valid JSON: {e}")));
    let meta = doc
        .get("meta")
        .cloned()
        .unwrap_or(JsonValue::Object(Vec::new()));
    let tables = match doc.get("tables") {
        Some(JsonValue::Object(tables)) => tables.clone(),
        _ => die(format_args!("{path} has no tables object")),
    };
    (meta, tables)
}

fn parse_fraction(flag: &str, default: f64) -> f64 {
    match parse_flag(flag) {
        None => default,
        Some(s) => match s.trim().parse::<f64>() {
            Ok(v) if v > 0.0 => v,
            _ => die(format_args!("bad {flag} '{s}' (want a fraction > 0)")),
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        die(
            "usage: bench-compare BASELINE.json FRESH.json [--noise F] [--severe F] [--systemic F]",
        );
    };
    let noise = parse_fraction("--noise", 0.25);
    let severe = parse_fraction("--severe", 0.60);
    let systemic = parse_fraction("--systemic", 0.20);
    let materiality = parse_fraction("--materiality", 0.025);
    if severe < noise {
        die(format_args!(
            "--severe ({severe}) must be at least --noise ({noise})"
        ));
    }

    let (base_meta, base_tables) = load(baseline_path);
    let (fresh_meta, fresh_tables) = load(fresh_path);

    // Workload compatibility: same n/queries/seed/schema, or the
    // comparison is meaningless. Keys absent on either side are skipped
    // so older baselines without newer meta keys stay comparable.
    let mut failures = 0usize;
    for knob in ["schema_version", "n", "queries", "seed", "quick"] {
        if let (Some(b), Some(f)) = (base_meta.get(knob), fresh_meta.get(knob)) {
            if b != f {
                eprintln!(
                    "workload mismatch: meta.{knob} is {} in {baseline_path} but {} in {fresh_path}",
                    b.to_json(),
                    f.to_json()
                );
                failures += 1;
            }
        }
    }

    // The table sets are allowed to disagree (the matrix grows over
    // time, and a quick run may drop tables), but the disagreement must
    // be explicit in the output — a silently ungated table looks
    // exactly like a gated-and-passing one.
    let added: Vec<&str> = fresh_tables
        .iter()
        .filter(|(n, _)| !base_tables.iter().any(|(b, _)| b == n))
        .map(|(n, _)| n.as_str())
        .collect();
    let removed: Vec<&str> = base_tables
        .iter()
        .filter(|(n, _)| !fresh_tables.iter().any(|(f, _)| f == n))
        .map(|(n, _)| n.as_str())
        .collect();
    if !added.is_empty() {
        println!(
            "~ {} table(s) only in {fresh_path} (added, not gated): {}",
            added.len(),
            added.join(", ")
        );
    }
    if !removed.is_empty() {
        println!(
            "~ {} table(s) only in {baseline_path} (removed, not gated): {}",
            removed.len(),
            removed.join(", ")
        );
    }

    let mut compared = 0usize;
    let mut skipped_tiny = 0usize;
    let mut notes = 0usize;
    let mut soft = 0usize;
    for (name, base_rows) in &base_tables {
        let Some(fresh_rows) = fresh_tables
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_array())
        else {
            continue;
        };
        let Some(base_rows) = base_rows.as_array() else {
            continue;
        };
        let fresh_by_key: Vec<Row<'_>> = fresh_rows.iter().filter_map(decompose).collect();
        let mut gated_cells = 0usize;
        let mut violations = 0usize;
        for base_row in base_rows.iter().filter_map(decompose) {
            let Some(fresh_row) = fresh_by_key.iter().find(|r| r.key == base_row.key) else {
                println!(
                    "~ {name}: row [{}] absent from {fresh_path}: skipped",
                    base_row.key
                );
                continue;
            };
            for &(column, dir, base) in &base_row.metrics {
                let Some(&(_, _, fresh)) = fresh_row
                    .metrics
                    .iter()
                    .find(|(c, d, _)| *c == column && *d == dir)
                else {
                    continue;
                };
                // below the timer floor both numbers are noise
                let floor = if column.ends_with("(s)") { 0.001 } else { 1.0 };
                if base.abs() < floor && fresh.abs() < floor {
                    skipped_tiny += 1;
                    continue;
                }
                compared += 1;
                let beyond = |band: f64| match dir {
                    Direction::HigherIsBetter => fresh < base * (1.0 - band),
                    Direction::LowerIsBetter => fresh > base * (1.0 + band),
                };
                if !gates(column) {
                    if beyond(noise) {
                        notes += 1;
                        println!(
                            "~ note {name} [{}] {column}: {base:.4} -> {fresh:.4} ({:+.1}%; informational, not gated)",
                            base_row.key,
                            (fresh / base - 1.0) * 100.0,
                        );
                    }
                    continue;
                }
                gated_cells += 1;
                // Materiality floor for time cells: a relative band on a
                // one-shot millisecond timing amplifies scheduler jitter
                // into false alarms (a swap pause wobbling 0.5ms -> 2ms is
                // +300% of nothing). A time cell only regresses when the
                // absolute delta is large enough to matter; a genuinely
                // broken path (10ms -> 500ms) clears any sane floor.
                let seconds = if column.ends_with("(ms)") {
                    Some((fresh - base) / 1000.0)
                } else if column.ends_with("(s)") {
                    Some(fresh - base)
                } else {
                    None
                };
                if let Some(delta) = seconds {
                    if delta.abs() < materiality {
                        if beyond(noise) {
                            notes += 1;
                            println!(
                                "~ note {name} [{}] {column}: {base:.4} -> {fresh:.4} ({:+.1}%; below the {:.0}ms materiality floor, not gated)",
                                base_row.key,
                                (fresh / base - 1.0) * 100.0,
                                materiality * 1000.0,
                            );
                        }
                        continue;
                    }
                }
                if beyond(severe) {
                    failures += 1;
                    eprintln!(
                        "SEVERE {name} [{}] {column}: {base:.4} -> {fresh:.4} ({:+.1}%, hard limit ±{:.0}%)",
                        base_row.key,
                        (fresh / base - 1.0) * 100.0,
                        severe * 100.0,
                    );
                } else if beyond(noise) {
                    violations += 1;
                    eprintln!(
                        "REGRESSION {name} [{}] {column}: {base:.4} -> {fresh:.4} ({:+.1}%, noise band ±{:.0}%)",
                        base_row.key,
                        (fresh / base - 1.0) * 100.0,
                        noise * 100.0,
                    );
                }
            }
        }
        // a real slowdown shifts a whole table; isolated flips are noise
        if violations >= 3 && (violations as f64) > systemic * gated_cells as f64 {
            failures += 1;
            eprintln!(
                "SYSTEMIC {name}: {violations}/{gated_cells} gated cell(s) beyond the ±{:.0}% band (limit {:.0}%)",
                noise * 100.0,
                systemic * 100.0,
            );
        } else {
            soft += violations;
        }
    }

    println!(
        "compared {compared} metric cell(s) across {} shared table(s) (noise ±{:.0}%, severe ±{:.0}%, systemic {:.0}%; {} added, {} removed; {skipped_tiny} below the timer floor, {notes} informational note(s), {soft} isolated outlier(s))",
        base_tables.len() - removed.len(),
        noise * 100.0,
        severe * 100.0,
        systemic * 100.0,
        added.len(),
        removed.len(),
    );
    if failures > 0 {
        eprintln!("FAIL: {failures} severe/systemic regression(s) or mismatch(es)");
        std::process::exit(1);
    }
    println!("OK: no severe or systemic regression");
}
