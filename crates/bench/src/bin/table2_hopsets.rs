//! E3 — regenerate **Figure 2**: hopset construction comparison.
//!
//! Rows: no hopset (baseline), sampled-clique [KS97/SS99], sampled
//! hierarchy (Cohen proxy — substitution documented in
//! `psh_baselines::sampled_hierarchy`), and
//! Algorithm 4 (new). Columns: hopset size, construction work and depth
//! (cost model), and — the object of the exercise — the number of
//! Bellman–Ford rounds needed for random s–t pairs to come within the
//! target accuracy of their true distance.
//!
//! Expected shape: sampled-clique ≈ √n-ish hops & exact; hierarchy —
//! polylog-ish hops at superlinear size; Algorithm 4 — few hops, O(n)
//! size, near-linear work; "none" — hops equal to the path hop length.
//!
//! Usage: `cargo run --release -p psh-bench --bin table2_hopsets [--json PATH]`

use psh_baselines::ks_hopset::sampled_clique_hopset;
use psh_baselines::sampled_hierarchy::{sampled_hierarchy_hopset, HierarchyConfig};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::{Hopset, HopsetParams};
use psh_graph::traversal::bellman_ford::{hop_limited_sssp, ExtraEdges};
use psh_graph::traversal::dijkstra::dijkstra;
use psh_graph::CsrGraph;
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The empirical `h` of Definition 2.4: the smallest hop budget (up to a
/// factor 2, via doubling) at which `dist^h(s, t) ≤ (1+eps)·dist(s, t)`,
/// maximized over reachable targets and a few sources. Also returns the
/// worst relative error remaining at the full budget `h = n`.
fn hops_to_accuracy(g: &CsrGraph, extra: Option<&ExtraEdges>, eps: f64, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    let mut worst_h: u64 = 0;
    let mut worst_err: f64 = 0.0;
    for _ in 0..4 {
        let s = rng.random_range(0..n as u32);
        let exact = dijkstra(g, s);
        // dist^h for h = 1, 2, 4, … n; per target take the first accurate h
        let mut budgets: Vec<usize> = Vec::new();
        let mut h = 1usize;
        while h < n {
            budgets.push(h);
            h *= 2;
        }
        budgets.push(n);
        let runs: Vec<_> = budgets
            .iter()
            .map(|&h| hop_limited_sssp(g, extra, &[s], h).0)
            .collect();
        for t in 0..n {
            let ex = exact.dist[t];
            if ex == 0 || ex == psh_graph::INF {
                continue;
            }
            let final_err = runs.last().unwrap().dist[t] as f64 / ex as f64 - 1.0;
            worst_err = worst_err.max(final_err);
            for (&h, q) in budgets.iter().zip(&runs) {
                if (q.dist[t] as f64) <= (1.0 + eps) * ex as f64 {
                    worst_h = worst_h.max(h as u64);
                    break;
                }
            }
        }
    }
    (worst_h as f64, worst_err)
}

fn row_for(
    t: &mut Table,
    family: &str,
    alg: &str,
    g: &CsrGraph,
    hopset: &Hopset,
    cost: Cost,
    eps: f64,
) {
    let extra = hopset.to_extra_edges();
    let use_extra = (!extra.is_empty()).then_some(&extra);
    let (hops, err) = hops_to_accuracy(g, use_extra, eps, 99);
    t.row([
        family.to_string(),
        alg.into(),
        fmt_u(hopset.size() as u64),
        fmt_u(cost.work),
        fmt_u(cost.depth),
        fmt_f(hops),
        fmt_f(err),
    ]);
}

fn main() {
    let n = 2_000usize;
    let seed: u64 = 20150625;
    let eps = 0.25;
    let mut report = Report::from_args("table2_hopsets");
    report.meta("n", n).meta("seed", seed).meta("eps", eps);
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    println!("# Figure 2 reproduction — hopset constructions\n");
    println!("paper rows: [KS97,SS99] O(n^0.5) hops / O(n) size / O(m n^0.5) work, exact");
    println!("            [Coh00]     polylog hops / n^(1+α) polylog size / Õ(m n^α) work");
    println!(
        "            new         O(n^((4+α)/(4+2α))) hops / O(n) size / O(m log^(3+α) n) work\n"
    );
    println!("measured: hops = smallest (doubled) budget h with dist^h ≤ (1+{eps})·dist, worst over pairs\n");

    let mut t = Table::new([
        "family",
        "algorithm",
        "size",
        "work",
        "depth",
        "hops",
        "worst err",
    ]);
    for family in [Family::PathGraph, Family::Grid, Family::Random] {
        let g = family.instantiate(n, seed);
        row_for(
            &mut t,
            family.name(),
            "none",
            &g,
            &Hopset::empty(g.n()),
            Cost::ZERO,
            eps,
        );
        let (ks, c) = sampled_clique_hopset(&g, &mut StdRng::seed_from_u64(seed));
        row_for(
            &mut t,
            family.name(),
            "sampled-clique [KS97]",
            &g,
            &ks,
            c,
            eps,
        );
        let (sh, c) = sampled_hierarchy_hopset(
            &g,
            &HierarchyConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        );
        row_for(
            &mut t,
            family.name(),
            "sampled-hier [Coh00*]",
            &g,
            &sh,
            c,
            eps,
        );
        let (ours, c) = {
            let run = HopsetBuilder::unweighted()
                .params(params)
                .seed(Seed(seed))
                .build(&g)
                .unwrap();
            let cost = run.cost;
            (run.artifact.into_single(), cost)
        };
        row_for(
            &mut t,
            family.name(),
            "estc recursive (new)",
            &g,
            &ours,
            c,
            eps,
        );
    }
    t.print();
    report.push_table("hopset_comparison", &t);
    report.finish();
    println!("\n[Coh00*]: sampled-hierarchy proxy, see psh_baselines::sampled_hierarchy.");
}
