//! E18 — batch query serving: throughput scaling and the serving
//! determinism contract.
//!
//! Builds an oracle once, then answers the same query workload four ways
//! — one-at-a-time sequential (the reference), `query_batch` under
//! `Sequential` and `Parallel { 2, 4, 8 }`, and `query_batch` on an
//! oracle that went through a **snapshot save→load round trip** — and
//! verifies every path returns byte-identical answers *and* identical
//! work/depth `Cost`. Speedups are hardware-dependent; determinism is
//! not, and this binary **exits non-zero on any mismatch** (the
//! acceptance check for the serving subsystem).
//!
//! Usage: `cargo run --release -p psh-bench --bin query_throughput \
//!             [--n N] [--queries Q] [--threads 2,4,8] [--weights U]
//!             [--seed S] [--json PATH]`

use psh_bench::json::{parse_flag, JsonValue};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::{random_pairs, Family};
use psh_bench::Report;
use psh_core::api::{OracleBuilder, Seed};
use psh_core::oracle::QueryResult;
use psh_core::snapshot::{read_oracle, write_oracle, OracleMeta};
use psh_core::HopsetParams;
use psh_exec::ExecutionPolicy;
use psh_pram::Cost;
use std::time::Instant;

fn main() {
    let n: usize = parse_flag("--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    let q: usize = parse_flag("--queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    // strict parse: a typo must not silently shrink the determinism sweep
    let threads: Vec<usize> = match parse_flag("--threads") {
        None => vec![2, 4, 8],
        Some(s) => {
            let parsed: Result<Vec<usize>, _> =
                s.split(',').map(|t| t.trim().parse::<usize>()).collect();
            match parsed {
                Ok(list) if !list.is_empty() => list,
                _ => {
                    eprintln!("query_throughput: bad --threads list '{s}' (want e.g. 2,4,8)");
                    std::process::exit(1);
                }
            }
        }
    };
    let seed: u64 = parse_flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20150625);
    let mut report = Report::from_args("query_throughput");

    let g = match parse_flag("--weights").and_then(|s| s.parse::<f64>().ok()) {
        Some(u) => Family::Random.instantiate_weighted(n, u, seed),
        None => Family::Random.instantiate(n, seed),
    };
    let params = HopsetParams::default();
    let run = OracleBuilder::new()
        .params(params)
        .seed(Seed(seed))
        .build(&g)
        .unwrap_or_else(|e| {
            eprintln!("query_throughput: preprocessing failed: {e}");
            std::process::exit(1);
        });
    let oracle = &run.artifact;
    let pairs = random_pairs(g.n(), q, seed ^ 0xBA7C4);

    // --- the reference: one-at-a-time sequential queries -----------------
    let start = Instant::now();
    let singles: Vec<(QueryResult, Cost)> =
        pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    let ref_t = start.elapsed().as_secs_f64();
    let ref_cost = Cost::par_all(singles.iter().map(|(_, c)| *c));
    let reference: Vec<QueryResult> = singles.into_iter().map(|(r, _)| r).collect();

    // --- snapshot round trip ---------------------------------------------
    let meta = OracleMeta::of_run(&run, params);
    let mut buf = Vec::new();
    write_oracle(&mut buf, oracle, &meta).expect("in-memory snapshot write");
    let (served, served_meta) = read_oracle(buf.as_slice()).unwrap_or_else(|e| {
        eprintln!("query_throughput: snapshot reload failed: {e}");
        std::process::exit(1);
    });
    let mut mismatches = 0usize;
    if served_meta != meta {
        eprintln!("MISMATCH: snapshot meta changed across the round trip");
        mismatches += 1;
    }
    let mut rebuf = Vec::new();
    write_oracle(&mut rebuf, &served, &served_meta).expect("in-memory snapshot rewrite");
    if rebuf != buf {
        eprintln!("MISMATCH: re-saving the loaded snapshot changed its bytes");
        mismatches += 1;
    }

    println!(
        "# batch query serving — n={} m={} | {} queries | snapshot {} bytes\n",
        g.n(),
        g.m(),
        pairs.len(),
        fmt_u(buf.len() as u64)
    );
    let mut t = Table::new([
        "path",
        "policy",
        "wall-clock (s)",
        "qps",
        "speedup",
        "identical answers+cost",
    ]);
    t.row([
        "query loop".to_string(),
        "sequential".into(),
        fmt_f(ref_t),
        fmt_f(pairs.len() as f64 / ref_t.max(1e-12)),
        "1.00".into(),
        "— (reference)".into(),
    ]);

    let mut policies = vec![ExecutionPolicy::Sequential];
    policies.extend(
        threads
            .iter()
            .map(|&k| ExecutionPolicy::Parallel { threads: k }),
    );
    for (label, which) in [("fresh build", false), ("snapshot load", true)] {
        let o = if which { &served } else { oracle };
        for &policy in &policies {
            let start = Instant::now();
            let (answers, cost) = o.query_batch(&pairs, policy);
            let secs = start.elapsed().as_secs_f64();
            let same = answers == reference && cost == ref_cost;
            mismatches += usize::from(!same);
            t.row([
                label.to_string(),
                policy.to_string(),
                fmt_f(secs),
                fmt_f(pairs.len() as f64 / secs.max(1e-12)),
                fmt_f(ref_t / secs.max(1e-12)),
                if same { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    t.print();
    report
        .meta("n", g.n())
        .meta("m", g.m())
        .meta("queries", pairs.len())
        .meta("seed", seed)
        .meta("snapshot_bytes", buf.len())
        .meta("mismatches", mismatches)
        .meta(
            "swept_threads",
            JsonValue::Array(threads.iter().map(|&k| JsonValue::U64(k as u64)).collect()),
        );
    report.push_table("throughput", &t);
    report.finish();

    if mismatches > 0 {
        eprintln!("\nFAIL: {mismatches} serving path(s) disagreed with the sequential reference");
        std::process::exit(1);
    }
    println!("\nall serving paths byte-identical ✓ (speedup is hardware-dependent)");
}
