//! `psh-client` — query a `psh-server` over TCP.
//!
//! The command-line face of `psh_net::NetClient`. One binary covers the
//! whole client lifecycle: one-shot queries, workload replay (batch
//! round-trips or one streamed subscription), cross-checking the wire
//! against a locally built oracle, and asking the server for its stats
//! or a graceful shutdown.
//!
//! Usage (modes, first match wins):
//! ```text
//! psh-client --shutdown            # stop the server; print its final stats
//! psh-client --stats               # print the server's serving statistics
//! psh-client --info                # print the served graph's shape
//! psh-client --reload              # poll the server's journal; hot-swap
//!                                  # if it grew (needs --watch-journal
//!                                  # server-side)
//! psh-client --query S,T           # one s–t query
//! psh-client [replay flags]        # default: replay a workload
//! ```
//!
//! Replay flags:
//! ```text
//!   --workload PATH           # 'q s t' lines; default: generated pairs
//!   --queries Q               # generated workload size (default 1000)
//!   --workload-dist D         # uniform (default) or zipf:<theta>
//!   --batch B                 # pairs per round-trip / stream chunk (256)
//!   --clients K               # K concurrent sockets (default 1); the
//!                             # server coalesces them into shared batches
//!   --replay                  # stream one subscription instead of
//!                             # batch round-trips (single socket)
//!   --open-loop RATE          # issue single queries at a seeded
//!                             # Poisson arrival rate (queries/sec)
//!                             # instead of back-to-back batches;
//!                             # latency is measured from each query's
//!                             # *scheduled* arrival, so a stalled
//!                             # server inflates the tail instead of
//!                             # silently throttling the workload
//!                             # (no coordinated omission); takes
//!                             # precedence over --replay/--clients
//!   --max-seconds S           # stop issuing batches after S seconds
//!   --verify-local            # rebuild the same oracle in-process
//!                             # (--family/--n/--seed/--snapshot/--shards
//!                             # …) and require byte-identical answers —
//!                             # pass --shards K when the server serves a
//!                             # K-shard oracle built from flags
//!   --verify-stretch C        # recompute every answered pair exactly
//!                             # (Dijkstra on the locally derived graph)
//!                             # and require exact ≤ wire ≤ C·exact —
//!                             # the documented stretch bound, checkable
//!                             # against a *monolithic* ground truth even
//!                             # when the server serves a sharded oracle
//! ```
//!
//! Every mode honours `--addr HOST:PORT` (default `$PSH_ADDR`, else
//! `127.0.0.1:7471`), `--timeout-secs S`, `--seed S`, and `--json PATH`.
//! Replay reports qps and p50/p99 latency in the same `ServiceStats`
//! vocabulary the server uses, rebuilt client-side from per-round-trip
//! samples. Exits non-zero on any protocol or remote error — typed
//! `OP_ERROR` frames surface as messages, never panics.

use psh_bench::json::{has_flag, parse_flag};
use psh_bench::serving::{load_graph, obtain_served_oracle, parse_max_seconds};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::{read_pairs, WorkloadDist};
use psh_bench::Report;
use psh_core::oracle::QueryResult;
use psh_core::service::ServiceStats;
use psh_exec::ExecutionPolicy;
use psh_net::server::env_addr;
use psh_net::NetClient;
use psh_pram::Cost;
use std::io::BufReader;
use std::time::{Duration, Instant};

const PROG: &str = "psh-client";

fn die(msg: impl std::fmt::Display) -> ! {
    psh_bench::serving::die(PROG, msg)
}

fn connect(addr: &str) -> NetClient {
    let mut client = NetClient::connect(addr)
        .unwrap_or_else(|e| die(format_args!("cannot connect to {addr}: {e}")));
    let timeout = Duration::from_secs(
        parse_flag("--timeout-secs")
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(30),
    );
    client
        .set_timeouts(Some(timeout), Some(timeout))
        .unwrap_or_else(|e| die(e));
    client
}

fn print_wire_stats(label: &str, s: &psh_net::WireStats) {
    println!(
        "{label}: served {} in {} batches (largest {}) | {:.1} qps | p50 {:.3} ms | p99 {:.3} ms | work {} depth {}",
        s.served, s.batches, s.largest_batch, s.qps, s.p50_ms, s.p99_ms, s.work, s.depth
    );
}

fn main() {
    let addr = parse_flag("--addr").unwrap_or_else(env_addr);
    let seed: u64 = parse_flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20150625);

    if has_flag("--shutdown") {
        let stats = connect(&addr)
            .shutdown_server()
            .unwrap_or_else(|e| die(format_args!("shutdown failed: {e}")));
        print_wire_stats("final server stats", &stats);
        return;
    }
    if has_flag("--stats") {
        let stats = connect(&addr)
            .server_stats()
            .unwrap_or_else(|e| die(format_args!("stats failed: {e}")));
        print_wire_stats("server stats", &stats);
        return;
    }
    if has_flag("--info") {
        let info = connect(&addr)
            .server_info()
            .unwrap_or_else(|e| die(format_args!("info failed: {e}")));
        println!(
            "serving n={} m={} | hopset size {} | build seed {}",
            info.n, info.m, info.hopset, info.seed
        );
        return;
    }
    if has_flag("--reload") {
        let r = connect(&addr)
            .reload()
            .unwrap_or_else(|e| die(format_args!("reload failed: {e}")));
        if r.swapped {
            println!(
                "hot-swapped: epoch {} now serving (applied {} journal records, {} ops; n={} m={})",
                r.epoch, r.records, r.ops, r.n, r.m
            );
        } else {
            println!(
                "nothing to reload: epoch {} still serving (n={} m={})",
                r.epoch, r.n, r.m
            );
        }
        return;
    }
    if let Some(spec) = parse_flag("--query") {
        let (s, t) = spec
            .split_once(',')
            .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
            .unwrap_or_else(|| die(format_args!("bad --query '{spec}' (want S,T)")));
        let answer = connect(&addr)
            .query(s, t)
            .unwrap_or_else(|e| die(format_args!("query failed: {e}")));
        println!(
            "d({s}, {t}) ≈ {} ({})",
            answer.distance,
            if answer.upper_bound {
                "upper bound"
            } else {
                "estimate"
            }
        );
        return;
    }

    replay(&addr, seed);
}

/// The default mode: replay a workload against the server and report
/// client-observed throughput/latency, optionally cross-checking every
/// answer against a locally built oracle.
fn replay(addr: &str, seed: u64) {
    let mut report = Report::from_args(PROG);
    let max_seconds = parse_max_seconds(PROG);
    let batch: usize = parse_flag("--batch")
        .and_then(|s| s.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(256);
    let clients: usize = parse_flag("--clients")
        .and_then(|s| s.parse().ok())
        .filter(|&k| k > 0)
        .unwrap_or(1);
    let dist = match parse_flag("--workload-dist") {
        None => WorkloadDist::Uniform,
        Some(s) => WorkloadDist::parse(&s).unwrap_or_else(|e| die(e)),
    };
    let open_loop: Option<f64> = parse_flag("--open-loop").map(|s| {
        s.trim()
            .parse::<f64>()
            .ok()
            .filter(|r| r.is_finite() && *r > 0.0)
            .unwrap_or_else(|| {
                die(format_args!(
                    "bad --open-loop '{s}' (want a rate > 0 in qps)"
                ))
            })
    });

    let mut probe = connect(addr);
    let info = probe
        .server_info()
        .unwrap_or_else(|e| die(format_args!("info failed: {e}")));
    let n = info.n as usize;
    if n == 0 {
        die("the server is serving an empty graph");
    }

    let pairs: Vec<(u32, u32)> = match parse_flag("--workload") {
        Some(path) => {
            let file = std::fs::File::open(&path)
                .unwrap_or_else(|e| die(format_args!("cannot open {path}: {e}")));
            read_pairs(BufReader::new(file), n)
                .unwrap_or_else(|e| die(format_args!("bad workload {path}: {e}")))
        }
        None => {
            let q: usize = parse_flag("--queries")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1000);
            dist.pairs(n, q, seed ^ 0xC0FFEE)
        }
    };

    // --- drive the wire ---------------------------------------------------
    let streaming = has_flag("--replay") && open_loop.is_none();
    let start = Instant::now();
    let mut answers: Vec<QueryResult> = Vec::with_capacity(pairs.len());
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut truncated = false;
    if let Some(rate) = open_loop {
        // Open-loop replay: arrivals follow a seeded Poisson process at
        // `rate` qps, independent of how fast the server answers. Each
        // latency sample runs from the query's scheduled arrival to its
        // answer — when the server falls behind, the queue time lands in
        // the tail instead of vanishing into a slower send rate.
        let mut client = probe;
        let mut x = (seed ^ 0x9E37_79B9_7F4A_7C15) | 1;
        let mut scheduled_s = 0.0f64;
        let mut behind = 0usize;
        for &(s, t) in &pairs {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            scheduled_s += -(1.0 - u).ln() / rate;
            if max_seconds.is_some_and(|cap| scheduled_s >= cap) {
                truncated = true;
                break;
            }
            let now_s = start.elapsed().as_secs_f64();
            if now_s < scheduled_s {
                std::thread::sleep(Duration::from_secs_f64(scheduled_s - now_s));
            } else {
                behind += 1;
            }
            let answer = client
                .query(s, t)
                .unwrap_or_else(|e| die(format_args!("open-loop query failed: {e}")));
            latencies_ms.push((start.elapsed().as_secs_f64() - scheduled_s) * 1e3);
            answers.push(answer);
        }
        println!(
            "open-loop: offered {rate} qps | {} arrivals, {behind} behind schedule",
            answers.len()
        );
    } else if streaming {
        // one subscription: the server batches and streams; latency
        // samples are client-observed chunk inter-arrival times
        let mut last = Instant::now();
        let (collected, summary) = probe
            .subscribe(&pairs, batch as u32, |_, part| {
                latencies_ms.push(last.elapsed().as_secs_f64() * 1e3);
                last = Instant::now();
                answers.extend_from_slice(part);
            })
            .map(|summary| (std::mem::take(&mut answers), summary))
            .unwrap_or_else(|e| die(format_args!("streaming replay failed: {e}")));
        answers = collected;
        println!(
            "streamed {} answers in {} server-side batches ({:.3}s server wall)",
            summary.served, summary.batches, summary.elapsed_s
        );
    } else if clients == 1 {
        let mut client = probe;
        for chunk in pairs.chunks(batch) {
            if max_seconds.is_some_and(|cap| start.elapsed().as_secs_f64() >= cap) {
                truncated = true;
                break;
            }
            let t0 = Instant::now();
            let part = client
                .query_batch(chunk)
                .unwrap_or_else(|e| die(format_args!("batch failed: {e}")));
            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            answers.extend(part);
        }
    } else {
        // K sockets replay contiguous shards concurrently; the server's
        // admission queue coalesces across them. Results rejoin in pair
        // order so --verify-local still checks the whole workload.
        drop(probe);
        let shard = pairs.len().div_ceil(clients);
        let results: Vec<(usize, Vec<QueryResult>, Vec<f64>, bool)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, slice) in pairs.chunks(shard.max(1)).enumerate() {
                let addr = &*addr;
                handles.push(scope.spawn(move || {
                    let mut client = connect(addr);
                    let mut got = Vec::with_capacity(slice.len());
                    let mut lats = Vec::new();
                    let mut cut = false;
                    for chunk in slice.chunks(batch) {
                        if max_seconds.is_some_and(|cap| start.elapsed().as_secs_f64() >= cap) {
                            cut = true;
                            break;
                        }
                        let t0 = Instant::now();
                        let part = client
                            .query_batch(chunk)
                            .unwrap_or_else(|e| die(format_args!("client {w}: batch failed: {e}")));
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                        got.extend(part);
                    }
                    (w, got, lats, cut)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut ordered = results;
        ordered.sort_by_key(|(w, ..)| *w);
        for (_, got, lats, cut) in ordered {
            // a truncated shard ends the in-order prefix we can verify
            if cut {
                truncated = true;
            }
            if !truncated {
                answers.extend(got);
            }
            latencies_ms.extend(lats);
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    if truncated {
        println!(
            "--max-seconds {} reached: {}/{} answers collected before stopping",
            max_seconds.unwrap_or_default(),
            answers.len(),
            pairs.len()
        );
    }

    // --- report in the ServiceStats vocabulary ----------------------------
    let batches = latencies_ms.len() as u64;
    let eff_batch = if open_loop.is_some() { 1 } else { batch };
    let stats = ServiceStats::from_samples(latencies_ms, elapsed_s, batches, eff_batch, Cost::ZERO);
    let reachable = answers.iter().filter(|a| a.distance.is_finite()).count();
    let qps = answers.len() as f64 / elapsed_s.max(1e-12);

    println!(
        "\n# psh-client — {} answers from {addr} | {} | batches of {eff_batch} × {clients} client(s)\n",
        answers.len(),
        if open_loop.is_some() {
            "open-loop"
        } else if streaming {
            "streamed"
        } else {
            "round-trips"
        },
    );
    let mut t = Table::new([
        "queries",
        "batches",
        "dist",
        "qps",
        "p50 (ms)",
        "p99 (ms)",
        "reachable",
    ]);
    t.row([
        fmt_u(answers.len() as u64),
        fmt_u(batches),
        dist.name(),
        fmt_f(qps),
        fmt_f(stats.p50_ms),
        fmt_f(stats.p99_ms),
        fmt_u(reachable as u64),
    ]);
    t.print();

    // --- the byte-identity contract, checkable from the CLI ---------------
    if has_flag("--verify-local") {
        let (served, ..) = obtain_served_oracle(PROG, seed);
        let local_n = served.descriptor().n;
        if local_n != n {
            die(format_args!(
                "local oracle has n={local_n} but the server serves n={n} — pass the same \
                 --family/--n/--seed/--snapshot/--shards flags the server got"
            ));
        }
        let (reference, _) =
            served.query_batch(&pairs[..answers.len()], ExecutionPolicy::Sequential);
        for (i, (wire, local)) in answers.iter().zip(&reference).enumerate() {
            if wire.distance.to_bits() != local.distance.to_bits()
                || wire.upper_bound != local.upper_bound
            {
                let (s, t) = pairs[i];
                die(format_args!(
                    "wire answer diverges from the local oracle at pair {i} ({s}, {t}): \
                     wire {} vs local {}",
                    wire.distance, local.distance
                ));
            }
        }
        println!(
            "verify-local: all {} answers byte-identical to the in-process oracle ({} shard(s))",
            answers.len(),
            served.descriptor().shards
        );
    }

    // --- the stretch bound, checked against exact monolithic distances ----
    if let Some(c) = parse_flag("--verify-stretch") {
        let c: f64 = c
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|c| c.is_finite() && *c >= 1.0)
            .unwrap_or_else(|| {
                die(format_args!(
                    "bad --verify-stretch '{c}' (want a factor ≥ 1)"
                ))
            });
        let g = load_graph(PROG, seed);
        if g.n() != n {
            die(format_args!(
                "local graph has n={} but the server serves n={n} — pass the same \
                 --family/--n/--seed flags the server got",
                g.n()
            ));
        }
        for (i, wire) in answers.iter().enumerate() {
            let (s, t) = pairs[i];
            let exact = psh_graph::traversal::dijkstra::dijkstra_pair(&g, s, t);
            let ok = if exact == psh_graph::INF {
                !wire.distance.is_finite()
            } else {
                let exact = exact as f64;
                wire.distance >= exact - 1e-9 && wire.distance <= c * exact + 1e-9
            };
            if !ok {
                die(format_args!(
                    "wire answer violates the {c}× stretch bound at pair {i} ({s}, {t}): \
                     wire {} vs exact {exact}",
                    wire.distance
                ));
            }
        }
        println!(
            "verify-stretch: all {} answers within {c}× of the exact Dijkstra distance",
            answers.len()
        );
    }

    report
        .meta("addr", addr)
        .meta("queries", answers.len())
        .meta("batch", eff_batch)
        .meta("clients", clients)
        .meta("streamed", streaming)
        .meta("open_loop_rate", open_loop.unwrap_or(0.0))
        .meta("workload_dist", dist.name())
        .meta("truncated", truncated)
        .meta("verified_local", has_flag("--verify-local"))
        .meta("qps", qps)
        .meta("p50_ms", stats.p50_ms)
        .meta("p99_ms", stats.p99_ms);
    report.push_table("client", &t);
    report.finish();
}
