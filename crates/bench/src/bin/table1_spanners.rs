//! E1/E2 — regenerate **Figure 1**: spanner quality comparison.
//!
//! For each algorithm the paper tabulates, we measure on the same
//! workloads: spanner size (and its ratio to `n^{1+1/k}`), exact maximum
//! stretch, work, and depth (cost model). The paper's asymptotic rows are
//! printed alongside for comparison. Expected shape (who wins):
//!
//! * size: greedy < ours < Baswana–Sen, with the ours/BS gap growing ≈ k;
//! * stretch: greedy ≤ 2k−1 exactly, BS ≤ 2k−1, ours O(k) with a larger
//!   constant;
//! * work: ours and BS linear-ish; greedy quadratic (only run small).
//!
//! Usage: `cargo run --release -p psh-bench --bin table1_spanners [--json PATH]`

use psh_baselines::baswana_sen::baswana_sen_spanner;
use psh_baselines::greedy_spanner::greedy_spanner;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{Seed, SpannerBuilder};
use psh_core::spanner::verify::max_stretch_exact;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 2_000usize;
    let seed: u64 = 20150625; // the paper's revision date, for luck
    let mut report = Report::from_args("table1_spanners");
    report.meta("n", n).meta("seed", seed);
    println!("# Figure 1 reproduction — spanner constructions\n");
    println!("workloads: random/power-law/grid at n≈{n}; greedy runs at n=300 (quadratic)\n");

    println!("## Unweighted block\n");
    println!("paper rows: [BKMP10] 2k−1 stretch, O(k n^{{1+1/k}}) size, O(km) work");
    println!("            new     O(k) stretch,  O(n^{{1+1/k}}) size,  O(m) work\n");
    for k in [2usize, 3, 4, 6, 8] {
        let mut t = Table::new([
            "k",
            "family",
            "algorithm",
            "size",
            "size/n^(1+1/k)",
            "max stretch",
            "work",
            "depth",
        ]);
        for family in [Family::Random, Family::PowerLaw, Family::Grid] {
            let g = family.instantiate(n, seed);
            let small = family.instantiate(300, seed);

            let (ours, c1) = SpannerBuilder::unweighted(k as f64)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .into_parts();
            t.row([
                k.to_string(),
                family.name().into(),
                "estc (new)".into(),
                fmt_u(ours.size() as u64),
                fmt_f(ours.size_ratio(k as f64)),
                fmt_f(max_stretch_exact(&g, &ours)),
                fmt_u(c1.work),
                fmt_u(c1.depth),
            ]);

            let (bs, c2) = baswana_sen_spanner(&g, k, &mut StdRng::seed_from_u64(seed));
            t.row([
                k.to_string(),
                family.name().into(),
                "baswana-sen".into(),
                fmt_u(bs.size() as u64),
                fmt_f(bs.size_ratio(k as f64)),
                fmt_f(max_stretch_exact(&g, &bs)),
                fmt_u(c2.work),
                fmt_u(c2.depth),
            ]);

            let (gr, c3) = greedy_spanner(&small, (2 * k - 1) as f64);
            t.row([
                k.to_string(),
                format!("{} (n=300)", family.name()),
                "greedy [ADD+93]".into(),
                fmt_u(gr.size() as u64),
                fmt_f(gr.size_ratio(k as f64)),
                fmt_f(max_stretch_exact(&small, &gr)),
                fmt_u(c3.work),
                "seq".into(),
            ]);
        }
        t.print();
        report.push_table(&format!("unweighted_k{k}"), &t);
        println!();
    }

    println!("## Weighted block\n");
    println!(
        "paper rows: [BS07] 2k−1 stretch, O(k n^{{1+1/k}}) size, O(km) work, O(k log* n) depth"
    );
    println!("            new    O(k) stretch,  O(n^{{1+1/k}} log k),  O(m) work, O(k log* n log U) depth\n");
    println!("(dense random instances, m = 13n, so the size bound n^{{1+1/k}} binds)\n");
    let k = 4usize;
    let mut t = Table::new([
        "U",
        "family",
        "algorithm",
        "size",
        "size/n^(1+1/k)",
        "max stretch",
        "work",
        "depth",
    ]);
    for u in [16.0f64, 256.0, 4096.0, 65536.0] {
        {
            let family = "random-dense";
            let base = psh_graph::generators::connected_random(
                n,
                12 * n,
                &mut StdRng::seed_from_u64(seed),
            );
            let g = psh_graph::generators::with_log_uniform_weights(
                &base,
                u,
                &mut StdRng::seed_from_u64(seed + 1),
            );
            let (ours, c1) = SpannerBuilder::weighted(k as f64)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .into_parts();
            t.row([
                format!("2^{}", (u.log2()) as u32),
                family.into(),
                "estc (new)".into(),
                fmt_u(ours.size() as u64),
                fmt_f(ours.size_ratio(k as f64)),
                fmt_f(max_stretch_exact(&g, &ours)),
                fmt_u(c1.work),
                fmt_u(c1.depth),
            ]);
            let (bs, c2) = baswana_sen_spanner(&g, k, &mut StdRng::seed_from_u64(seed));
            t.row([
                format!("2^{}", (u.log2()) as u32),
                family.into(),
                "baswana-sen".into(),
                fmt_u(bs.size() as u64),
                fmt_f(bs.size_ratio(k as f64)),
                fmt_f(max_stretch_exact(&g, &bs)),
                fmt_u(c2.work),
                fmt_u(c2.depth),
            ]);
        }
    }
    t.print();
    report.push_table("weighted_k4", &t);
    report.finish();
    println!("\ndone.");
}
