//! E18 — deep-recursion memory: arena-backed views vs per-cluster
//! materialization in the Algorithm 4 recursion.
//!
//! Builds the same seeded hopset twice on an `n ≥ 100k` workload — once
//! with `SplitStrategy::Materialize` (the legacy path: a fresh `CsrGraph`
//! per cluster per level) and once with `SplitStrategy::Arena` (borrowed
//! `CsrView`s over reused per-level scratch arenas) — under both
//! `ExecutionPolicy::Sequential` and `Parallel`, and reports wall-clock
//! and **peak allocated bytes** measured by a counting global allocator.
//!
//! Exits non-zero if
//!
//! * any strategy/policy combination produces a different artifact or
//!   Cost than the sequential materializing reference (the tentpole's
//!   byte-identity contract), or
//! * the arena path fails to allocate strictly fewer peak bytes than the
//!   materializing path on the sequential run (the whole point of the
//!   refactor; the sequential pair is compared because parallel peaks
//!   depend on scheduling overlap).
//!
//! Usage: `cargo run --release -p psh-bench --bin recursion_memory \
//!             [--n N] [--threads K] [--json PATH]`

use psh_bench::alloc::{live_bytes, peak_above, reset_peak, CountingAlloc};
use psh_bench::json::parse_flag;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::Report;
use psh_core::hopset::unweighted::build_hopset_with_strategy_on;
use psh_core::hopset::SplitStrategy;
use psh_core::{Hopset, HopsetParams};
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::generators;
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Measured {
    hopset: Hopset,
    cost: Cost,
    wall_s: f64,
    peak_bytes: usize,
}

fn run(
    g: &psh_graph::CsrGraph,
    params: &HopsetParams,
    beta0: f64,
    policy: ExecutionPolicy,
    strategy: SplitStrategy,
) -> Measured {
    // Warm the executor pool outside the measured window so thread-stack
    // and pool bookkeeping allocations don't pollute the comparison, and
    // drain the driving thread's arena pool so no run inherits scratch
    // buffers (as pre-existing live bytes they would be reused without a
    // counted allocation, undercounting the arena path's peak). Worker
    // threads spawned by `exec` are fresh per thread-count, so their
    // pools start empty anyway.
    let exec = Executor::new(policy);
    exec.par_map(&[0u32; 64], 1, |&x| x);
    psh_graph::view::drain_arena_pool();
    let base = live_bytes();
    reset_peak();
    let start = Instant::now();
    let (hopset, cost) = build_hopset_with_strategy_on(
        &exec,
        g,
        params,
        beta0,
        strategy,
        &mut StdRng::seed_from_u64(7),
    );
    let wall_s = start.elapsed().as_secs_f64();
    let peak_bytes = peak_above(base);
    Measured {
        hopset,
        cost,
        wall_s,
        peak_bytes,
    }
}

fn main() {
    let n: usize = parse_flag("--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    // Parallel-leg width: --threads wins; otherwise PSH_THREADS (the CI
    // matrix variable, floored at 2 so the leg stays parallel); else 4.
    let threads: usize = parse_flag("--threads")
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            std::env::var("PSH_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .map(|t: usize| t.max(2))
        })
        .unwrap_or(4);
    let mut report = Report::from_args("recursion_memory");

    // Deep-recursion workload: sparse connected random graph. Small
    // gamma1 keeps the base case tiny so the recursion actually goes deep.
    let mut rng = StdRng::seed_from_u64(20150625);
    let g = generators::connected_random(n, 2 * n, &mut rng);
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.2,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let beta0 = params.beta0(g.n());

    println!(
        "# recursion_memory — Algorithm 4 split strategies on n={} m={} (β₀={beta0:.2e})\n",
        g.n(),
        g.m()
    );

    let combos = [
        ("seq", ExecutionPolicy::Sequential),
        ("par", ExecutionPolicy::Parallel { threads }),
    ];
    let mut t = Table::new([
        "policy",
        "strategy",
        "wall-clock (s)",
        "peak bytes",
        "peak vs legacy",
        "identical",
    ]);
    let mut failures = 0usize;
    let mut seq_peaks = (0usize, 0usize); // (legacy, arena)
    let mut reference: Option<(Hopset, Cost)> = None;

    for (pname, policy) in combos {
        let legacy = run(&g, &params, beta0, policy, SplitStrategy::Materialize);
        let arena = run(&g, &params, beta0, policy, SplitStrategy::Arena);
        let reference = reference.get_or_insert_with(|| (legacy.hopset.clone(), legacy.cost));
        if pname == "seq" {
            seq_peaks = (legacy.peak_bytes, arena.peak_bytes);
        }
        for (sname, m) in [("materialize", &legacy), ("arena", &arena)] {
            let identical = m.hopset == reference.0 && m.cost == reference.1;
            if !identical {
                failures += 1;
            }
            t.row([
                pname.to_string(),
                sname.to_string(),
                fmt_f(m.wall_s),
                fmt_u(m.peak_bytes as u64),
                format!(
                    "{:.2}x",
                    m.peak_bytes as f64 / legacy.peak_bytes.max(1) as f64
                ),
                if identical { "yes" } else { "MISMATCH" }.to_string(),
            ]);
            report
                .meta(&format!("wall_s_{pname}_{sname}"), m.wall_s)
                .meta(&format!("peak_bytes_{pname}_{sname}"), m.peak_bytes as u64);
        }
    }
    t.print();

    let (legacy_peak, arena_peak) = seq_peaks;
    println!(
        "\nhopset: {} edges | sequential peak: arena {} vs materialize {} ({:.1}% saved)",
        reference.as_ref().map_or(0, |(h, _)| h.size()),
        fmt_u(arena_peak as u64),
        fmt_u(legacy_peak as u64),
        100.0 * (1.0 - arena_peak as f64 / legacy_peak.max(1) as f64),
    );

    if failures > 0 {
        eprintln!("recursion_memory: {failures} strategy/policy combination(s) diverged");
    }
    if arena_peak >= legacy_peak {
        eprintln!(
            "recursion_memory: arena path peak {arena_peak} B is not strictly below the \
             materializing path's {legacy_peak} B"
        );
        failures += 1;
    }

    report
        .meta("n", g.n())
        .meta("m", g.m())
        .meta("threads", threads as u64)
        .meta(
            "hopset_edges",
            reference.as_ref().map_or(0, |(h, _)| h.size()) as u64,
        )
        .meta("failures", failures as u64);
    report.push_table("recursion_memory", &t);
    report.finish();

    if failures > 0 {
        std::process::exit(1);
    }
}
