//! `benchsuite` — the canonical serving-benchmark matrix, run after run.
//!
//! One binary that measures the whole Theorem 1.2 bargain — parallel
//! preprocessing cost, snapshot round trip, snapshot *load* latency,
//! concurrent query serving (cached and uncached), serving over the TCP
//! wire, and an exact-baseline head-to-head — over a fixed scenario
//! matrix, and emits a single schema-versioned JSON document
//! (`BENCH_9.json` by default) so the perf trajectory can accumulate
//! across commits:
//!
//! * **graph families** × **weighting**: {gnp, rmat, grid2d} ×
//!   {unweighted, weighted (log-uniform, ratio 64)} — six oracle builds,
//!   each measured for wall-clock, work/depth [`psh_pram::Cost`], **peak allocated
//!   bytes** (the counting allocator shared with `recursion_memory`),
//!   hopset size, and snapshot size;
//! * **serving cells** per build: {fresh, snapshot-loaded oracle} ×
//!   {Sequential, Parallel{2,4,8}} × {1, 8, 32 client threads}, each
//!   cell driving the shared [`psh_core::service::OracleService`]
//!   admission queue from that many OS threads and reporting qps plus
//!   p50/p99/p999 per-request latency from
//!   [`psh_core::service::ServiceStats`];
//! * **wire cells** per build: {Sequential, Parallel{4}} × {1, 8 net
//!   clients}, each cell binding a loopback [`psh_net::NetServer`] and
//!   driving it through that many [`psh_net::NetClient`] sockets — the
//!   same workload measured *through the wire*, reporting
//!   client-observed qps/latency plus the largest batch the server
//!   coalesced across sockets;
//! * **load cells** per build, plus one deliberately large build
//!   (`--load-n`, default 120 000 vertices): open latency (file →
//!   oracle ready to serve, validation included) for the three snapshot
//!   paths — v1 stream decode, v2 `mmap`, and the v2 portable read
//!   fallback — plus the first-query latency on the mapped path (which
//!   absorbs the page faults the lazy open deferred; the probe answer
//!   feeds the divergence gate on every path) and the v1/v2-mmap open
//!   speedup in the last column (the zero-copy layout's headline
//!   number: the big row is where `mmap` must win by ≥10×);
//! * **cached serving cells** per build: the {Sequential, Parallel{4}}
//!   policies with the bounded answer cache enabled, replaying the
//!   workload twice through one service — the second pass measures the
//!   hit path, and both passes feed the divergence gate;
//! * **hot-swap cells** per build: the {Sequential, Parallel{4}}
//!   policies with 8 client threads hammering the service without pause
//!   while the main thread first idles (a 200 ms steady window), then
//!   rebuilds an oracle for a one-edge mutation of the graph and swaps
//!   it in via [`psh_core::service::OracleService::swap_oracle`] — the
//!   row records qps in both windows (the zero-downtime claim: serving
//!   never stops during the rebuild), the rebuild wall-clock, the pause
//!   the swap call itself imposes, the resulting epoch, and whether the
//!   settled answers are byte-identical to the swapped-in oracle;
//! * **baseline head-to-head** per build: the oracle's `query_batch`
//!   against exact per-pair Dijkstra on the same pairs (both
//!   sequential), reporting both throughputs and the observed stretch
//!   (max and mean of approx/exact over reachable pairs);
//! * **compressed-adjacency cells** per build: the same oracle staged
//!   as plain and delta-compressed v2 snapshots, reporting on-disk
//!   bytes, resident adjacency-slab bytes, and mmap-served `query_batch`
//!   qps for both encodings (answers gated byte-identical to the
//!   reference either way);
//! * **frontier race**: Dial and Δ-stepping SSSP over weighted gnp and
//!   grid2d graphs at several sizes (up to `n = 120 000`), each run
//!   through both [`psh_graph::QueueKind`]s — the calendar
//!   [`psh_graph::BucketQueue`] vs the `BTreeMap` baseline — best of 3,
//!   with the distance/parent arrays gated identical between the two
//!   queues;
//! * **sharded-vs-monolithic cells** per build: the same graph
//!   partitioned into 4 shards by [`psh_core::shard::ShardedOracleBuilder`]
//!   (per-shard builds fanned across the pool) next to the monolithic
//!   build — build wall-clock, sequential qps, and the observed
//!   cross-shard stretch vs exact Dijkstra, gated on the documented 3×
//!   sandwich and on Sequential/Parallel{4} byte-identity;
//! * **open-loop sweep**: one loopback wire server driven at a grid of
//!   seeded Poisson offered-load rates (`psh-client --open-loop`
//!   semantics, latency measured from each query's *scheduled* arrival
//!   so queueing delay lands in the tail — no coordinated omission),
//!   recording the full latency-vs-offered-load curve.
//!
//! Every cell's answers — in-process and over-the-wire alike — are
//! compared against the sequential per-pair reference
//! (`oracle.query(s, t)` on the fresh build); the binary
//! **exits non-zero on any divergence** — this is the serving
//! determinism gate the CI `bench` job runs (with `--quick`, which
//! shrinks the policy axis to {Sequential, Parallel{4}} and the client
//! axis to {1, 32} at a smaller n).
//!
//! Usage: `cargo run --release -p psh-bench --bin benchsuite \
//!             [--quick] [--n N] [--queries Q] [--load-n N] [--seed S]
//!             [--json PATH]`
//!
//! The JSON schema (`meta.schema_version = 1`): the standard
//! [`psh_bench::Report`] envelope (`bin`, `threads`, `policy`, `wall_clock_s`,
//! `meta`, `tables`) with a `build` table (one row per family ×
//! weighting), a `serve` table (one row per in-process scenario cell),
//! and a `serve_net` table (one row per wire cell). Rows are
//! stringly-typed table cells; `meta` carries the numeric knobs. The
//! `serve_net`, `load`, `serve_cached`, `swap`, `baselines`, `compress`,
//! `frontier`, `shard`, and `open_loop` tables are
//! additive — documents keep `schema_version` 1, and `bench-compare`
//! diffs two documents table-by-table (tables present in only one side
//! are reported as added/removed, so old baselines stay comparable).

use psh_bench::alloc::{live_bytes, peak_above, reset_peak, CountingAlloc};
use psh_bench::json::{has_flag, parse_flag};
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::{random_pairs, Family};
use psh_bench::Report;
use psh_core::api::{OracleBuilder, Seed};
use psh_core::distance::DistanceOracle;
use psh_core::oracle::{ApproxShortestPaths, QueryResult};
use psh_core::service::{CacheConfig, OracleService, ServiceConfig, ServiceStats};
use psh_core::shard::ShardedOracleBuilder;
use psh_core::snapshot::{
    inspect_v2, load_oracle, load_oracle_v2, read_oracle, save_oracle_v2, save_oracle_v2_with,
    write_oracle, OracleMeta,
};
use psh_core::HopsetParams;
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::traversal::delta_stepping::{default_delta, delta_stepping_queued};
use psh_graph::traversal::dial::dial_sssp_queued;
use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::{CsrGraph, GraphDelta, LoadMode, QueueKind, INF};
use psh_net::{NetClient, NetServer, ServerConfig};
use psh_pram::Cost;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bump on any change to the document layout (table names, columns, or
/// meta keys) so longitudinal consumers can dispatch on it.
const SCHEMA_VERSION: u64 = 1;

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("benchsuite: {msg}");
    std::process::exit(1);
}

/// Drive `clients` OS threads of interleaved queries through one shared
/// service; returns the answers indexed like `pairs`.
fn run_clients(service: &OracleService, pairs: &[(u32, u32)], clients: usize) -> Vec<QueryResult> {
    let indexed: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    pairs
                        .iter()
                        .enumerate()
                        .skip(k)
                        .step_by(clients)
                        .map(|(i, &(s, t))| (i, service.query(s, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let mut answers: Vec<Option<QueryResult>> = vec![None; pairs.len()];
    for (i, a) in indexed {
        answers[i] = Some(a);
    }
    answers
        .into_iter()
        .map(|a| a.expect("every index covered"))
        .collect()
}

/// Drive `clients` loopback sockets of strided `query_batch` round
/// trips (32 pairs each) through a bound server; returns the answers
/// indexed like `pairs` plus client-side stats rebuilt from the
/// per-round-trip latency samples.
/// One worker's share: answers tagged with their `pairs` index, plus
/// per-round-trip latencies in milliseconds.
type ClientShare = (Vec<(usize, QueryResult)>, Vec<f64>);

fn run_net_clients(
    addr: SocketAddr,
    pairs: &[(u32, u32)],
    clients: usize,
) -> (Vec<QueryResult>, ServiceStats) {
    const TRIP: usize = 32;
    let start = Instant::now();
    let per_client: Vec<ClientShare> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("loopback connect");
                    let mine: Vec<(usize, (u32, u32))> = pairs
                        .iter()
                        .copied()
                        .enumerate()
                        .skip(k)
                        .step_by(clients)
                        .collect();
                    let mut indexed = Vec::with_capacity(mine.len());
                    let mut lats = Vec::new();
                    for trip in mine.chunks(TRIP) {
                        let ask: Vec<(u32, u32)> = trip.iter().map(|&(_, p)| p).collect();
                        let t0 = Instant::now();
                        let got = client.query_batch(&ask).expect("loopback batch");
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                        indexed.extend(trip.iter().map(|&(i, _)| i).zip(got));
                    }
                    (indexed, lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net client thread panicked"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut answers: Vec<Option<QueryResult>> = vec![None; pairs.len()];
    let mut lats = Vec::new();
    for (indexed, l) in per_client {
        for (i, a) in indexed {
            answers[i] = Some(a);
        }
        lats.extend(l);
    }
    let trips = lats.len() as u64;
    let stats = ServiceStats::from_samples(lats, elapsed_s, trips, TRIP, Cost::ZERO);
    let answers = answers
        .into_iter()
        .map(|a| a.expect("every index covered"))
        .collect();
    (answers, stats)
}

/// Load-path latencies need more resolution than the generic table
/// formatter gives (sub-10 ms cells would all print as `0.00`).
fn fmt_s(seconds: f64) -> String {
    format!("{seconds:.5}")
}

/// One load-path measurement: open a snapshot file (validation
/// included — that is what an operator waits for before the service can
/// accept queries), then answer one probe pair. The two spans are timed
/// separately: the open span is where the snapshot format matters; the
/// probe span is identical query work on every path — except that on
/// the `mmap` path it also absorbs the lazy page faults the open
/// deferred, which is why it is recorded too.
fn first_answer<F>(what: &str, load: F, probe: (u32, u32)) -> (f64, f64, QueryResult)
where
    F: FnOnce() -> Result<(ApproxShortestPaths, OracleMeta), psh_core::snapshot::SnapshotError>,
{
    let start = Instant::now();
    let (oracle, _) = load().unwrap_or_else(|e| die(format_args!("{what}: {e}")));
    let open_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let answer = oracle.query(probe.0, probe.1).0;
    (open_s, start.elapsed().as_secs_f64(), answer)
}

/// The three open measurements of one oracle — v1 stream decode, v2
/// `mmap`, v2 aligned-read fallback — plus the first-query latency on
/// the mapped path (page faults included).
struct LoadCell {
    v1_bytes: u64,
    v2_bytes: u64,
    v1_s: f64,
    mmap_s: f64,
    read_s: f64,
    mmap_query_s: f64,
    answers: [QueryResult; 3],
}

fn measure_loads(
    tag: &str,
    v1_bytes: &[u8],
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
    probe: (u32, u32),
) -> LoadCell {
    let dir = std::env::temp_dir();
    let v1_path = dir.join(format!("{tag}.{}.v1.snap", std::process::id()));
    let v2_path = dir.join(format!("{tag}.{}.v2.snap", std::process::id()));
    std::fs::write(&v1_path, v1_bytes)
        .unwrap_or_else(|e| die(format_args!("{tag}: cannot stage v1 snapshot: {e}")));
    save_oracle_v2(&v2_path, oracle, meta)
        .unwrap_or_else(|e| die(format_args!("{tag}: cannot stage v2 snapshot: {e}")));
    let v2_bytes = std::fs::metadata(&v2_path).map(|m| m.len()).unwrap_or(0);
    let v1 = |p: &Path| load_oracle(p);
    let (v1_s, _, a1) = first_answer("v1 decode", || v1(&v1_path), probe);
    let (mmap_s, mmap_query_s, a2) = first_answer(
        "v2 mmap",
        || load_oracle_v2(&v2_path, LoadMode::Mmap),
        probe,
    );
    let (read_s, _, a3) = first_answer(
        "v2 read",
        || load_oracle_v2(&v2_path, LoadMode::Read),
        probe,
    );
    let _ = std::fs::remove_file(&v1_path);
    let _ = std::fs::remove_file(&v2_path);
    LoadCell {
        v1_bytes: v1_bytes.len() as u64,
        v2_bytes,
        v1_s,
        mmap_s,
        read_s,
        mmap_query_s,
        answers: [a1, a2, a3],
    }
}

/// One hot-swap cell's measurements: client-observed throughput while
/// the service is steady vs while a full oracle rebuild of the mutated
/// graph runs on a sibling thread, the rebuild wall-clock, the pause the
/// [`OracleService::swap_oracle`] call itself imposes, and whether the
/// settled post-swap answers are byte-identical to a direct query of the
/// swapped-in oracle.
struct SwapCell {
    qps_steady: f64,
    qps_rebuild: f64,
    rebuild_s: f64,
    swap_ms: f64,
    epoch: u64,
    identical: bool,
}

/// Hammer one shared service from `clients` threads without pause while
/// the main thread first idles (the steady window), then rebuilds an
/// oracle for the graph-plus-one-edge mutation and hot-swaps it in.
/// Queries are attributed to whichever window they *complete* in; the
/// swap pause is timed around the `swap_oracle` call alone.
fn measure_swap(
    g: &CsrGraph,
    base: &Arc<ApproxShortestPaths>,
    params: HopsetParams,
    gseed: u64,
    pairs: &[(u32, u32)],
    policy: ExecutionPolicy,
    clients: usize,
) -> SwapCell {
    use std::sync::atomic::{AtomicU64, Ordering};
    // the mutation: one shortcut edge vertex 0 does not already have
    let target = (1..g.n() as u32)
        .rev()
        .find(|&v| !g.neighbors(0).any(|(x, _)| x == v))
        .unwrap_or_else(|| die("swap cell: vertex 0 is adjacent to everything"));
    let mut delta = GraphDelta::new(g.n());
    delta
        .insert(0, target, 1)
        .unwrap_or_else(|e| die(format_args!("swap cell: delta: {e}")));
    let g2 = g
        .apply_delta(&delta)
        .unwrap_or_else(|e| die(format_args!("swap cell: apply_delta: {e}")));

    let service = Arc::new(OracleService::from_arc(
        Arc::clone(base) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(policy),
    ));
    // 0 = steady window, 1 = rebuild window, 2 = stop
    let phase = AtomicU64::new(0);
    let counts = [AtomicU64::new(0), AtomicU64::new(0)];
    let (steady_s, rebuild_window_s, rebuild_s, swap_ms, epoch, swapped) =
        std::thread::scope(|scope| {
            for k in 0..clients {
                let (service, phase, counts) = (&service, &phase, &counts);
                scope.spawn(move || {
                    let mut i = k;
                    loop {
                        let (s, t) = pairs[i % pairs.len()];
                        let _ = service.query(s, t);
                        let ph = phase.load(Ordering::Acquire);
                        if ph >= 2 {
                            break;
                        }
                        counts[ph as usize].fetch_add(1, Ordering::Relaxed);
                        i += clients;
                    }
                });
            }
            let t0 = Instant::now();
            std::thread::sleep(std::time::Duration::from_millis(200));
            let steady_s = t0.elapsed().as_secs_f64();
            phase.store(1, Ordering::Release);
            let t1 = Instant::now();
            let rebuilt = OracleBuilder::new()
                .params(params)
                .seed(Seed(gseed))
                .build(&g2)
                .unwrap_or_else(|e| die(format_args!("swap cell: rebuild failed: {e}")));
            let rebuild_s = t1.elapsed().as_secs_f64();
            let swapped = Arc::new(rebuilt.artifact);
            let t2 = Instant::now();
            let epoch = service.swap_oracle(Arc::clone(&swapped) as Arc<dyn DistanceOracle>);
            let swap_ms = t2.elapsed().as_secs_f64() * 1e3;
            let rebuild_window_s = t1.elapsed().as_secs_f64();
            phase.store(2, Ordering::Release);
            (
                steady_s,
                rebuild_window_s,
                rebuild_s,
                swap_ms,
                epoch,
                swapped,
            )
        });

    // settled: every answer must now come bitwise from the new oracle
    let settled = run_clients(&service, pairs, clients);
    let reference: Vec<QueryResult> = pairs.iter().map(|&(s, t)| swapped.query(s, t).0).collect();
    SwapCell {
        qps_steady: counts[0].load(Ordering::Relaxed) as f64 / steady_s.max(1e-12),
        qps_rebuild: counts[1].load(Ordering::Relaxed) as f64 / rebuild_window_s.max(1e-12),
        rebuild_s,
        swap_ms,
        epoch,
        identical: settled == reference,
    }
}

/// Oracle `query_batch` vs exact per-pair Dijkstra on the same pairs,
/// both sequential. Returns (oracle qps, dijkstra qps, max stretch,
/// mean stretch over reachable s ≠ t pairs).
fn head_to_head(
    g: &CsrGraph,
    oracle: &ApproxShortestPaths,
    pairs: &[(u32, u32)],
    reference: &[QueryResult],
) -> (f64, f64, f64, f64) {
    let start = Instant::now();
    let (answers, _) = oracle.query_batch(pairs, ExecutionPolicy::Sequential);
    let oracle_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let exact: Vec<u64> = pairs.iter().map(|&(s, t)| dijkstra_pair(g, s, t)).collect();
    let exact_s = start.elapsed().as_secs_f64();
    assert_eq!(
        answers, *reference,
        "head-to-head cell must match the reference"
    );

    let (mut max_stretch, mut sum, mut count) = (0.0f64, 0.0f64, 0usize);
    for (answer, &d) in answers.iter().zip(&exact) {
        if d == INF {
            assert!(
                !answer.distance.is_finite(),
                "oracle reports a distance on an unreachable pair"
            );
            continue;
        }
        if d == 0 {
            continue; // s == t
        }
        let stretch = answer.distance / d as f64;
        assert!(stretch >= 1.0 - 1e-9, "oracle beat the exact distance");
        max_stretch = max_stretch.max(stretch);
        sum += stretch;
        count += 1;
    }
    let q = pairs.len() as f64;
    (
        q / oracle_s.max(1e-12),
        q / exact_s.max(1e-12),
        max_stretch,
        if count > 0 { sum / count as f64 } else { 0.0 },
    )
}

fn main() {
    let quick = has_flag("--quick");
    let n: usize = parse_flag("--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 256 } else { 800 });
    let queries: usize = parse_flag("--queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 160 } else { 512 });
    let seed: u64 = parse_flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20150625);
    let load_n: usize = parse_flag("--load-n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    let json_path = parse_flag("--json").unwrap_or_else(|| "BENCH_9.json".into());
    let mut report = Report::new("benchsuite", Some(PathBuf::from(&json_path)));

    // The scenario axes. "gnp" is the connected Erdős–Rényi-ish family
    // (`Family::Random` in the workload registry).
    let families = [
        (Family::Random, "gnp"),
        (Family::Rmat, "rmat"),
        (Family::Grid2d, "grid2d"),
    ];
    let weightings: [(&str, Option<f64>); 2] = [("unweighted", None), ("weighted", Some(64.0))];
    let policies: Vec<ExecutionPolicy> = if quick {
        vec![
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 4 },
        ]
    } else {
        vec![
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 2 },
            ExecutionPolicy::Parallel { threads: 4 },
            ExecutionPolicy::Parallel { threads: 8 },
        ]
    };
    let client_counts: Vec<usize> = if quick { vec![1, 32] } else { vec![1, 8, 32] };

    println!(
        "# benchsuite — {} × {} × {} policies × {{fresh, snapshot}} × {:?} clients | n≈{n}, {queries} queries{}\n",
        families.map(|(_, f)| f).join("/"),
        weightings.map(|(w, _)| w).join("/"),
        policies.len(),
        client_counts,
        if quick { " (--quick)" } else { "" },
    );

    let mut build_table = Table::new([
        "family",
        "weights",
        "n",
        "m",
        "build (s)",
        "work",
        "depth",
        "peak bytes",
        "hopset",
        "snapshot bytes",
    ]);
    let mut serve_table = Table::new([
        "family",
        "weights",
        "source",
        "policy",
        "clients",
        "qps",
        "p50 (ms)",
        "p99 (ms)",
        "p999 (ms)",
        "batches",
        "largest",
        "identical",
    ]);
    let mut serve_net_table = Table::new([
        "family",
        "weights",
        "policy",
        "clients",
        "qps",
        "p50 (ms)",
        "p99 (ms)",
        "trips",
        "coalesced",
        "identical",
    ]);
    let mut load_table = Table::new([
        "family",
        "weights",
        "n",
        "v1 bytes",
        "v2 bytes",
        "v1 decode (s)",
        "v2 mmap (s)",
        "v2 read (s)",
        "first query (s)",
        "mmap speedup",
    ]);
    let mut cached_table = Table::new([
        "family",
        "weights",
        "policy",
        "clients",
        "qps warm",
        "qps cached",
        "hits",
        "identical",
    ]);
    let mut swap_table = Table::new([
        "family",
        "weights",
        "policy",
        "clients",
        "qps steady",
        "qps rebuild",
        "rebuild (s)",
        "swap (ms)",
        "epoch",
        "identical",
    ]);
    let mut baselines_table = Table::new([
        "family",
        "weights",
        "oracle qps",
        "dijkstra qps",
        "speedup",
        "max stretch",
        "mean stretch",
    ]);
    let mut compress_table = Table::new([
        "family",
        "weights",
        "disk plain",
        "disk comp",
        "adj plain",
        "adj comp",
        "plain qps",
        "comp qps",
        "identical",
    ]);
    let mut frontier_table = Table::new([
        "algo",
        "family",
        "n",
        "btree (s)",
        "calendar (s)",
        "speedup",
    ]);
    let mut shard_table = Table::new([
        "family",
        "weights",
        "shards",
        "boundary",
        "mono build (s)",
        "shard build (s)",
        "mono qps",
        "shard qps",
        "max stretch",
        "mean stretch",
        "identical",
    ]);
    let mut open_loop_table = Table::new([
        "offered qps",
        "arrivals",
        "behind",
        "achieved qps",
        "p50 (ms)",
        "p99 (ms)",
        "identical",
    ]);
    // the wire axis stays small — each cell pays real TCP round trips
    let net_policies = [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Parallel { threads: 4 },
    ];
    let net_clients = [1usize, 8];
    let mut mismatches = 0usize;
    let mut cells = 0usize;

    for (fi, (family, fname)) in families.into_iter().enumerate() {
        for (wname, ratio) in weightings {
            let gseed = seed
                .wrapping_add(fi as u64 * 1009)
                .wrapping_add(if ratio.is_some() { 499 } else { 0 });
            let g = match ratio {
                Some(u) => family.instantiate_weighted(n, u, gseed),
                None => family.instantiate(n, gseed),
            };
            let params = HopsetParams::default();

            // --- build, measured ------------------------------------------
            reset_peak();
            let base = live_bytes();
            let start = Instant::now();
            let run = OracleBuilder::new()
                .params(params)
                .seed(Seed(gseed))
                .build(&g)
                .unwrap_or_else(|e| {
                    die(format_args!("{fname}/{wname}: preprocessing failed: {e}"))
                });
            let build_s = start.elapsed().as_secs_f64();
            let peak_bytes = peak_above(base);

            // --- snapshot round trip --------------------------------------
            let meta = OracleMeta::of_run(&run, params);
            let mut buf = Vec::new();
            write_oracle(&mut buf, &run.artifact, &meta)
                .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: snapshot write: {e}")));
            let (loaded, _) = read_oracle(buf.as_slice())
                .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: snapshot reload: {e}")));

            build_table.row([
                fname.to_string(),
                wname.to_string(),
                fmt_u(g.n() as u64),
                fmt_u(g.m() as u64),
                fmt_f(build_s),
                fmt_u(run.cost.work),
                fmt_u(run.cost.depth),
                fmt_u(peak_bytes as u64),
                fmt_u(run.artifact.hopset_size() as u64),
                fmt_u(buf.len() as u64),
            ]);

            // --- the sequential per-pair reference ------------------------
            let fresh = Arc::new(run.artifact);
            let loaded = Arc::new(loaded);
            let pairs = random_pairs(g.n(), queries, gseed ^ 0x5E2A11CE);
            let reference: Vec<QueryResult> =
                pairs.iter().map(|&(s, t)| fresh.query(s, t).0).collect();

            // --- serving cells --------------------------------------------
            for (sname, oracle) in [("fresh", &fresh), ("snapshot", &loaded)] {
                for &policy in &policies {
                    for &clients in &client_counts {
                        let service = OracleService::from_arc(
                            Arc::clone(oracle) as Arc<dyn DistanceOracle>,
                            ServiceConfig::with_policy(policy),
                        );
                        let answers = run_clients(&service, &pairs, clients);
                        let identical = answers == reference;
                        mismatches += usize::from(!identical);
                        cells += 1;
                        let stats = service.stats();
                        serve_table.row([
                            fname.to_string(),
                            wname.to_string(),
                            sname.to_string(),
                            policy.to_string(),
                            fmt_u(clients as u64),
                            fmt_f(stats.qps),
                            fmt_f(stats.p50_ms),
                            fmt_f(stats.p99_ms),
                            fmt_f(stats.p999_ms),
                            fmt_u(stats.batches),
                            fmt_u(stats.largest_batch as u64),
                            if identical { "yes" } else { "NO" }.to_string(),
                        ]);
                    }
                }
            }

            // --- wire cells: the same workload through loopback TCP -------
            for &policy in &net_policies {
                for &clients in &net_clients {
                    let service = Arc::new(OracleService::from_arc(
                        Arc::clone(&fresh) as Arc<dyn DistanceOracle>,
                        ServiceConfig::with_policy(policy),
                    ));
                    let mut server = NetServer::bind(
                        "127.0.0.1:0",
                        Arc::clone(&service),
                        ServerConfig::default(),
                    )
                    .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: bind: {e}")));
                    let (answers, wire) = run_net_clients(server.local_addr(), &pairs, clients);
                    server.shutdown();
                    let identical = answers == reference;
                    mismatches += usize::from(!identical);
                    cells += 1;
                    let coalesced = service.stats().largest_batch;
                    serve_net_table.row([
                        fname.to_string(),
                        wname.to_string(),
                        policy.to_string(),
                        fmt_u(clients as u64),
                        fmt_f(wire.qps),
                        fmt_f(wire.p50_ms),
                        fmt_f(wire.p99_ms),
                        fmt_u(wire.batches),
                        fmt_u(coalesced as u64),
                        if identical { "yes" } else { "NO" }.to_string(),
                    ]);
                }
            }

            // --- load cells: v1 decode vs v2 mmap vs v2 read --------------
            let probe = pairs.first().copied().unwrap_or((0, 0));
            let expect_probe = fresh.query(probe.0, probe.1).0;
            let cell = measure_loads(
                &format!("psh_benchsuite_{fname}_{wname}"),
                &buf,
                &fresh,
                &meta,
                probe,
            );
            for answer in cell.answers {
                mismatches += usize::from(answer != expect_probe);
                cells += 1;
            }
            load_table.row([
                fname.to_string(),
                wname.to_string(),
                fmt_u(g.n() as u64),
                fmt_u(cell.v1_bytes),
                fmt_u(cell.v2_bytes),
                fmt_s(cell.v1_s),
                fmt_s(cell.mmap_s),
                fmt_s(cell.read_s),
                fmt_s(cell.mmap_query_s),
                fmt_f(cell.v1_s / cell.mmap_s.max(1e-12)),
            ]);

            // --- cached serving cells -------------------------------------
            for &policy in &net_policies {
                let service = OracleService::from_arc(
                    Arc::clone(&fresh) as Arc<dyn DistanceOracle>,
                    ServiceConfig {
                        policy,
                        max_batch: 256,
                        cache: Some(CacheConfig {
                            capacity: 1024,
                            seed: gseed,
                        }),
                    },
                );
                let warm = run_clients(&service, &pairs, 8);
                let warm_qps = service.stats().qps;
                service.reset_stats();
                let hot = run_clients(&service, &pairs, 8);
                let hot_stats = service.stats();
                let identical = warm == reference && hot == reference;
                mismatches += usize::from(!identical);
                cells += 1;
                cached_table.row([
                    fname.to_string(),
                    wname.to_string(),
                    policy.to_string(),
                    fmt_u(8),
                    fmt_f(warm_qps),
                    fmt_f(hot_stats.qps),
                    fmt_u(hot_stats.cache_hits),
                    if identical { "yes" } else { "NO" }.to_string(),
                ]);
            }

            // --- hot-swap cells: serve while a rebuild runs ----------------
            for &policy in &net_policies {
                let cell = measure_swap(&g, &fresh, params, gseed, &pairs, policy, 8);
                mismatches += usize::from(!cell.identical);
                cells += 1;
                swap_table.row([
                    fname.to_string(),
                    wname.to_string(),
                    policy.to_string(),
                    fmt_u(8),
                    fmt_f(cell.qps_steady),
                    fmt_f(cell.qps_rebuild),
                    fmt_s(cell.rebuild_s),
                    fmt_s(cell.swap_ms),
                    fmt_u(cell.epoch),
                    if cell.identical { "yes" } else { "NO" }.to_string(),
                ]);
            }

            // --- compressed-adjacency cells: disk, resident, and qps ------
            {
                let dir = std::env::temp_dir();
                let pid = std::process::id();
                let plain_path = dir.join(format!("psh_bench_{fname}_{wname}.{pid}.plain.snap"));
                let comp_path = dir.join(format!("psh_bench_{fname}_{wname}.{pid}.comp.snap"));
                save_oracle_v2(&plain_path, &fresh, &meta)
                    .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: stage plain v2: {e}")));
                save_oracle_v2_with(&comp_path, &fresh, &meta, true)
                    .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: stage comp v2: {e}")));
                let disk = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
                // resident adjacency structure: the slabs queries touch
                // per neighbor visit (weights/edges are shared by both
                // encodings, so they cancel out of the comparison)
                let adjacency_bytes = |p: &Path| -> u64 {
                    let bytes = std::fs::read(p)
                        .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: read staged: {e}")));
                    inspect_v2(&bytes)
                        .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: inspect: {e}")))
                        .sections
                        .iter()
                        .filter(|(_, name, ..)| {
                            matches!(
                                name.as_str(),
                                "graph.targets"
                                    | "graph.eids"
                                    | "graph.comp_offsets"
                                    | "graph.comp_data"
                            )
                        })
                        .map(|s| s.3)
                        .sum()
                };
                let serve_qps = |p: &Path| -> (f64, Vec<QueryResult>) {
                    let (oracle, _) = load_oracle_v2(p, LoadMode::Mmap)
                        .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: mmap load: {e}")));
                    let mut best = f64::INFINITY;
                    let mut answers = Vec::new();
                    for _ in 0..3 {
                        let t0 = Instant::now();
                        let (a, _) = oracle.query_batch(&pairs, ExecutionPolicy::Sequential);
                        best = best.min(t0.elapsed().as_secs_f64());
                        answers = a;
                    }
                    (pairs.len() as f64 / best.max(1e-12), answers)
                };
                let (plain_qps, plain_answers) = serve_qps(&plain_path);
                let (comp_qps, comp_answers) = serve_qps(&comp_path);
                let identical = plain_answers == reference && comp_answers == reference;
                mismatches += usize::from(!identical);
                cells += 1;
                compress_table.row([
                    fname.to_string(),
                    wname.to_string(),
                    fmt_u(disk(&plain_path)),
                    fmt_u(disk(&comp_path)),
                    fmt_u(adjacency_bytes(&plain_path)),
                    fmt_u(adjacency_bytes(&comp_path)),
                    fmt_f(plain_qps),
                    fmt_f(comp_qps),
                    if identical { "yes" } else { "NO" }.to_string(),
                ]);
                let _ = std::fs::remove_file(&plain_path);
                let _ = std::fs::remove_file(&comp_path);
            }

            // --- exact-baseline head-to-head ------------------------------
            let (oracle_qps, exact_qps, max_stretch, mean_stretch) =
                head_to_head(&g, &fresh, &pairs, &reference);
            baselines_table.row([
                fname.to_string(),
                wname.to_string(),
                fmt_f(oracle_qps),
                fmt_f(exact_qps),
                fmt_f(oracle_qps / exact_qps.max(1e-12)),
                fmt_f(max_stretch),
                fmt_f(mean_stretch),
            ]);

            // --- sharded-vs-monolithic cells ------------------------------
            // Cross-shard composition scans boundary candidates, so its
            // per-query cost scales with the cut — a few dozen pairs are
            // plenty to measure it, and every answer is still gated: the
            // Sequential and Parallel{4} runs must match bit-for-bit, and
            // each answer must sit inside the documented [exact, 3×exact]
            // stretch sandwich.
            {
                let spairs = &pairs[..pairs.len().min(32)];
                let t0 = Instant::now();
                let srun = ShardedOracleBuilder::new(4)
                    .params(params)
                    .seed(Seed(gseed))
                    .execution(ExecutionPolicy::from_env())
                    .build(&g)
                    .unwrap_or_else(|e| die(format_args!("{fname}/{wname}: sharded build: {e}")));
                let shard_build_s = t0.elapsed().as_secs_f64();
                let sharded = srun.artifact;
                let boundary = sharded.plan().boundary_global().len();

                let t0 = Instant::now();
                let _ = fresh.query_batch(spairs, ExecutionPolicy::Sequential);
                let mono_qps = spairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
                let t0 = Instant::now();
                let (seq_answers, seq_cost) =
                    sharded.query_batch(spairs, ExecutionPolicy::Sequential);
                let shard_qps = spairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
                let (par_answers, par_cost) =
                    sharded.query_batch(spairs, ExecutionPolicy::Parallel { threads: 4 });
                let identical = seq_answers == par_answers && seq_cost == par_cost;

                let mut shard_max = 1.0f64;
                let mut stretch_sum = 0.0f64;
                let mut stretched = 0usize;
                let mut sound = true;
                for (&(s, t), a) in spairs.iter().zip(&seq_answers) {
                    let exact = dijkstra_pair(&g, s, t);
                    if exact == INF {
                        sound &= !a.distance.is_finite();
                        continue;
                    }
                    let exact = exact as f64;
                    sound &= a.distance >= exact - 1e-9 && a.distance <= 3.0 * exact + 1e-9;
                    if exact > 0.0 {
                        let r = a.distance / exact;
                        shard_max = shard_max.max(r);
                        stretch_sum += r;
                        stretched += 1;
                    }
                }
                let ok = identical && sound;
                mismatches += usize::from(!ok);
                cells += 1;
                if !ok {
                    eprintln!(
                        "shard cell {fname}/{wname}: identical={identical} stretch-sound={sound}"
                    );
                }
                shard_table.row([
                    fname.to_string(),
                    wname.to_string(),
                    fmt_u(sharded.num_shards() as u64),
                    fmt_u(boundary as u64),
                    fmt_f(build_s),
                    fmt_f(shard_build_s),
                    fmt_f(mono_qps),
                    fmt_f(shard_qps),
                    fmt_f(shard_max),
                    fmt_f(stretch_sum / stretched.max(1) as f64),
                    if ok { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    // --- the big load row: where the zero-copy layout must win ------------
    println!("building the n={load_n} load-latency oracle …");
    let big_seed = seed ^ 0xB16;
    let g_big = Family::Grid2d.instantiate(load_n, big_seed);
    let params = HopsetParams::default();
    let run_big = OracleBuilder::new()
        .params(params)
        .seed(Seed(big_seed))
        .build(&g_big)
        .unwrap_or_else(|e| die(format_args!("load-n build failed: {e}")));
    let meta_big = OracleMeta::of_run(&run_big, params);
    let mut buf_big = Vec::new();
    write_oracle(&mut buf_big, &run_big.artifact, &meta_big)
        .unwrap_or_else(|e| die(format_args!("load-n snapshot write: {e}")));
    let probe_big = (0u32, (g_big.n() - 1) as u32);
    let expect_big = run_big.artifact.query(probe_big.0, probe_big.1).0;
    let cell = measure_loads(
        "psh_benchsuite_big",
        &buf_big,
        &run_big.artifact,
        &meta_big,
        probe_big,
    );
    for answer in cell.answers {
        mismatches += usize::from(answer != expect_big);
        cells += 1;
    }
    let big_speedup = cell.v1_s / cell.mmap_s.max(1e-12);
    load_table.row([
        "grid2d".to_string(),
        "unweighted".to_string(),
        fmt_u(g_big.n() as u64),
        fmt_u(cell.v1_bytes),
        fmt_u(cell.v2_bytes),
        fmt_s(cell.v1_s),
        fmt_s(cell.mmap_s),
        fmt_s(cell.read_s),
        fmt_s(cell.mmap_query_s),
        fmt_f(big_speedup),
    ]);
    println!(
        "load latency at n={}: v1 decode {:.4}s → v2 mmap open {:.4}s ({big_speedup:.1}× faster; first mapped query {:.4}s)",
        g_big.n(),
        cell.v1_s,
        cell.mmap_s,
        cell.mmap_query_s,
    );
    drop((run_big, g_big, buf_big));

    // --- frontier race: calendar bucket queue vs the BTree baseline -------
    // Sequential executor: the race isolates the queue data structure,
    // and both queues feed the identical drive_on engine, so the
    // distance/parent arrays must be bitwise equal — that equality is a
    // gated cell like any serving cell.
    println!("racing the calendar bucket queue against the BTree baseline …");
    let exec = Executor::sequential();
    let frontier_sizes: Vec<usize> = if quick {
        vec![n, 30_000]
    } else {
        vec![n, 20_000, 120_000]
    };
    for (family, fname) in [(Family::Random, "gnp"), (Family::Grid2d, "grid2d")] {
        for &fsize in &frontier_sizes {
            let g = family.instantiate_weighted(fsize, 64.0, seed ^ 0xF07);
            let delta = default_delta(&g);
            type Sssp = (psh_graph::traversal::SsspResult, Cost);
            type QueuedRun<'a> = Box<dyn Fn(QueueKind) -> Sssp + 'a>;
            let algos: [(&str, QueuedRun<'_>); 2] = [
                (
                    "dial",
                    Box::new(|kind| dial_sssp_queued(&exec, &g, &[(0, 0)], INF, kind)),
                ),
                (
                    "delta",
                    Box::new(|kind| delta_stepping_queued(&exec, &g, 0, delta, kind)),
                ),
            ];
            for (aname, run) in &algos {
                let race = |kind: QueueKind| -> (f64, psh_graph::traversal::SsspResult) {
                    let mut best = f64::INFINITY;
                    let mut result = None;
                    for _ in 0..5 {
                        let t0 = Instant::now();
                        let (r, _) = run(kind);
                        best = best.min(t0.elapsed().as_secs_f64());
                        result = Some(r);
                    }
                    (best, result.expect("five reps ran"))
                };
                let (btree_s, btree_result) = race(QueueKind::Btree);
                let (calendar_s, calendar_result) = race(QueueKind::Calendar);
                let identical = btree_result == calendar_result;
                mismatches += usize::from(!identical);
                cells += 1;
                if !identical {
                    eprintln!(
                        "frontier race {aname}/{fname}/n={fsize}: the two queues \
                         produced different SSSP artifacts"
                    );
                }
                frontier_table.row([
                    aname.to_string(),
                    fname.to_string(),
                    fmt_u(g.n() as u64),
                    fmt_s(btree_s),
                    fmt_s(calendar_s),
                    fmt_f(btree_s / calendar_s.max(1e-12)),
                ]);
            }
        }
    }

    // --- open-loop sweep: latency vs offered load over loopback TCP -------
    // Arrivals follow a seeded Poisson process at each offered rate
    // (psh-client --open-loop semantics): latency runs from the query's
    // *scheduled* arrival, so queueing delay lands in the tail instead of
    // silently throttling the workload — the full latency-vs-offered-load
    // curve, one row per rate.
    println!("sweeping open-loop offered load over loopback TCP …");
    let ol_seed = seed ^ 0x09E2;
    let g_ol = Family::Random.instantiate(n, ol_seed);
    let run_ol = OracleBuilder::new()
        .params(HopsetParams::default())
        .seed(Seed(ol_seed))
        .build(&g_ol)
        .unwrap_or_else(|e| die(format_args!("open-loop build failed: {e}")));
    let ol_oracle = Arc::new(run_ol.artifact);
    let ol_pairs = random_pairs(g_ol.n(), queries.min(400), ol_seed ^ 0x0731);
    let ol_reference: Vec<QueryResult> = ol_pairs
        .iter()
        .map(|&(s, t)| ol_oracle.query(s, t).0)
        .collect();
    let rates: Vec<f64> = if quick {
        vec![500.0, 4000.0]
    } else {
        vec![250.0, 1000.0, 4000.0, 16000.0]
    };
    let ol_service = Arc::new(OracleService::from_arc(
        Arc::clone(&ol_oracle) as Arc<dyn DistanceOracle>,
        ServiceConfig::with_policy(ExecutionPolicy::Sequential),
    ));
    let mut ol_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&ol_service),
        ServerConfig::default(),
    )
    .unwrap_or_else(|e| die(format_args!("open-loop bind: {e}")));
    for &rate in &rates {
        let mut client =
            NetClient::connect(ol_server.local_addr()).expect("open-loop loopback connect");
        let start = Instant::now();
        let mut x = (ol_seed ^ 0x9E37_79B9_7F4A_7C15) | 1;
        let mut scheduled_s = 0.0f64;
        let mut behind = 0usize;
        let mut answers = Vec::with_capacity(ol_pairs.len());
        let mut lats_ms = Vec::with_capacity(ol_pairs.len());
        for &(s, t) in &ol_pairs {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            scheduled_s += -(1.0 - u).ln() / rate;
            let now_s = start.elapsed().as_secs_f64();
            if now_s < scheduled_s {
                std::thread::sleep(std::time::Duration::from_secs_f64(scheduled_s - now_s));
            } else {
                behind += 1;
            }
            let a = client.query(s, t).expect("open-loop query");
            lats_ms.push((start.elapsed().as_secs_f64() - scheduled_s) * 1e3);
            answers.push(a);
        }
        let elapsed_s = start.elapsed().as_secs_f64();
        let identical = answers == ol_reference;
        mismatches += usize::from(!identical);
        cells += 1;
        let p50 = psh_bench::stats::percentile(&lats_ms, 50.0);
        let p99 = psh_bench::stats::percentile(&lats_ms, 99.0);
        open_loop_table.row([
            fmt_f(rate),
            fmt_u(answers.len() as u64),
            fmt_u(behind as u64),
            fmt_f(answers.len() as f64 / elapsed_s.max(1e-12)),
            fmt_f(p50),
            fmt_f(p99),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ol_server.shutdown();

    println!("\n## preprocessing\n");
    build_table.print();
    println!("\n## serving matrix\n");
    serve_table.print();
    println!("\n## wire serving matrix (loopback TCP)\n");
    serve_net_table.print();
    println!("\n## snapshot load latency (open, then first query)\n");
    load_table.print();
    println!("\n## cached serving matrix (answer cache on)\n");
    cached_table.print();
    println!("\n## hot-swap matrix (serve while rebuilding, then swap)\n");
    swap_table.print();
    println!("\n## exact-baseline head-to-head (sequential)\n");
    baselines_table.print();
    println!("\n## compressed adjacency (plain vs delta-gap v2 snapshots)\n");
    compress_table.print();
    println!("\n## frontier race (BTree baseline vs calendar queue, sequential)\n");
    frontier_table.print();
    println!("\n## sharded vs monolithic (4 shards, stretch gated at 3×)\n");
    shard_table.print();
    println!("\n## open-loop latency vs offered load (loopback TCP, sequential)\n");
    open_loop_table.print();

    report
        .meta("schema_version", SCHEMA_VERSION)
        .meta("quick", quick)
        .meta("n", n)
        .meta("queries", queries)
        .meta("load_n", load_n)
        .meta("seed", seed)
        .meta("mmap_speedup_big", big_speedup)
        .meta("cells", cells)
        .meta("mismatches", mismatches);
    report.push_table("build", &build_table);
    report.push_table("serve", &serve_table);
    report.push_table("serve_net", &serve_net_table);
    report.push_table("load", &load_table);
    report.push_table("serve_cached", &cached_table);
    report.push_table("swap", &swap_table);
    report.push_table("baselines", &baselines_table);
    report.push_table("compress", &compress_table);
    report.push_table("frontier", &frontier_table);
    report.push_table("shard", &shard_table);
    report.push_table("open_loop", &open_loop_table);
    report.finish();

    if mismatches > 0 {
        eprintln!(
            "\nFAIL: {mismatches}/{cells} scenario cell(s) diverged from the sequential reference"
        );
        std::process::exit(1);
    }
    println!("\nall {cells} scenario cells byte-identical to the sequential reference ✓");
}
