//! `psh-snap` — snapshot maintenance: inspect and migrate oracle files.
//!
//! Usage:
//! ```text
//! psh-snap inspect PATH            # version, kind, scalars, section map
//! psh-snap migrate SRC DST         # re-encode any oracle snapshot as v2
//! ```
//!
//! `inspect` prints a v1 file's header summary, or a v2 file's full
//! section directory (tag, name, offset, length — every offset 64-byte
//! aligned by construction) and then deep-verifies the content (the
//! exact fill-sweep replays the serving fast path skips), so tampering
//! that `Verify::Bounds` would serve is caught here. `migrate` upgrades a v1 file to the
//! zero-copy v2 layout (or normalizes an existing v2 file); the logical
//! content is preserved exactly — re-saving the migrated oracle as v1
//! reproduces the original bytes, and `psh-serve`/`psh-server` answer
//! byte-identically from either version.
//!
//! Exits non-zero with a one-line error on unusable input; never panics
//! on malformed files.

use psh_core::snapshot::{
    inspect_v2, load_oracle, migrate_oracle_file, snapshot_version, verify_oracle_v2,
    OracleSections,
};
use psh_graph::LoadMode;

const PROG: &str = "psh-snap";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("{PROG}: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: {PROG} inspect PATH | {PROG} migrate SRC DST");
    std::process::exit(2);
}

fn human(len: u64) -> String {
    if len >= 1 << 20 {
        format!("{:.1} MiB", len as f64 / (1 << 20) as f64)
    } else if len >= 1 << 10 {
        format!("{:.1} KiB", len as f64 / (1 << 10) as f64)
    } else {
        format!("{len} B")
    }
}

fn inspect(path: &str) {
    let version =
        snapshot_version(path).unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
    match version {
        1 => {
            // v1 is a stream: summarize it by decoding (which also
            // verifies it end to end)
            let (oracle, meta) =
                load_oracle(path).unwrap_or_else(|e| die(format_args!("cannot load {path}: {e}")));
            println!("{path}: v1 oracle snapshot (stream-decoded)");
            println!(
                "  n={} m={} | hopset size {} | hop budget {} | seed {}",
                oracle.graph().n(),
                oracle.graph().m(),
                oracle.hopset_size(),
                oracle
                    .hop_budget()
                    .map_or("per-band".to_string(), |h| h.to_string()),
                meta.seed
            );
            println!("  build cost: {}", meta.build_cost);
            println!("  (run `{PROG} migrate` to upgrade to the zero-copy v2 layout)");
        }
        2 => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
            let OracleSections {
                kind,
                n,
                m,
                mode,
                bands,
                sections,
            } = inspect_v2(&bytes).unwrap_or_else(|e| die(format_args!("bad v2 file {path}: {e}")));
            println!(
                "{path}: v2 oracle snapshot (kind {kind}, {}, mmap-able)",
                human(bytes.len() as u64)
            );
            println!(
                "  n={n} m={m} | mode {} | {bands} band(s)",
                if mode == 0 { "unweighted" } else { "weighted" }
            );
            println!(
                "  {:>6}  {:<26} {:>12} {:>12}",
                "tag", "section", "offset", "bytes"
            );
            for (tag, name, offset, len) in &sections {
                println!("  {tag:>6}  {name:<26} {offset:>12} {len:>12}");
            }
            // the full content replay serving skips — inspect is where
            // an operator wants tampering caught
            match verify_oracle_v2(path, LoadMode::Read) {
                Ok(_) => println!("  deep verification: ok (content replays byte-identically)"),
                Err(e) => die(format_args!("{path} fails deep verification: {e}")),
            }
        }
        v => die(format_args!("{path}: unsupported snapshot version {v}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inspect") => match args.get(1) {
            Some(path) if args.len() == 2 => inspect(path),
            _ => usage(),
        },
        Some("migrate") => match (args.get(1), args.get(2)) {
            (Some(src), Some(dst)) if args.len() == 3 => {
                let (from, meta) = migrate_oracle_file(src, dst)
                    .unwrap_or_else(|e| die(format_args!("cannot migrate {src}: {e}")));
                println!(
                    "{src} (v{from}) -> {dst} (v2) | seed {} | build cost {}",
                    meta.seed, meta.build_cost
                );
            }
            _ => usage(),
        },
        _ => usage(),
    }
}
