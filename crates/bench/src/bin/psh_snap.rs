//! `psh-snap` — snapshot maintenance: inspect, migrate, and mutate
//! oracle files.
//!
//! Usage:
//! ```text
//! psh-snap inspect PATH            # version, kind, scalars, section map
//! psh-snap migrate SRC DST         # re-encode any oracle snapshot as v2
//! psh-snap migrate SRC DST --compress  # … with delta-compressed adjacency
//! psh-snap journal PATH            # inspect PATH.journal (records, ops)
//! psh-snap journal PATH --apply F  # append one record of edge updates
//! psh-snap compact PATH            # fold PATH.journal into the base
//! ```
//!
//! `inspect` and `compact` also understand sharded `PSHM` manifests
//! (written by `psh-serve --shards K --snapshot PATH`): `inspect`
//! summarizes the partition (shard count, per-shard n/m/epoch/cliques,
//! boundary and quotient sizes, pending journal records) from the
//! manifest alone, and `compact` folds each shard's journal into its
//! own `PATH.shardS` snapshot — shards without a journal are untouched
//! on disk — then rewrites the overlay and the manifest once. Per-shard
//! journals hold **shard-local** vertex ids; append to them by running
//! `journal` against the component file itself
//! (`psh-snap journal PATH.shardS --apply F`), which is a plain v2
//! snapshot.
//!
//! `journal --apply` reads edge updates from file `F` (one op per line:
//! `add U V W` or `del U V`; blank lines and `#` comments ignored),
//! validates them against the base snapshot's vertex count, and appends
//! them as one atomic journal record to `PATH.journal`. A server watching
//! that journal (`psh-server --watch-journal`) picks the record up on its
//! next poll — or immediately via `psh-client --reload` — and hot-swaps.
//! `compact` folds the journal into the base snapshot (same format
//! version, atomic overwrite) and removes the journal.
//!
//! `inspect` prints a v1 file's header summary, or a v2 file's full
//! section directory (tag, name, offset, length — every offset 64-byte
//! aligned by construction) and then deep-verifies the content (the
//! exact fill-sweep replays the serving fast path skips), so tampering
//! that `Verify::Bounds` would serve is caught here. `migrate` upgrades a v1 file to the
//! zero-copy v2 layout (or normalizes an existing v2 file); the logical
//! content is preserved exactly — re-saving the migrated oracle as v1
//! reproduces the original bytes, and `psh-serve`/`psh-server` answer
//! byte-identically from either version. With `--compress` the output
//! stores the adjacency as a varint delta-gap stream
//! (`graph.comp_offsets`/`graph.comp_data` sections) instead of the
//! plain target/edge-id slabs — smaller on disk and resident, still
//! mmap-served, still answer-identical; migrate again without the flag
//! to get the plain layout back, byte-for-byte.
//!
//! Exits non-zero with a one-line error on unusable input; never panics
//! on malformed files.

use psh_core::snapshot::{
    append_journal, compact_oracle, compact_sharded, inspect_sharded, inspect_v2,
    is_sharded_manifest, journal_path, load_journal, load_oracle, migrate_oracle_file_with,
    snapshot_version, verify_oracle_v2, OracleSections,
};
use psh_graph::{DeltaOp, GraphDelta, LoadMode};

const PROG: &str = "psh-snap";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("{PROG}: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: {PROG} inspect PATH | {PROG} migrate SRC DST [--compress] | \
         {PROG} journal PATH [--apply OPSFILE] | {PROG} compact PATH"
    );
    std::process::exit(2);
}

fn human(len: u64) -> String {
    if len >= 1 << 20 {
        format!("{:.1} MiB", len as f64 / (1 << 20) as f64)
    } else if len >= 1 << 10 {
        format!("{:.1} KiB", len as f64 / (1 << 10) as f64)
    } else {
        format!("{len} B")
    }
}

fn inspect_manifest(path: &str) {
    let info =
        inspect_sharded(path).unwrap_or_else(|e| die(format_args!("bad manifest {path}: {e}")));
    println!(
        "{path}: sharded oracle manifest (PSHM, {} shard(s), one v2 snapshot each)",
        info.shards.len()
    );
    println!(
        "  n={} | boundary {} vertex(es) | {} cut edge(s) | quotient m={} | β={} | η={} | seed {}",
        info.n, info.boundary, info.cut_edges, info.quotient_m, info.beta, info.eta, info.seed
    );
    match info.overlay {
        Some((on, om)) => println!("  overlay: n={on} m={om} ({path}.overlay)"),
        None => println!("  overlay: none (no boundary)"),
    }
    if let Some(cap) = info.max_candidates {
        println!("  candidate cap: {cap} (sound upper bounds; stretch bound holds uncapped)");
    }
    println!(
        "  {:>6} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "shard", "epoch", "n", "m", "cliques", "journal"
    );
    for (s, row) in info.shards.iter().enumerate() {
        println!(
            "  {s:>6} {:>8} {:>10} {:>10} {:>9} {:>9}",
            row.epoch, row.n, row.m, row.cliques, row.journal_records
        );
    }
    let pending: u64 = info.shards.iter().map(|r| r.journal_records).sum();
    if pending > 0 {
        println!("  ({pending} pending journal record(s) — run `{PROG} compact {path}`)");
    }
}

fn inspect(path: &str) {
    if is_sharded_manifest(path) {
        return inspect_manifest(path);
    }
    let version =
        snapshot_version(path).unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
    match version {
        1 => {
            // v1 is a stream: summarize it by decoding (which also
            // verifies it end to end)
            let (oracle, meta) =
                load_oracle(path).unwrap_or_else(|e| die(format_args!("cannot load {path}: {e}")));
            println!("{path}: v1 oracle snapshot (stream-decoded)");
            println!(
                "  n={} m={} | hopset size {} | hop budget {} | seed {}",
                oracle.graph().n(),
                oracle.graph().m(),
                oracle.hopset_size(),
                oracle
                    .hop_budget()
                    .map_or("per-band".to_string(), |h| h.to_string()),
                meta.seed
            );
            println!("  build cost: {}", meta.build_cost);
            println!("  (run `{PROG} migrate` to upgrade to the zero-copy v2 layout)");
        }
        2 => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
            let OracleSections {
                kind,
                n,
                m,
                mode,
                bands,
                sections,
            } = inspect_v2(&bytes).unwrap_or_else(|e| die(format_args!("bad v2 file {path}: {e}")));
            println!(
                "{path}: v2 oracle snapshot (kind {kind}, {}, mmap-able)",
                human(bytes.len() as u64)
            );
            println!(
                "  n={n} m={m} | mode {} | {bands} band(s)",
                if mode == 0 { "unweighted" } else { "weighted" }
            );
            println!(
                "  {:>6}  {:<26} {:>12} {:>12}",
                "tag", "section", "offset", "bytes"
            );
            for (tag, name, offset, len) in &sections {
                println!("  {tag:>6}  {name:<26} {offset:>12} {len:>12}");
            }
            // the full content replay serving skips — inspect is where
            // an operator wants tampering caught
            match verify_oracle_v2(path, LoadMode::Read) {
                Ok(_) => println!("  deep verification: ok (content replays byte-identically)"),
                Err(e) => die(format_args!("{path} fails deep verification: {e}")),
            }
        }
        v => die(format_args!("{path}: unsupported snapshot version {v}")),
    }
}

/// The base snapshot's vertex count — the bound journal ops are
/// validated against before anything is appended.
fn base_n(path: &str) -> usize {
    let version =
        snapshot_version(path).unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
    match version {
        1 => {
            let (oracle, _) =
                load_oracle(path).unwrap_or_else(|e| die(format_args!("cannot load {path}: {e}")));
            oracle.graph().n()
        }
        2 => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| die(format_args!("cannot read {path}: {e}")));
            let sections =
                inspect_v2(&bytes).unwrap_or_else(|e| die(format_args!("bad v2 file {path}: {e}")));
            sections.n as usize
        }
        v => die(format_args!("{path}: unsupported snapshot version {v}")),
    }
}

/// Parse an ops file (`add U V W` / `del U V` lines) into one validated
/// delta against a graph with `n` vertices.
fn parse_ops_file(path: &str, n: usize) -> GraphDelta {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(format_args!("cannot read ops file {path}: {e}")));
    let mut delta = GraphDelta::new(n);
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let bad = |what: &str| -> ! {
            die(format_args!(
                "{path}:{lineno}: {what} (want `add U V W` or `del U V`): {raw}"
            ))
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        let num = |s: &str| s.parse::<u64>().unwrap_or_else(|_| bad("bad number"));
        let result = match fields.as_slice() {
            ["add", u, v, w] => delta.insert(num(u) as u32, num(v) as u32, num(w)),
            ["del", u, v] => delta.delete(num(u) as u32, num(v) as u32),
            _ => bad("unrecognized op"),
        };
        result.unwrap_or_else(|e| die(format_args!("{path}:{lineno}: invalid op: {e}")));
    }
    if delta.is_empty() {
        die(format_args!("{path}: no ops to apply"));
    }
    delta
}

fn journal_cmd(base: &str, apply: Option<&str>) {
    if is_sharded_manifest(base) {
        die(format_args!(
            "{base} is a sharded manifest — per-shard journals hold shard-local ids; \
             target a component instead: `{PROG} journal {base}.shardS [--apply F]`"
        ));
    }
    let jpath = journal_path(base);
    if let Some(ops_file) = apply {
        let delta = parse_ops_file(ops_file, base_n(base));
        append_journal(&jpath, &delta)
            .unwrap_or_else(|e| die(format_args!("cannot append to {}: {e}", jpath.display())));
        println!(
            "appended 1 record ({} ops) to {}",
            delta.len(),
            jpath.display()
        );
        return;
    }
    let (n, deltas) = load_journal(&jpath)
        .unwrap_or_else(|e| die(format_args!("cannot read {}: {e}", jpath.display())));
    let (mut adds, mut dels) = (0usize, 0usize);
    for delta in &deltas {
        for op in delta.ops() {
            match op {
                DeltaOp::Insert { .. } => adds += 1,
                DeltaOp::Delete { .. } => dels += 1,
            }
        }
    }
    println!(
        "{}: journal for a graph with n={n} | {} record(s) | {} op(s) ({adds} insert, {dels} delete)",
        jpath.display(),
        deltas.len(),
        adds + dels
    );
    for (i, delta) in deltas.iter().enumerate() {
        println!("  record {i}: {} op(s)", delta.len());
    }
}

fn compact(path: &str) {
    if is_sharded_manifest(path) {
        let report = compact_sharded(path)
            .unwrap_or_else(|e| die(format_args!("cannot compact {path}: {e}")));
        if report.shards.is_empty() {
            println!("{path}: no shard has a journal — nothing to fold");
            return;
        }
        for f in &report.shards {
            println!(
                "shard {}: folded {} record(s) ({} ops) into {path}.shard{} | m {} -> {} | journal removed",
                f.shard, f.records, f.ops, f.shard, f.m_before, f.m_after
            );
        }
        let untouched = report.epochs.len() - report.shards.len();
        println!(
            "overlay + manifest rewritten | shard epochs now {:?} | {untouched} shard snapshot(s) untouched",
            report.epochs
        );
        return;
    }
    let report =
        compact_oracle(path).unwrap_or_else(|e| die(format_args!("cannot compact {path}: {e}")));
    println!(
        "folded {} record(s) ({} ops) into {path} (v{}) | m {} -> {} | journal removed",
        report.records, report.ops, report.version, report.m_before, report.m_after
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inspect") => match args.get(1) {
            Some(path) if args.len() == 2 => inspect(path),
            _ => usage(),
        },
        Some("journal") => match args.get(1) {
            Some(path) if args.len() == 2 => journal_cmd(path, None),
            Some(path) if args.len() == 4 && args[2] == "--apply" => {
                journal_cmd(path, Some(&args[3]))
            }
            _ => usage(),
        },
        Some("compact") => match args.get(1) {
            Some(path) if args.len() == 2 => compact(path),
            _ => usage(),
        },
        Some("migrate") => match (args.get(1), args.get(2)) {
            (Some(src), Some(dst))
                if args.len() == 3 || (args.len() == 4 && args[3] == "--compress") =>
            {
                let compress = args.len() == 4;
                let (from, meta) = migrate_oracle_file_with(src, dst, compress)
                    .unwrap_or_else(|e| die(format_args!("cannot migrate {src}: {e}")));
                let src_len = std::fs::metadata(src).map(|m| m.len()).unwrap_or(0);
                let dst_len = std::fs::metadata(dst).map(|m| m.len()).unwrap_or(0);
                println!(
                    "{src} (v{from}, {}) -> {dst} (v2{}, {}) | seed {} | build cost {}",
                    human(src_len),
                    if compress { ", compressed" } else { "" },
                    human(dst_len),
                    meta.seed,
                    meta.build_cost
                );
            }
            _ => usage(),
        },
        _ => usage(),
    }
}
