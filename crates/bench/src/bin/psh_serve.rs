//! `psh-serve` — build-or-load an oracle snapshot and replay a query
//! workload on the psh-exec pool.
//!
//! The serving half of Theorem 1.2's bargain: pay the parallel
//! preprocessing once, then answer distance queries cheaply. On the first
//! run with `--snapshot PATH` the oracle is built from the input graph
//! and saved; later runs load the snapshot (skipping preprocessing
//! entirely, even in a fresh process) and serve the workload in batches
//! through `query_batch`, reporting queries/sec and p50/p99 per-batch
//! latency.
//!
//! Usage:
//! ```text
//! psh-serve [--family random|power-law|rmat|grid|grid2d|path|torus] [--n N]
//!           [--weights U]            # log-uniform weights of ratio U
//!           [--graph PATH]           # text edge list instead of --family
//!           [--shards K]             # build a K-shard ShardedOracle
//!                                    # (partition + per-shard builds on
//!                                    # the pool + boundary overlay)
//!                                    # instead of one monolithic oracle
//!           [--snapshot PATH]        # load if present, else build + save
//!                                    # (a sharded build saves a PSHM
//!                                    # manifest + one v2 file per shard;
//!                                    # loading sniffs the format, so the
//!                                    # snapshot decides what is served)
//!           [--snapshot-version V]   # save format: 2 (zero-copy, default) or 1
//!           [--load-mode M]          # open v2 snapshots via mmap (default)
//!                                    # or read (portable aligned-read fallback)
//!           [--fresh-snapshot]       # ignore an existing snapshot: rebuild
//!                                    # and overwrite it (atomic tmp+rename)
//!           [--cleanup-snapshot]     # delete the snapshot file on exit
//!           [--max-seconds S]        # stop replaying batches after S secs
//!           [--workload PATH]        # 'q s t' lines; default: generated pairs
//!           [--workload-dist D]      # uniform (default) or zipf:<theta>
//!           [--queries Q] [--batch B] [--threads K] [--seed S]
//!           [--json PATH]
//! ```
//!
//! `--fresh-snapshot`/`--cleanup-snapshot` make the CI smoke self-
//! contained: the first run rebuilds and overwrites any stale snapshot
//! (no manual `rm` needed — saves go through a temp file and an atomic
//! rename), the last run cleans the file up; `--max-seconds` bounds the
//! replay so a smoke can never hang a pipeline.
//!
//! Exits non-zero on unusable input (unreadable graph/workload/snapshot,
//! out-of-range query ids) — never panics on malformed files.

use psh_bench::json::{has_flag, parse_flag};
use psh_bench::serving::{obtain_served_oracle, parse_max_seconds, parse_policy, ServedOracle};
use psh_bench::stats::percentile;
use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::{read_pairs, WorkloadDist};
use psh_bench::Report;
use psh_core::shard::{overlay_snapshot_path, shard_snapshot_path};
use psh_pram::Cost;
use std::io::BufReader;
use std::path::PathBuf;
use std::time::Instant;

const PROG: &str = "psh-serve";

fn die(msg: impl std::fmt::Display) -> ! {
    psh_bench::serving::die(PROG, msg)
}

fn main() {
    let seed: u64 = parse_flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20150625);
    let mut report = Report::from_args("psh-serve");

    // Runtime guard for smoke/CI use, validated before the (potentially
    // long) preprocessing so a typo fails fast: stop issuing batches
    // once the cap is reached (the in-flight batch finishes;
    // preprocessing itself is not interruptible and counts separately).
    let max_seconds = parse_max_seconds(PROG);

    let (served, loaded, prep_s) = obtain_served_oracle(PROG, seed);
    let desc = served.descriptor();
    let n = desc.n;
    if n == 0 {
        die("the graph has no vertices to query");
    }

    let dist = match parse_flag("--workload-dist") {
        None => WorkloadDist::Uniform,
        Some(s) => WorkloadDist::parse(&s).unwrap_or_else(|e| die(e)),
    };
    let pairs: Vec<(u32, u32)> = match parse_flag("--workload") {
        Some(path) => {
            let file = std::fs::File::open(&path)
                .unwrap_or_else(|e| die(format_args!("cannot open {path}: {e}")));
            read_pairs(BufReader::new(file), n)
                .unwrap_or_else(|e| die(format_args!("bad workload {path}: {e}")))
        }
        None => {
            let q: usize = parse_flag("--queries")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1000);
            dist.pairs(n, q, seed ^ 0xC0FFEE)
        }
    };
    let batch: usize = parse_flag("--batch")
        .and_then(|s| s.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(256);
    let policy = parse_policy(PROG);

    // --- replay -----------------------------------------------------------
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(pairs.len().div_ceil(batch));
    let mut answered = 0usize;
    let mut reachable = 0usize;
    let mut truncated = false;
    let mut total_cost = Cost::ZERO;
    let replay_start = Instant::now();
    for chunk in pairs.chunks(batch) {
        if max_seconds.is_some_and(|cap| replay_start.elapsed().as_secs_f64() >= cap) {
            truncated = true;
            break;
        }
        let start = Instant::now();
        let (answers, cost) = served.query_batch(chunk, policy);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        answered += answers.len();
        reachable += answers.iter().filter(|a| a.distance.is_finite()).count();
        total_cost = total_cost.then(cost);
    }
    let replay_s = replay_start.elapsed().as_secs_f64();
    if truncated {
        println!(
            "--max-seconds {} reached: served {answered}/{} queries before stopping",
            max_seconds.unwrap_or_default(),
            pairs.len()
        );
    }
    let qps = answered as f64 / replay_s.max(1e-12);
    let p50 = percentile(&latencies_ms, 50.0);
    let p99 = percentile(&latencies_ms, 99.0);

    println!(
        "\n# psh-serve — n={} m={} ({} shard{}) | {} queries in batches of {batch} | {policy}\n",
        n,
        desc.m,
        desc.shards,
        if desc.shards == 1 { "" } else { "s" },
        answered
    );
    let mut t = Table::new([
        "queries",
        "batches",
        "policy",
        "qps",
        "p50 (ms)",
        "p99 (ms)",
        "reachable",
    ]);
    t.row([
        fmt_u(answered as u64),
        fmt_u(latencies_ms.len() as u64),
        policy.to_string(),
        fmt_f(qps),
        fmt_f(p50),
        fmt_f(p99),
        fmt_u(reachable as u64),
    ]);
    t.print();
    println!(
        "\nquery cost: {total_cost} | preprocessing: {} ({}) {:.3}s | {}",
        if loaded {
            "loaded from snapshot"
        } else {
            "built fresh"
        },
        served.seed(),
        prep_s,
        served.build_cost(),
    );

    report
        .meta("n", n)
        .meta("m", desc.m)
        .meta("shards", desc.shards)
        .meta("queries", answered)
        .meta("batch", batch)
        .meta("policy", policy.to_string())
        .meta("workload_dist", dist.name())
        .meta("loaded_snapshot", loaded)
        .meta("truncated", truncated)
        .meta("seed", served.seed().0)
        .meta("preprocess_s", prep_s)
        .meta("qps", qps)
        .meta("p50_ms", p50)
        .meta("p99_ms", p99);
    report.push_table("serve", &t);
    report.finish();

    if has_flag("--cleanup-snapshot") {
        if let Some(path) = parse_flag("--snapshot").map(PathBuf::from) {
            // a sharded manifest names component snapshots — remove those
            // too, so the smoke leaves nothing behind
            if let ServedOracle::Sharded { oracle, .. } = &served {
                for s in 0..oracle.num_shards() {
                    let _ = std::fs::remove_file(shard_snapshot_path(&path, s));
                }
                let _ = std::fs::remove_file(overlay_snapshot_path(&path));
            }
            match std::fs::remove_file(&path) {
                Ok(()) => println!("snapshot {} removed (--cleanup-snapshot)", path.display()),
                Err(e) => die(format_args!("cannot remove {}: {e}", path.display())),
            }
        }
    }
}
