//! E6 — **Corollary 2.3 / Lemma 2.2**: edge-cut probability and
//! ball–cluster intersection tails.
//!
//! Corollary 2.3: an edge of weight `w` is cut with probability at most
//! `1 − exp(−β·w) < β·w`. We estimate the empirical cut probability per
//! weight bucket over many independent clusterings and print it against
//! the bound.
//!
//! Lemma 2.2: `P(ball of radius r meets ≥ j clusters) ≤ γ^{j−1}` with
//! `γ = 1 − exp(−2rβ)`. We sample balls and print the tail against the
//! bound.
//!
//! Usage: `cargo run --release -p psh-bench --bin lemma_cut_probability [--json PATH]`

use psh_bench::table::{fmt_f, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_cluster::analysis::{ball_cluster_count, cut_by_weight};
use psh_cluster::{ClusterBuilder, Seed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn main() {
    let seed = 20150625u64;
    let trials = 60;
    let mut report = Report::from_args("lemma_cut_probability");
    report.meta("seed", seed).meta("trials", trials);

    println!("# Corollary 2.3 — P(edge cut) vs β·w\n");
    let base = Family::Grid.instantiate(1_600, seed);
    let g =
        psh_graph::generators::with_uniform_weights(&base, 1, 8, &mut StdRng::seed_from_u64(seed));
    let beta = 0.08f64;
    let mut cut_per_w: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for t in 0..trials {
        let (c, _) = ClusterBuilder::new(beta)
            .seed(Seed(seed + t))
            .build(&g)
            .unwrap()
            .into_parts();
        for (w, cut) in cut_by_weight(&g, &c) {
            let e = cut_per_w.entry(w).or_insert((0, 0));
            e.1 += 1;
            if cut {
                e.0 += 1;
            }
        }
    }
    let mut t1 = Table::new(["w", "empirical P(cut)", "bound 1-exp(-βw)", "bound βw"]);
    for (w, (cut, total)) in &cut_per_w {
        let emp = *cut as f64 / *total as f64;
        let tight = 1.0 - (-beta * *w as f64).exp();
        t1.row([
            w.to_string(),
            fmt_f(emp),
            fmt_f(tight),
            fmt_f(beta * *w as f64),
        ]);
    }
    t1.print();
    report.push_table("edge_cut_probability", &t1);

    println!("\n# Lemma 2.2 — P(ball hits ≥ j clusters) vs γ^(j-1)\n");
    let g = Family::Torus.instantiate(1_600, seed);
    let r = 2u64;
    let beta = 0.15f64;
    let gamma = 1.0 - (-2.0 * r as f64 * beta).exp();
    let mut counts: Vec<usize> = Vec::new();
    for t in 0..trials {
        let (c, _) = ClusterBuilder::new(beta)
            .seed(Seed(seed + 1000 + t))
            .build(&g)
            .unwrap()
            .into_parts();
        let mut rng = StdRng::seed_from_u64(t);
        for _ in 0..20 {
            let v = rng.random_range(0..g.n() as u32);
            counts.push(ball_cluster_count(&g, &c, v, r));
        }
    }
    let total = counts.len() as f64;
    let mut t2 = Table::new(["j", "empirical P(≥j)", "bound γ^(j-1)"]);
    for j in 1..=8usize {
        let emp = counts.iter().filter(|&&c| c >= j).count() as f64 / total;
        t2.row([j.to_string(), fmt_f(emp), fmt_f(gamma.powi(j as i32 - 1))]);
    }
    t2.print();
    report.push_table("ball_tail", &t2);
    report.finish();
    println!("\nγ = {} (r = {r}, β = {beta})", fmt_f(gamma));
}
