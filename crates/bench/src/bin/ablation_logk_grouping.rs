//! E11 — ablation: Theorem 3.3's `O(log k)` well-separated grouping vs
//! the naive per-bucket construction.
//!
//! Bucketing by powers of two and spanner-ing each bucket independently
//! (no contraction, no grouping) costs a `log U` size factor; the paper's
//! grouping + hierarchical contraction brings it down to `log k`. We
//! measure both on the same graphs while sweeping `U`.
//!
//! Usage: `cargo run --release -p psh-bench --bin ablation_logk_grouping [--json PATH]`

use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::Report;
use psh_core::api::{Seed, SpannerBuilder};
use psh_core::spanner::buckets::bucket_edges;
use psh_core::spanner::verify::max_stretch_exact;
use psh_core::spanner::well_separated::well_separated_spanner;
use psh_core::spanner::Spanner;
use psh_graph::CsrGraph;
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The naive baseline: one independent unweighted spanner per bucket —
/// i.e. Algorithm 3 with a single level per call and no shared
/// contraction. Size pays the full O(log U) factor.
fn naive_per_bucket(g: &CsrGraph, k: f64, seed: u64) -> (Spanner, Cost) {
    let mut edges = Vec::new();
    let mut cost = Cost::ZERO;
    for (i, (_, eids)) in bucket_edges(g).into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed + i as u64);
        let (sel, c) = well_separated_spanner(g, &[eids], k, &mut rng);
        edges.extend(sel);
        cost = cost.par(c);
    }
    (Spanner::new(g.n(), edges), cost)
}

fn main() {
    let seed = 20150625u64;
    let n = 2_000usize;
    let k = 4.0f64;
    let mut report = Report::from_args("ablation_logk_grouping");
    report.meta("n", n).meta("seed", seed).meta("k", k);
    println!("# Ablation — log k grouping vs naive per-bucket spanners (k = {k})\n");
    println!("(dense random instances, m = 13n, so the size bound binds)\n");
    let mut t = Table::new([
        "U",
        "grouped size",
        "naive size",
        "naive/grouped",
        "grouped stretch",
        "naive stretch",
    ]);
    for log_u in [4u32, 8, 12, 16] {
        let u = (1u64 << log_u) as f64;
        let base =
            psh_graph::generators::connected_random(n, 12 * n, &mut StdRng::seed_from_u64(seed));
        let g = psh_graph::generators::with_log_uniform_weights(
            &base,
            u,
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let (ours, _) = SpannerBuilder::weighted(k)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .into_parts();
        let (naive, _) = naive_per_bucket(&g, k, seed);
        t.row([
            format!("2^{log_u}"),
            fmt_u(ours.size() as u64),
            fmt_u(naive.size() as u64),
            fmt_f(naive.size() as f64 / ours.size() as f64),
            fmt_f(max_stretch_exact(&g, &ours)),
            fmt_f(max_stretch_exact(&g, &naive)),
        ]);
    }
    t.print();
    report.push_table("grouping_vs_naive", &t);
    report.finish();
    println!("\nexpect: the naive/grouped ratio grows with log U while stretch stays comparable.");
}
