//! E10 — **Lemma 4.3**: hopset size accounting.
//!
//! At most `n` star edges (each vertex is in a large cluster at most
//! once) and at most `(n/n_final)·ρ²` clique edges. We sweep n and report
//! both counts against their bounds.
//!
//! Usage: `cargo run --release -p psh-bench --bin hopset_size [--json PATH]`

use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::HopsetParams;

fn main() {
    let seed = 20150625u64;
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let mut report = Report::from_args("hopset_size");
    report
        .meta("seed", seed)
        .meta("epsilon", params.epsilon)
        .meta("delta", params.delta)
        .meta("gamma1", params.gamma1)
        .meta("gamma2", params.gamma2);
    println!("# Lemma 4.3 — hopset size bounds\n");
    println!(
        "params: ε={} δ={} γ1={} γ2={}\n",
        params.epsilon, params.delta, params.gamma1, params.gamma2
    );
    let mut t = Table::new([
        "family",
        "n",
        "star edges",
        "bound n",
        "clique edges",
        "bound (n/n_f)·ρ²",
        "total",
        "levels",
    ]);
    for family in [Family::Random, Family::Grid, Family::PathGraph] {
        for n in [1_000usize, 2_000, 4_000, 8_000] {
            let g = family.instantiate(n, seed);
            let h = HopsetBuilder::unweighted()
                .params(params)
                .seed(Seed(seed))
                .build(&g)
                .unwrap()
                .artifact
                .into_single();
            let clique_bound =
                (g.n() as f64 / params.n_final(g.n()) as f64) * params.rho(g.n()).powi(2);
            t.row([
                family.name().to_string(),
                fmt_u(g.n() as u64),
                fmt_u(h.star_count as u64),
                fmt_u(g.n() as u64),
                fmt_u(h.clique_count as u64),
                fmt_f(clique_bound),
                fmt_u(h.size() as u64),
                h.levels.to_string(),
            ]);
        }
    }
    t.print();
    report.push_table("size_bounds", &t);
    report.finish();
    println!("\nexpect: stars ≤ n and cliques far below the worst-case bound.");
}
