//! E16 — ablation: Algorithm 2's β choice.
//!
//! The paper sets `β = ln n / 2k`. Larger β cuts more edges (bigger
//! spanner via more inter-cluster picks is *not* immediate — more clusters
//! also means smaller balls), smaller β inflates cluster diameters (worse
//! stretch). We sweep multipliers around the prescribed value and print
//! size and stretch.
//!
//! Usage: `cargo run --release -p psh-bench --bin ablation_beta [--json PATH]`

use psh_bench::table::{fmt_f, fmt_u, Table};
use psh_bench::workloads::Family;
use psh_bench::Report;
use psh_cluster::{ClusterBuilder, Seed};
use psh_core::spanner::unweighted::{beta_for, spanner_from_clustering};
use psh_core::spanner::verify::max_stretch_exact;

fn main() {
    let seed = 20150625u64;
    let n = 2_000usize;
    let k = 3.0;
    let mut report = Report::from_args("ablation_beta");
    report.meta("n", n).meta("seed", seed).meta("k", k);
    println!("# Ablation — β around the prescribed ln n/2k (k = {k})\n");
    let g = Family::Random.instantiate(n, seed);
    let beta_star = beta_for(g.n(), k);
    let mut t = Table::new([
        "β multiplier",
        "β",
        "#clusters",
        "max radius",
        "spanner size",
        "max stretch",
    ]);
    for mult in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let beta = beta_star * mult;
        let (c, _) = ClusterBuilder::new(beta)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .into_parts();
        let (s, _) = spanner_from_clustering(&g, &c);
        t.row([
            fmt_f(mult),
            fmt_f(beta),
            fmt_u(c.num_clusters as u64),
            fmt_u(c.max_radius()),
            fmt_u(s.size() as u64),
            fmt_f(max_stretch_exact(&g, &s)),
        ]);
    }
    t.print();
    report.push_table("beta_sweep", &t);
    report.finish();
    println!("\nexpect: stretch degrades as β shrinks (bigger clusters), size grows as β grows.");
}
