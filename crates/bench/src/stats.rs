//! Summary statistics for repeated experiment trials.

/// Mean / min / max / standard deviation over a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub std: f64,
}

impl Summary {
    /// Summarize a sample; empty samples give a zeroed summary.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            min,
            max,
            std: var.sqrt(),
        }
    }

    /// Summarize integer samples.
    pub fn of_u64(xs: &[u64]) -> Summary {
        let f: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        Summary::of(&f)
    }
}

/// Nearest-rank percentile (`p ∈ [0, 100]`) of a sample — the serving
/// binaries report p50/p99/p999 latency with this. Empty samples give 0.
///
/// The implementation lives in [`psh_core::service`] (the serving layer's
/// [`ServiceStats`](psh_core::service::ServiceStats) computes its
/// percentiles with the same function); this re-export keeps the
/// historical `psh_bench::stats::percentile` path — and its tests —
/// working.
pub use psh_core::service::percentile;

/// Log-log regression slope of `y` against `x` — the tool for checking the
/// paper's size exponents (`n^{1+1/k}` shows up as slope `1 + 1/k`).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points for a slope");
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.std > 1.0 && s.std < 1.2);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(Summary::of(&[]).n, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // order independence
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        // y = 3 x^1.5
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = (i * 100) as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        let slope = loglog_slope(&pts);
        assert!((slope - 1.5).abs() < 1e-9, "slope {slope}");
    }
}
