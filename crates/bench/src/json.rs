//! Machine-readable experiment output.
//!
//! Every table/ablation binary accepts `--json PATH`: alongside the
//! human-readable markdown tables it then writes one JSON document with
//! the same rows plus run metadata (binary name, thread count and
//! execution policy, total wall-clock), so `BENCH_*.json` trajectories
//! can accumulate across commits without scraping stdout.
//!
//! The writer is a deliberately tiny hand-rolled serializer (the
//! workspace has no registry access for serde); the document shape is:
//!
//! ```json
//! {
//!   "bin": "table1_spanners",
//!   "threads": 4,
//!   "policy": "parallel(4)",
//!   "wall_clock_s": 12.34,
//!   "meta": { "n": 2000, "seed": 20150625 },
//!   "tables": { "unweighted_k2": [ {"k": "2", "size": "9,641", ...}, ... ] }
//! }
//! ```

use crate::table::Table;
use psh_exec::ExecutionPolicy;
use std::path::PathBuf;
use std::time::Instant;

/// A JSON value (the subset the reports need).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// True when the bare flag `name` appears in the process arguments
/// (`--quick`, `--fresh-snapshot`, …) — the boolean companion to
/// [`parse_flag`].
pub fn has_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Read `--name VALUE` / `--name=VALUE` from the process arguments —
/// the one argv scanner shared by every experiment binary.
pub fn parse_flag(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Serialize into `out` (compact, no trailing newline).
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null"); // JSON has no Infinity/NaN
                }
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a `String`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

/// One binary's JSON report: run metadata plus every table it printed.
///
/// Construct with [`Report::from_args`]; call [`Report::push_table`]
/// right after printing each table and [`Report::finish`] at the end of
/// `main`. When `--json` was not passed everything is a no-op, so the
/// instrumentation costs nothing in the default human-readable mode.
#[derive(Debug)]
pub struct Report {
    bin: String,
    path: Option<PathBuf>,
    meta: Vec<(String, JsonValue)>,
    tables: Vec<(String, JsonValue)>,
    started: Instant,
}

impl Report {
    /// Build a report for binary `bin`, reading `--json PATH` from the
    /// process arguments.
    pub fn from_args(bin: &str) -> Report {
        Report::new(bin, parse_flag("--json").map(PathBuf::from))
    }

    /// Build a report with an explicit output path (`None` disables it).
    pub fn new(bin: &str, path: Option<PathBuf>) -> Report {
        Report {
            bin: bin.to_string(),
            path,
            meta: Vec::new(),
            tables: Vec::new(),
            started: Instant::now(),
        }
    }

    /// True when `--json` was requested.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Attach a metadata field (workload sizes, parameters, seeds, …).
    pub fn meta(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        if self.enabled() {
            self.meta.push((key.to_string(), value.into()));
        }
        self
    }

    /// Record a printed table under `label`: one JSON object per row,
    /// keyed by the table's column headers.
    pub fn push_table(&mut self, label: &str, table: &Table) -> &mut Self {
        if self.enabled() {
            let rows: Vec<JsonValue> = table
                .rows()
                .iter()
                .map(|row| {
                    JsonValue::Object(
                        table
                            .header()
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), JsonValue::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect();
            self.tables
                .push((label.to_string(), JsonValue::Array(rows)));
        }
        self
    }

    /// The document this report currently describes. The top-level
    /// `threads`/`policy` fields record the *process-default*
    /// [`ExecutionPolicy`] (what `PSH_THREADS` selected) — a binary that
    /// sweeps explicit policies (e.g. `parallel_scaling`) reports the
    /// swept policies per table row and in its own `meta` instead.
    pub fn to_value(&self) -> JsonValue {
        let policy = ExecutionPolicy::from_env();
        JsonValue::Object(vec![
            ("bin".into(), JsonValue::Str(self.bin.clone())),
            ("threads".into(), JsonValue::U64(policy.threads() as u64)),
            ("policy".into(), JsonValue::Str(policy.to_string())),
            (
                "wall_clock_s".into(),
                JsonValue::F64(self.started.elapsed().as_secs_f64()),
            ),
            ("meta".into(), JsonValue::Object(self.meta.clone())),
            ("tables".into(), JsonValue::Object(self.tables.clone())),
        ])
    }

    /// Write the report if `--json` was requested; prints the path so the
    /// run's artifacts are discoverable from the transcript.
    pub fn finish(self) {
        let Some(path) = &self.path else { return };
        let mut doc = self.to_value().to_json();
        doc.push('\n');
        match std::fs::write(path, doc) {
            Ok(()) => println!("\njson report written to {}", path.display()),
            Err(e) => eprintln!("\nfailed to write json report {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_serialize_compactly() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::U64(3)),
            (
                "b".into(),
                JsonValue::Array(vec![true.into(), "x\"y".into()]),
            ),
            ("c".into(), JsonValue::F64(1.5)),
            ("inf".into(), JsonValue::F64(f64::INFINITY)),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"a":3,"b":[true,"x\"y"],"c":1.5,"inf":null}"#
        );
    }

    #[test]
    fn report_captures_tables_and_meta() {
        let mut t = Table::new(["alg", "size"]);
        t.row(["ours", "123"]);
        let mut r = Report::new("unit_test", Some(PathBuf::from("/dev/null")));
        r.meta("n", 100usize);
        r.push_table("main", &t);
        let doc = r.to_value().to_json();
        assert!(doc.contains(r#""bin":"unit_test""#));
        assert!(doc.contains(r#""n":100"#));
        assert!(doc.contains(r#""main":[{"alg":"ours","size":"123"}]"#));
        assert!(doc.contains(r#""threads":"#));
        r.finish();
    }

    #[test]
    fn disabled_report_is_a_noop() {
        let mut r = Report::new("unit_test", None);
        assert!(!r.enabled());
        r.meta("n", 1usize);
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.push_table("t", &t);
        let doc = r.to_value().to_json();
        assert!(doc.contains(r#""tables":{}"#));
        r.finish();
    }
}
