//! Machine-readable experiment output.
//!
//! Every table/ablation binary accepts `--json PATH`: alongside the
//! human-readable markdown tables it then writes one JSON document with
//! the same rows plus run metadata (binary name, thread count and
//! execution policy, total wall-clock), so `BENCH_*.json` trajectories
//! can accumulate across commits without scraping stdout.
//!
//! The writer is a deliberately tiny hand-rolled serializer (the
//! workspace has no registry access for serde); the document shape is:
//!
//! ```json
//! {
//!   "bin": "table1_spanners",
//!   "threads": 4,
//!   "policy": "parallel(4)",
//!   "wall_clock_s": 12.34,
//!   "meta": { "n": 2000, "seed": 20150625 },
//!   "tables": { "unweighted_k2": [ {"k": "2", "size": "9,641", ...}, ... ] }
//! }
//! ```

use crate::table::Table;
use psh_exec::ExecutionPolicy;
use std::path::PathBuf;
use std::time::Instant;

/// A JSON value (the subset the reports need).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` — written for non-finite floats, read back verbatim.
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// True when the bare flag `name` appears in the process arguments
/// (`--quick`, `--fresh-snapshot`, …) — the boolean companion to
/// [`parse_flag`].
pub fn has_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Read `--name VALUE` / `--name=VALUE` from the process arguments —
/// the one argv scanner shared by every experiment binary.
pub fn parse_flag(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Serialize into `out` (compact, no trailing newline).
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null"); // JSON has no Infinity/NaN
                }
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a `String`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse a JSON document — the reader half that lets `bench-compare`
    /// diff committed `BENCH_*.json` baselines against fresh runs.
    /// Accepts exactly what [`JsonValue::write`] emits plus ordinary
    /// whitespace, signed/exponent numbers, and `\uXXXX` escapes
    /// (surrogate pairs included). Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`U64` widens losslessly for the magnitudes
    /// reports hold), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent state for [`JsonValue::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.at)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.at) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b']') {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b'}') {
                    self.at += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(JsonValue::Object(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        while matches!(
            self.bytes.get(self.at),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        if !text.contains(['.', 'e', 'E', '-', '+']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uXXXX for the low half
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character (input is a &str, so
                    // slicing at char boundaries is safe)
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        let digits = self
            .bytes
            .get(self.at..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.at = end;
        Ok(v)
    }
}

/// One binary's JSON report: run metadata plus every table it printed.
///
/// Construct with [`Report::from_args`]; call [`Report::push_table`]
/// right after printing each table and [`Report::finish`] at the end of
/// `main`. When `--json` was not passed everything is a no-op, so the
/// instrumentation costs nothing in the default human-readable mode.
#[derive(Debug)]
pub struct Report {
    bin: String,
    path: Option<PathBuf>,
    meta: Vec<(String, JsonValue)>,
    tables: Vec<(String, JsonValue)>,
    started: Instant,
}

impl Report {
    /// Build a report for binary `bin`, reading `--json PATH` from the
    /// process arguments.
    pub fn from_args(bin: &str) -> Report {
        Report::new(bin, parse_flag("--json").map(PathBuf::from))
    }

    /// Build a report with an explicit output path (`None` disables it).
    pub fn new(bin: &str, path: Option<PathBuf>) -> Report {
        Report {
            bin: bin.to_string(),
            path,
            meta: Vec::new(),
            tables: Vec::new(),
            started: Instant::now(),
        }
    }

    /// True when `--json` was requested.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Attach a metadata field (workload sizes, parameters, seeds, …).
    pub fn meta(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        if self.enabled() {
            self.meta.push((key.to_string(), value.into()));
        }
        self
    }

    /// Record a printed table under `label`: one JSON object per row,
    /// keyed by the table's column headers.
    pub fn push_table(&mut self, label: &str, table: &Table) -> &mut Self {
        if self.enabled() {
            let rows: Vec<JsonValue> = table
                .rows()
                .iter()
                .map(|row| {
                    JsonValue::Object(
                        table
                            .header()
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), JsonValue::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect();
            self.tables
                .push((label.to_string(), JsonValue::Array(rows)));
        }
        self
    }

    /// The document this report currently describes. The top-level
    /// `threads`/`policy` fields record the *process-default*
    /// [`ExecutionPolicy`] (what `PSH_THREADS` selected) — a binary that
    /// sweeps explicit policies (e.g. `parallel_scaling`) reports the
    /// swept policies per table row and in its own `meta` instead.
    pub fn to_value(&self) -> JsonValue {
        let policy = ExecutionPolicy::from_env();
        JsonValue::Object(vec![
            ("bin".into(), JsonValue::Str(self.bin.clone())),
            ("threads".into(), JsonValue::U64(policy.threads() as u64)),
            ("policy".into(), JsonValue::Str(policy.to_string())),
            (
                "wall_clock_s".into(),
                JsonValue::F64(self.started.elapsed().as_secs_f64()),
            ),
            ("meta".into(), JsonValue::Object(self.meta.clone())),
            ("tables".into(), JsonValue::Object(self.tables.clone())),
        ])
    }

    /// Write the report if `--json` was requested; prints the path so the
    /// run's artifacts are discoverable from the transcript.
    pub fn finish(self) {
        let Some(path) = &self.path else { return };
        let mut doc = self.to_value().to_json();
        doc.push('\n');
        match std::fs::write(path, doc) {
            Ok(()) => println!("\njson report written to {}", path.display()),
            Err(e) => eprintln!("\nfailed to write json report {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_serialize_compactly() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::U64(3)),
            (
                "b".into(),
                JsonValue::Array(vec![true.into(), "x\"y".into()]),
            ),
            ("c".into(), JsonValue::F64(1.5)),
            ("inf".into(), JsonValue::F64(f64::INFINITY)),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"a":3,"b":[true,"x\"y"],"c":1.5,"inf":null}"#
        );
    }

    #[test]
    fn parser_round_trips_what_the_writer_emits() {
        let v = JsonValue::Object(vec![
            ("bin".into(), "bench suite".into()),
            ("threads".into(), JsonValue::U64(4)),
            ("wall".into(), JsonValue::F64(12.375)),
            ("neg".into(), JsonValue::F64(-0.5)),
            ("inf".into(), JsonValue::F64(f64::INFINITY)),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "rows".into(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![("qps".into(), "1,234".into())]),
                    JsonValue::Array(vec![]),
                    JsonValue::Object(vec![]),
                ]),
            ),
            ("esc".into(), "quote\" slash\\ tab\t nl\n".into()),
        ]);
        let parsed = JsonValue::parse(&v.to_json()).unwrap();
        // the one lossy cell: Infinity serializes as null
        let mut expect = v;
        if let JsonValue::Object(fields) = &mut expect {
            fields[4].1 = JsonValue::Null;
        }
        assert_eq!(parsed, expect);
    }

    #[test]
    fn parser_handles_foreign_json() {
        let parsed = JsonValue::parse(
            " { \"a\" : [ 1 , -2.5e3 , null ] , \"u\" : \"\\u00e9\\ud83d\\ude00\" } ",
        )
        .unwrap();
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap(),
            &[JsonValue::U64(1), JsonValue::F64(-2500.0), JsonValue::Null]
        );
        assert_eq!(parsed.get("u").unwrap().as_str(), Some("é😀"));
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[0].as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1.2.3",
            "\"\\u12\"",
            "\"\\ud800x\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn report_captures_tables_and_meta() {
        let mut t = Table::new(["alg", "size"]);
        t.row(["ours", "123"]);
        let mut r = Report::new("unit_test", Some(PathBuf::from("/dev/null")));
        r.meta("n", 100usize);
        r.push_table("main", &t);
        let doc = r.to_value().to_json();
        assert!(doc.contains(r#""bin":"unit_test""#));
        assert!(doc.contains(r#""n":100"#));
        assert!(doc.contains(r#""main":[{"alg":"ours","size":"123"}]"#));
        assert!(doc.contains(r#""threads":"#));
        r.finish();
    }

    #[test]
    fn disabled_report_is_a_noop() {
        let mut r = Report::new("unit_test", None);
        assert!(!r.enabled());
        r.meta("n", 1usize);
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.push_table("t", &t);
        let doc = r.to_value().to_json();
        assert!(doc.contains(r#""tables":{}"#));
        r.finish();
    }
}
