//! Shared build-or-load plumbing for the serving binaries.
//!
//! `psh-serve` (in-process replay), `psh-server` (TCP tier), and
//! `psh-client --verify-local` all turn the same argv vocabulary
//! (`--graph`/`--family`/`--n`/`--weights`, `--snapshot`,
//! `--fresh-snapshot`) into an oracle. Keeping the logic here makes the
//! semantics identical across binaries — a snapshot written by one run
//! is served byte-for-byte by the next, whichever binary opens it.

use crate::json::{has_flag, parse_flag};
use crate::workloads::Family;
use psh_core::api::{OracleBuilder, Seed};
use psh_core::distance::{DistanceOracle, OracleDescriptor};
use psh_core::oracle::{ApproxShortestPaths, QueryResult};
use psh_core::shard::{ShardedOracle, ShardedOracleBuilder, ShardedParts};
use psh_core::snapshot::{
    is_sharded_manifest, load_oracle_auto, load_sharded, save_oracle, save_oracle_v2, save_sharded,
    OracleMeta,
};
use psh_core::HopsetParams;
use psh_exec::ExecutionPolicy;
use psh_graph::{CsrGraph, LoadMode};
use psh_pram::Cost;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Exit with a `prog: msg` line on stderr — the serving binaries' shared
/// failure path. Unusable input (unreadable graph/workload/snapshot,
/// malformed flags) must exit non-zero, never panic.
pub fn die(prog: &str, msg: impl std::fmt::Display) -> ! {
    eprintln!("{prog}: {msg}");
    std::process::exit(1);
}

/// The input graph from argv: `--graph PATH` (text edge list), or a
/// generated `--family` at `--n` vertices (default `grid` at 2500),
/// optionally `--weights U` log-uniform-weighted, seeded by `seed`.
pub fn load_graph(prog: &str, seed: u64) -> CsrGraph {
    if let Some(path) = parse_flag("--graph") {
        let file = std::fs::File::open(&path)
            .unwrap_or_else(|e| die(prog, format_args!("cannot open {path}: {e}")));
        return psh_graph::io::read_graph(BufReader::new(file))
            .unwrap_or_else(|e| die(prog, format_args!("bad graph file {path}: {e}")));
    }
    let n: usize = parse_flag("--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500);
    let family = parse_flag("--family").unwrap_or_else(|| "grid".into());
    let family = Family::ALL
        .into_iter()
        .find(|f| f.name() == family)
        .unwrap_or_else(|| die(prog, format_args!("unknown family '{family}'")));
    match parse_flag("--weights").and_then(|s| s.parse::<f64>().ok()) {
        Some(u) => family.instantiate_weighted(n, u, seed),
        None => family.instantiate(n, seed),
    }
}

/// Build or load the oracle; returns it with its meta, whether the
/// snapshot path was used for loading, and the preprocessing/load
/// seconds. The input graph is only parsed or generated when the oracle
/// must actually be built — serving from an existing snapshot touches
/// nothing but the snapshot file. `--fresh-snapshot` skips the load
/// path: the oracle is rebuilt and the save atomically overwrites
/// whatever file is already there.
pub fn obtain_oracle(prog: &str, seed: u64) -> (ApproxShortestPaths, OracleMeta, bool, f64) {
    let snapshot: Option<PathBuf> = parse_flag("--snapshot").map(PathBuf::from);
    let fresh_requested = has_flag("--fresh-snapshot");
    let version = parse_snapshot_version(prog);
    if let Some(path) = snapshot.as_ref().filter(|p| !fresh_requested && p.exists()) {
        let start = Instant::now();
        let (oracle, meta) = load_oracle_auto(path, parse_load_mode(prog))
            .unwrap_or_else(|e| die(prog, format_args!("cannot load {}: {e}", path.display())));
        let secs = start.elapsed().as_secs_f64();
        println!(
            "loaded snapshot {} ({} vertices, hopset size {}, {}) in {:.3}s",
            path.display(),
            oracle.graph().n(),
            oracle.hopset_size(),
            if oracle.is_mapped() {
                "served in place"
            } else {
                "decoded"
            },
            secs
        );
        return (oracle, meta, true, secs);
    }
    let g = load_graph(prog, seed);
    let params = HopsetParams::default();
    let start = Instant::now();
    let run = OracleBuilder::new()
        .params(params)
        .seed(Seed(seed))
        .build(&g)
        .unwrap_or_else(|e| die(prog, format_args!("preprocessing failed: {e}")));
    let secs = start.elapsed().as_secs_f64();
    let meta = OracleMeta::of_run(&run, params);
    println!(
        "preprocessed n={} m={} (hopset size {}, {}) in {:.3}s",
        g.n(),
        g.m(),
        run.artifact.hopset_size(),
        run.cost,
        secs
    );
    if let Some(path) = snapshot {
        match version {
            1 => save_oracle(&path, &run.artifact, &meta),
            _ => save_oracle_v2(&path, &run.artifact, &meta),
        }
        .unwrap_or_else(|e| die(prog, format_args!("cannot save {}: {e}", path.display())));
        println!("snapshot saved to {} (v{version})", path.display());
    }
    // Preprocessing is over: release the build-time split scratch this
    // thread's arena pool retained, so the long-lived serving process
    // doesn't carry O(n + m) recursion buffers into its steady state.
    psh_graph::view::drain_arena_pool();
    (run.artifact, meta, false, secs)
}

/// Whatever the serving binaries stood up from argv: a monolithic
/// [`ApproxShortestPaths`] or a [`ShardedOracle`], each with the
/// provenance it persists. Both faces serve through the
/// [`DistanceOracle`] trait; this enum only survives where a binary
/// genuinely needs the concrete side (journal reloaders, snapshot
/// cleanup).
pub enum ServedOracle {
    /// One oracle over the whole graph.
    Monolithic {
        /// The oracle itself.
        oracle: Arc<ApproxShortestPaths>,
        /// Snapshot meta (seed, params, build cost).
        meta: OracleMeta,
    },
    /// A stitched [`ShardedOracle`] with its rebuild provenance.
    Sharded {
        /// The stitched oracle.
        oracle: Arc<ShardedOracle>,
        /// Per-component metas + cliques, as a manifest persists them.
        parts: ShardedParts,
    },
}

impl ServedOracle {
    /// The trait object the serving stack is generic over.
    pub fn as_dyn(&self) -> Arc<dyn DistanceOracle> {
        match self {
            ServedOracle::Monolithic { oracle, .. } => {
                Arc::clone(oracle) as Arc<dyn DistanceOracle>
            }
            ServedOracle::Sharded { oracle, .. } => Arc::clone(oracle) as Arc<dyn DistanceOracle>,
        }
    }

    /// Shape of what is served (n, m, hopset size, shard epochs).
    pub fn descriptor(&self) -> OracleDescriptor {
        match self {
            ServedOracle::Monolithic { oracle, .. } => oracle.descriptor(),
            ServedOracle::Sharded { oracle, .. } => oracle.descriptor(),
        }
    }

    /// The build seed (root seed for a sharded build).
    pub fn seed(&self) -> Seed {
        match self {
            ServedOracle::Monolithic { meta, .. } => meta.seed,
            ServedOracle::Sharded { oracle, .. } => oracle.plan().seed(),
        }
    }

    /// Preprocessing cost: the build cost, or for a sharded oracle the
    /// parallel composition of its component builds.
    pub fn build_cost(&self) -> Cost {
        match self {
            ServedOracle::Monolithic { meta, .. } => meta.build_cost,
            ServedOracle::Sharded { parts, .. } => {
                let overlay = parts
                    .overlay_meta
                    .as_ref()
                    .map_or(Cost::ZERO, |m| m.build_cost);
                Cost::par_all(parts.shard_metas.iter().map(|m| m.build_cost)).then(overlay)
            }
        }
    }

    /// True for the sharded face.
    pub fn is_sharded(&self) -> bool {
        matches!(self, ServedOracle::Sharded { .. })
    }

    /// Answer a batch under `policy` — identical answers either face,
    /// any policy.
    pub fn query_batch(
        &self,
        pairs: &[(u32, u32)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        match self {
            ServedOracle::Monolithic { oracle, .. } => oracle.query_batch(pairs, policy),
            ServedOracle::Sharded { oracle, .. } => oracle.query_batch(pairs, policy),
        }
    }
}

/// Parse `--shards K`: `None` (absent or `K<=1`) builds/loads the
/// monolithic oracle, `Some(K)` a sharded one. Only consulted when an
/// oracle is *built* — loading sniffs the snapshot format instead, so a
/// sharded manifest is served sharded whatever the flag says.
pub fn parse_shards(prog: &str) -> Option<usize> {
    match parse_flag("--shards") {
        None => None,
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0 | 1) => None,
            Ok(k) => Some(k),
            Err(_) => die(
                prog,
                format_args!("bad --shards '{s}' (want a shard count, e.g. 4)"),
            ),
        },
    }
}

/// [`obtain_oracle`] generalized over both oracle faces: load whatever
/// the snapshot actually is (a `PSHM` sharded manifest or a v1/v2
/// monolithic snapshot), else build what `--shards` asks for and save
/// it in the matching format. Returns the oracle, whether a snapshot
/// was loaded, and the preprocessing/load seconds.
pub fn obtain_served_oracle(prog: &str, seed: u64) -> (ServedOracle, bool, f64) {
    let snapshot: Option<PathBuf> = parse_flag("--snapshot").map(PathBuf::from);
    let fresh_requested = has_flag("--fresh-snapshot");
    if let Some(path) = snapshot
        .as_ref()
        .filter(|p| !fresh_requested && p.exists() && is_sharded_manifest(p))
    {
        let start = Instant::now();
        let (oracle, parts) = load_sharded(path, parse_load_mode(prog))
            .unwrap_or_else(|e| die(prog, format_args!("cannot load {}: {e}", path.display())));
        let secs = start.elapsed().as_secs_f64();
        let d = oracle.descriptor();
        println!(
            "loaded sharded manifest {} ({} shards, n={}, epochs {:?}, {}) in {:.3}s",
            path.display(),
            oracle.num_shards(),
            d.n,
            d.epochs,
            if d.mapped {
                "served in place"
            } else {
                "decoded"
            },
            secs
        );
        return (
            ServedOracle::Sharded {
                oracle: Arc::new(oracle),
                parts,
            },
            true,
            secs,
        );
    }
    let shards = parse_shards(prog);
    let building_fresh = shards.is_some()
        && !snapshot
            .as_ref()
            .is_some_and(|p| !fresh_requested && p.exists());
    if let Some(k) = shards.filter(|_| building_fresh) {
        let g = load_graph(prog, seed);
        let start = Instant::now();
        let (run, parts) = ShardedOracleBuilder::new(k)
            .params(HopsetParams::default())
            .seed(Seed(seed))
            .execution(parse_policy(prog))
            .build_with_parts(&g)
            .unwrap_or_else(|e| die(prog, format_args!("sharded preprocessing failed: {e}")));
        let secs = start.elapsed().as_secs_f64();
        println!(
            "preprocessed n={} m={} into {} shards ({} boundary vertices, {}) in {:.3}s",
            g.n(),
            g.m(),
            run.artifact.num_shards(),
            run.artifact.plan().boundary_global().len(),
            run.cost,
            secs
        );
        let oracle = Arc::new(run.artifact);
        if let Some(path) = snapshot {
            save_sharded(&path, &oracle, &parts)
                .unwrap_or_else(|e| die(prog, format_args!("cannot save {}: {e}", path.display())));
            println!(
                "sharded manifest saved to {} (+ {} shard snapshot(s))",
                path.display(),
                oracle.num_shards()
            );
        }
        psh_graph::view::drain_arena_pool();
        return (ServedOracle::Sharded { oracle, parts }, false, secs);
    }
    let (oracle, meta, loaded, secs) = obtain_oracle(prog, seed);
    (
        ServedOracle::Monolithic {
            oracle: Arc::new(oracle),
            meta,
        },
        loaded,
        secs,
    )
}

/// Parse `--snapshot-version {1,2}` — the format `obtain_oracle` *saves*
/// (loading auto-detects either). Default 2: the zero-copy layout.
pub fn parse_snapshot_version(prog: &str) -> u16 {
    match parse_flag("--snapshot-version") {
        None => 2,
        Some(s) => match s.trim() {
            "1" => 1,
            "2" => 2,
            _ => die(
                prog,
                format_args!("bad --snapshot-version '{s}' (want 1 or 2)"),
            ),
        },
    }
}

/// Parse `--load-mode {mmap,read}` — how a v2 snapshot is opened
/// (ignored for v1 files, which always stream-decode). Default `mmap`.
pub fn parse_load_mode(prog: &str) -> LoadMode {
    match parse_flag("--load-mode") {
        None => LoadMode::Mmap,
        Some(s) => match s.trim() {
            "mmap" => LoadMode::Mmap,
            "read" => LoadMode::Read,
            _ => die(
                prog,
                format_args!("bad --load-mode '{s}' (want mmap or read)"),
            ),
        },
    }
}

/// Parse `--threads K` into an execution policy, strictly: a typo must
/// not silently fall back to the env policy. Absent flag → env policy.
pub fn parse_policy(prog: &str) -> psh_exec::ExecutionPolicy {
    use psh_exec::ExecutionPolicy;
    match parse_flag("--threads") {
        None => ExecutionPolicy::from_env(),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0 | 1) => ExecutionPolicy::Sequential,
            Ok(k) => ExecutionPolicy::Parallel { threads: k },
            Err(_) => die(
                prog,
                format_args!("bad --threads '{s}' (want a single thread count, e.g. 4)"),
            ),
        },
    }
}

/// Parse `--max-seconds S` (a runtime guard for smoke/CI use), strictly
/// and fail-fast so a typo dies before any long preprocessing.
pub fn parse_max_seconds(prog: &str) -> Option<f64> {
    match parse_flag("--max-seconds") {
        None => None,
        Some(s) => match s.trim().parse::<f64>() {
            Ok(v) if v > 0.0 => Some(v),
            _ => die(
                prog,
                format_args!("bad --max-seconds '{s}' (want seconds > 0)"),
            ),
        },
    }
}
