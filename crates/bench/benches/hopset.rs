//! Criterion microbench: hopset construction — Algorithm 4 vs the
//! sampled-clique [KS97] baseline and the sampled hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psh_baselines::ks_hopset::sampled_clique_hopset;
use psh_baselines::sampled_hierarchy::{sampled_hierarchy_hopset, HierarchyConfig};
use psh_bench::workloads::Family;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::HopsetParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn experiment_params() -> HopsetParams {
    HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    }
}

fn bench_hopset(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopset_build");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let g = Family::Random.instantiate(n, 42);
        group.bench_with_input(BenchmarkId::new("estc_recursive", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    HopsetBuilder::unweighted()
                        .params(experiment_params())
                        .seed(Seed(7))
                        .build(g)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sampled_clique", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(sampled_clique_hopset(g, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("sampled_hierarchy", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(sampled_hierarchy_hopset(
                    g,
                    &HierarchyConfig::default(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hopset);
criterion_main!(benches);
