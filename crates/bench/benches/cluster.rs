//! Criterion microbench: exponential start time clustering throughput
//! across graph families and β values (single-core wall-clock; the
//! reproduction currency is the cost model — see the `psh_pram` docs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psh_bench::workloads::Family;
use psh_cluster::{ClusterBuilder, Seed};
use std::hint::black_box;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("est_cluster");
    group.sample_size(10);
    for family in [Family::Random, Family::Grid] {
        for n in [1_000usize, 4_000] {
            let g = family.instantiate(n, 42);
            group.bench_with_input(BenchmarkId::new(family.name(), n), &g, |b, g| {
                b.iter(|| black_box(ClusterBuilder::new(0.2).seed(Seed(7)).build(g).unwrap()))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("est_cluster_beta_sweep");
    group.sample_size(10);
    let g = Family::Random.instantiate(2_000, 42);
    for beta in [0.05f64, 0.2, 0.8] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            b.iter(|| black_box(ClusterBuilder::new(beta).seed(Seed(7)).build(&g).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
