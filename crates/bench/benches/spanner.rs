//! Criterion microbench: spanner construction — ESTC spanner (ours) vs
//! Baswana–Sen. The greedy baseline is excluded here (quadratic; it only
//! runs in the table binaries at small scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psh_baselines::baswana_sen::baswana_sen_spanner;
use psh_bench::workloads::Family;
use psh_core::api::{Seed, SpannerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("unweighted_spanner_k3");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let g = Family::Random.instantiate(n, 42);
        group.bench_with_input(BenchmarkId::new("estc", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    SpannerBuilder::unweighted(3.0)
                        .seed(Seed(7))
                        .build(g)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("baswana_sen", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(baswana_sen_spanner(g, 3, &mut rng))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("weighted_spanner_k3");
    group.sample_size(10);
    for u in [16.0f64, 4096.0] {
        let g = Family::Random.instantiate_weighted(2_000, u, 42);
        group.bench_with_input(BenchmarkId::new("estc_logk", u as u64), &g, |b, g| {
            b.iter(|| {
                black_box(
                    SpannerBuilder::weighted(3.0)
                        .seed(Seed(7))
                        .build(g)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spanner);
criterion_main!(benches);
