//! Criterion microbench: s–t distance queries — hopset-backed h-hop
//! Bellman–Ford vs plain Bellman–Ford vs exact Dijkstra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psh_bench::workloads::Family;
use psh_core::api::{HopsetBuilder, Seed};
use psh_core::hopset::HopsetParams;
use psh_graph::traversal::bellman_ford::hop_limited_pair;
use psh_graph::traversal::dijkstra::dijkstra_pair;
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let params = HopsetParams {
        epsilon: 0.5,
        delta: 1.5,
        gamma1: 0.25,
        gamma2: 0.75,
        k_conf: 1.0,
    };
    let mut group = c.benchmark_group("st_query");
    group.sample_size(20);
    for family in [Family::PathGraph, Family::Grid] {
        let n = 4_000usize;
        let g = family.instantiate(n, 42);
        let nn = g.n();
        let hopset = HopsetBuilder::unweighted()
            .params(params)
            .seed(Seed(7))
            .build(&g)
            .unwrap()
            .artifact
            .into_single();
        let extra = hopset.to_extra_edges();
        let (s, t) = (0u32, (nn - 1) as u32);
        group.bench_with_input(BenchmarkId::new("hopset_bf", family.name()), &g, |b, g| {
            b.iter(|| black_box(hop_limited_pair(g, Some(&extra), s, t, nn)))
        });
        group.bench_with_input(BenchmarkId::new("plain_bf", family.name()), &g, |b, g| {
            b.iter(|| black_box(hop_limited_pair(g, None, s, t, nn)))
        });
        group.bench_with_input(BenchmarkId::new("dijkstra", family.name()), &g, |b, g| {
            b.iter(|| black_box(dijkstra_pair(g, s, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
