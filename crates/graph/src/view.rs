//! The graph-view abstraction: algorithms read graphs through
//! [`GraphView`], storage decides how the bytes are laid out.
//!
//! Algorithm 4 recurses on every cluster of every decomposition level "in
//! parallel". Before this module, each recursive call *materialized* its
//! cluster as a fresh [`CsrGraph`] — a depth-`d` hopset build copied the
//! adjacency structure `O(d)` times over, with a burst of per-child `Vec`
//! allocations (edge staging, sort, dedup, CSR build) at every level. The
//! view layer removes that cost:
//!
//! * [`GraphView`] is the read-only contract every traversal, the
//!   clustering race, the spanner selection, and the hopset recursion are
//!   generic over: vertex/edge counts, degrees, neighbor iteration (with
//!   weights and canonical edge ids), and canonical edge access. It is
//!   the seam future storage backends (sharded, mmap-backed) plug into.
//! * [`CsrView`] is a borrowed CSR graph — five slices into someone
//!   else's storage. It is `Copy`, costs nothing to hand to a recursive
//!   call, and iterates exactly like the [`CsrGraph`] it was carved from
//!   (same canonical edge order, same adjacency order), so artifacts
//!   built through a view are byte-identical to artifacts built on a
//!   materialized copy — the `view_equivalence` suite enforces this.
//! * [`SplitArena`] is the per-recursion-level scratch that backs the
//!   views: [`SplitArena::split`] is a one-pass rewrite of the old
//!   `split_by_labels` that emits *all* child views of a decomposition
//!   into one reused set of offsets/targets/weights/eids buffers, with no
//!   per-child allocation. Arenas recycle through a thread-local pool
//!   ([`SplitArena::lease`]), so a deep recursion reuses one arena per
//!   level per worker instead of re-allocating at every node.
//!
//! The contract that makes the equivalence hold: a child's canonical edge
//! list inherits the parent's sorted order (local ids are assigned in
//! increasing parent-id order, so the relabeling is monotone in both
//! endpoints), and adjacency slots are filled by the same
//! edges-in-canonical-order sweep [`CsrGraph`] construction uses.

use crate::csr::{CsrGraph, Edge, VertexId, Weight};
use psh_pram::Cost;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Read-only access to an undirected graph in the workspace's canonical
/// shape: `u32` vertices, `u64` weights ≥ 1, deduplicated canonical edges
/// `(u < v, w)` with per-adjacency-slot edge provenance.
///
/// Implemented by [`CsrGraph`] (owned storage) and [`CsrView`] (borrowed
/// arena storage). Algorithms written against `impl GraphView` run on
/// both — and on whatever storage backends are added later — without
/// caring which one they were handed.
pub trait GraphView: Sync {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Number of (undirected, deduplicated) edges.
    fn m(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterate `(neighbor, weight)` pairs of `v`, in canonical adjacency
    /// order (the order is part of the determinism contract: artifacts
    /// must not depend on which implementation backed the iteration).
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_;

    /// Iterate `(neighbor, weight, canonical_edge_id)` triples of `v`.
    fn neighbors_with_eid(&self, v: VertexId)
        -> impl Iterator<Item = (VertexId, Weight, u32)> + '_;

    /// The canonical edge list, sorted by `(u, v)`.
    fn edges(&self) -> &[Edge];

    /// The canonical edge with id `eid`.
    #[inline]
    fn edge(&self, eid: u32) -> Edge {
        self.edges()[eid as usize]
    }

    /// True if every edge has weight 1.
    fn is_unit_weight(&self) -> bool {
        self.edges().iter().all(|e| e.w == 1)
    }

    /// Sum of all edge weights.
    fn total_weight(&self) -> u64 {
        self.edges().iter().map(|e| e.w).sum()
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn n(&self) -> usize {
        CsrGraph::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        CsrGraph::m(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        CsrGraph::neighbors(self, v)
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        CsrGraph::neighbors_with_eid(self, v)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        CsrGraph::edges(self)
    }
}

/// A borrowed CSR graph: five slices into a [`SplitArena`] (or any other
/// owner of CSR-shaped storage). `Copy`, so recursive calls pass it by
/// value. Offsets are local to the view's own slices.
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    /// `offsets[v]..offsets[v+1]` indexes the three adjacency slices.
    offsets: &'a [u32],
    targets: &'a [VertexId],
    weights: &'a [Weight],
    slot_eids: &'a [u32],
    edges: &'a [Edge],
}

impl<'a> CsrView<'a> {
    /// Assemble a view from raw CSR parts. `offsets` must have one entry
    /// per vertex plus a trailing total; adjacency slices must all have
    /// `2 * edges.len()` entries. Exposed so storage owners other than
    /// [`SplitArena`] can hand out views.
    pub fn from_raw(
        offsets: &'a [u32],
        targets: &'a [VertexId],
        weights: &'a [Weight],
        slot_eids: &'a [u32],
        edges: &'a [Edge],
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets needs a trailing total");
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert_eq!(targets.len(), slot_eids.len());
        debug_assert_eq!(targets.len(), 2 * edges.len());
        CsrView {
            offsets,
            targets,
            weights,
            slot_eids,
            edges,
        }
    }

    /// Copy this view into an owned [`CsrGraph`] (the materializing
    /// escape hatch; the whole point of views is to avoid calling this on
    /// hot paths).
    pub fn to_graph(&self) -> CsrGraph {
        CsrGraph::from_edges(self.n(), self.edges.iter().copied())
    }

    #[inline]
    fn slot_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }
}

impl GraphView for CsrView<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn m(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.slot_range(v);
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        let range = self.slot_range(v);
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range.clone()].iter().copied())
            .zip(self.slot_eids[range].iter().copied())
            .map(|((t, w), e)| (t, w, e))
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        self.edges
    }
}

/// Reusable scratch storage for one level of a cluster decomposition:
/// every child subgraph of one [`SplitArena::split`] call lives in these
/// buffers, exposed as [`CsrView`]s.
///
/// A depth-`d` recursion leases one arena per level ([`SplitArena::lease`]
/// recycles them through a thread-local pool), so steady-state deep
/// recursion performs **zero** per-child allocations: the split writes
/// into buffers sized once and reused.
#[derive(Debug, Default)]
pub struct SplitArena {
    /// Child `c`'s vertices occupy `to_parent[vert_start[c]..vert_start[c+1]]`.
    vert_start: Vec<usize>,
    /// Child `c`'s canonical edges occupy `edges[edge_start[c]..edge_start[c+1]]`.
    edge_start: Vec<usize>,
    /// Parent vertex of each (child-grouped) local vertex.
    to_parent: Vec<VertexId>,
    /// Concatenated per-child offset blocks (`n_c + 1` entries each,
    /// child-relative values).
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    slot_eids: Vec<u32>,
    edges: Vec<Edge>,
    /// Scratch: parent vertex → local id within its child.
    to_local: Vec<u32>,
    /// Scratch: per-child or per-vertex fill cursors.
    cursor: Vec<usize>,
    children: usize,
}

thread_local! {
    static ARENA_POOL: RefCell<Vec<SplitArena>> = const { RefCell::new(Vec::new()) };
}

/// Arenas kept per worker thread; beyond this, returned arenas are
/// dropped. Recursion depth is capped well below this, so in practice
/// every level's arena is recycled.
const ARENA_POOL_CAP: usize = 64;

impl SplitArena {
    /// A fresh, empty arena. Prefer [`SplitArena::lease`] on recursive
    /// paths so buffers recycle.
    pub fn new() -> Self {
        SplitArena::default()
    }

    /// Lease an arena from the current thread's pool (or create one).
    /// Dropping the lease returns the arena — buffers intact — to the
    /// pool, so the next `lease` on this thread reuses its allocations.
    pub fn lease() -> ArenaLease {
        let arena = ARENA_POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        ArenaLease(Some(arena))
    }

    /// Split `g` into the induced subgraphs of a dense labeling
    /// (`labels[v] in 0..k`), overwriting this arena's previous contents.
    /// Cut edges (different labels) are dropped — they are exactly the
    /// edges Lemma 4.2 charges separately.
    ///
    /// One pass over the vertices plus two over the canonical edge list;
    /// no allocation beyond growing this arena's buffers (amortized to
    /// zero under reuse). The resulting children are read through
    /// [`SplitArena::view`] / [`SplitArena::to_parent`] and are
    /// byte-identical, as graphs, to what the materializing
    /// `split_by_labels` builds.
    ///
    /// The reported [`Cost`] matches `split_by_labels` exactly — the two
    /// paths are interchangeable mid-pipeline without perturbing any
    /// artifact's cost accounting.
    pub fn split<G: GraphView>(&mut self, g: &G, labels: &[u32], k: usize) -> Cost {
        let n = g.n();
        assert_eq!(labels.len(), n, "labels must cover every vertex");
        self.children = k;

        // Pass 1 — group vertices by label: child vertex ranges, the
        // grouped to_parent table, and the parent→local map.
        self.vert_start.clear();
        self.vert_start.resize(k + 1, 0);
        for &l in labels {
            self.vert_start[l as usize + 1] += 1;
        }
        for c in 0..k {
            self.vert_start[c + 1] += self.vert_start[c];
        }
        self.to_parent.resize(n, 0);
        self.to_local.resize(n, 0);
        self.cursor.clear();
        self.cursor.resize(k, 0);
        for (v, &l) in labels.iter().enumerate() {
            let local = self.cursor[l as usize];
            self.to_parent[self.vert_start[l as usize] + local] = v as u32;
            self.to_local[v] = local as u32;
            self.cursor[l as usize] += 1;
        }

        // Pass 2 — count intra-cluster edges per child and per-vertex
        // intra-cluster degrees (reusing to_local is not possible here, so
        // degrees go into a dedicated section of `cursor` after the first
        // k slots are consumed; we simply re-size it to n below).
        self.edge_start.clear();
        self.edge_start.resize(k + 1, 0);
        self.cursor.clear();
        self.cursor.resize(n, 0); // cursor[v] = intra-degree of parent vertex v
        for e in g.edges() {
            let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
            if lu == lv {
                self.edge_start[lu as usize + 1] += 1;
                self.cursor[e.u as usize] += 1;
                self.cursor[e.v as usize] += 1;
            }
        }
        for c in 0..k {
            self.edge_start[c + 1] += self.edge_start[c];
        }
        let m_intra = self.edge_start[k];

        // Per-child offset blocks: block for child c starts at
        // vert_start[c] + c (each child contributes n_c + 1 entries).
        self.offsets.resize(n + k, 0);
        for c in 0..k {
            let base = self.vert_start[c] + c;
            self.offsets[base] = 0;
            for i in 0..(self.vert_start[c + 1] - self.vert_start[c]) {
                let parent = self.to_parent[self.vert_start[c] + i];
                self.offsets[base + i + 1] =
                    self.offsets[base + i] + self.cursor[parent as usize] as u32;
            }
        }

        // Pass 3 — fill canonical child edges in parent canonical order.
        // Local ids are monotone in parent ids within a child, so the
        // relabeled list stays sorted by (u, v): a valid canonical order.
        self.edges.resize(m_intra, Edge { u: 0, v: 0, w: 0 });
        self.cursor.clear();
        self.cursor.resize(k, 0);
        for e in g.edges() {
            let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
            if lu == lv {
                let c = lu as usize;
                let (a, b) = (self.to_local[e.u as usize], self.to_local[e.v as usize]);
                debug_assert!(a < b, "monotone relabeling must preserve u < v");
                self.edges[self.edge_start[c] + self.cursor[c]] = Edge { u: a, v: b, w: e.w };
                self.cursor[c] += 1;
            }
        }

        // Pass 4 — fill adjacency slots with the same edges-in-order
        // sweep CsrGraph construction uses, so neighbor iteration order
        // matches a materialized child exactly.
        self.targets.resize(2 * m_intra, 0);
        self.weights.resize(2 * m_intra, 0);
        self.slot_eids.resize(2 * m_intra, 0);
        self.cursor.clear();
        self.cursor.resize(n, 0); // cursor over global slot positions, per parent vertex
        for c in 0..k {
            let off_base = self.vert_start[c] + c;
            let slot_base = 2 * self.edge_start[c];
            for i in 0..(self.vert_start[c + 1] - self.vert_start[c]) {
                let parent = self.to_parent[self.vert_start[c] + i];
                self.cursor[parent as usize] = slot_base + self.offsets[off_base + i] as usize;
            }
        }
        for c in 0..k {
            for local_eid in 0..(self.edge_start[c + 1] - self.edge_start[c]) {
                let e = self.edges[self.edge_start[c] + local_eid];
                let pu = self.to_parent[self.vert_start[c] + e.u as usize] as usize;
                let pv = self.to_parent[self.vert_start[c] + e.v as usize] as usize;
                let su = self.cursor[pu];
                self.targets[su] = e.v;
                self.weights[su] = e.w;
                self.slot_eids[su] = local_eid as u32;
                self.cursor[pu] += 1;
                let sv = self.cursor[pv];
                self.targets[sv] = e.u;
                self.weights[sv] = e.w;
                self.slot_eids[sv] = local_eid as u32;
                self.cursor[pv] += 1;
            }
        }

        // Same cost as the materializing split: the two paths must be
        // interchangeable without perturbing any artifact's accounting.
        Cost::new(n as u64 + g.m() as u64, 3)
    }

    /// Number of children produced by the last [`SplitArena::split`].
    pub fn children(&self) -> usize {
        self.children
    }

    /// Vertex count of child `c`.
    pub fn child_n(&self, c: usize) -> usize {
        self.vert_start[c + 1] - self.vert_start[c]
    }

    /// Edge count of child `c`.
    pub fn child_m(&self, c: usize) -> usize {
        self.edge_start[c + 1] - self.edge_start[c]
    }

    /// The view of child `c` — valid until the next `split`.
    pub fn view(&self, c: usize) -> CsrView<'_> {
        let off_base = self.vert_start[c] + c;
        let slots = 2 * self.edge_start[c]..2 * self.edge_start[c + 1];
        CsrView {
            offsets: &self.offsets[off_base..=off_base + self.child_n(c)],
            targets: &self.targets[slots.clone()],
            weights: &self.weights[slots.clone()],
            slot_eids: &self.slot_eids[slots],
            edges: &self.edges[self.edge_start[c]..self.edge_start[c + 1]],
        }
    }

    /// Parent vertex ids of child `c`'s local vertices
    /// (`to_parent(c)[local] = parent id`), ascending.
    pub fn to_parent(&self, c: usize) -> &[VertexId] {
        &self.to_parent[self.vert_start[c]..self.vert_start[c + 1]]
    }
}

/// Drop every arena retained by the **current thread's** pool, releasing
/// the scratch buffers. The pool otherwise keeps leased arenas (buffers
/// intact) for the life of the thread — ideal while a recursion is
/// running, wasteful once a build phase is over. Long-lived processes
/// that build once and then serve (e.g. `psh-serve`) should call this on
/// the driving thread after preprocessing; worker threads release theirs
/// when their hosting pool is dropped.
pub fn drain_arena_pool() {
    ARENA_POOL.with(|pool| pool.borrow_mut().clear());
}

/// A [`SplitArena`] borrowed from the thread-local pool; returns the
/// arena (buffers intact) on drop. Dereferences to the arena.
pub struct ArenaLease(Option<SplitArena>);

impl Deref for ArenaLease {
    type Target = SplitArena;

    fn deref(&self) -> &SplitArena {
        self.0.as_ref().expect("arena present until drop")
    }
}

impl DerefMut for ArenaLease {
    fn deref_mut(&mut self) -> &mut SplitArena {
        self.0.as_mut().expect("arena present until drop")
    }
}

impl Drop for ArenaLease {
    fn drop(&mut self) {
        if let Some(arena) = self.0.take() {
            ARENA_POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < ARENA_POOL_CAP {
                    pool.push(arena);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A view must look exactly like the graph it was carved from.
    fn assert_same_graph<A: GraphView, B: GraphView>(a: &A, b: &B) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.edges(), b.edges());
        for v in 0..a.n() as u32 {
            assert_eq!(a.degree(v), b.degree(v));
            assert_eq!(
                a.neighbors(v).collect::<Vec<_>>(),
                b.neighbors(v).collect::<Vec<_>>()
            );
            assert_eq!(
                a.neighbors_with_eid(v).collect::<Vec<_>>(),
                b.neighbors_with_eid(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn whole_graph_as_single_child_matches_original() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(60, 120, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 9, &mut rng);
        let mut arena = SplitArena::new();
        arena.split(&g, &vec![0u32; g.n()], 1);
        assert_eq!(arena.children(), 1);
        assert_eq!(arena.to_parent(0), (0..60u32).collect::<Vec<_>>());
        assert_same_graph(&arena.view(0), &g);
    }

    #[test]
    fn split_matches_materialized_subgraphs() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::connected_random(80, 200, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 7, &mut rng);
        let labels: Vec<u32> = (0..g.n() as u32).map(|v| v % 5).collect();
        let mut arena = SplitArena::new();
        let arena_cost = arena.split(&g, &labels, 5);
        let (subs, legacy_cost) = crate::subgraph::split_by_labels(&g, &labels, 5);
        assert_eq!(arena_cost, legacy_cost, "paths must agree on cost");
        assert_eq!(arena.children(), subs.len());
        for (c, sub) in subs.iter().enumerate() {
            assert_eq!(arena.to_parent(c), &sub.to_parent[..]);
            assert_same_graph(&arena.view(c), &sub.graph);
        }
    }

    #[test]
    fn arena_reuse_overwrites_previous_contents() {
        let g1 = generators::grid(6, 6);
        let g2 = generators::path(10);
        let mut arena = SplitArena::new();
        arena.split(&g1, &[0u32; 36], 1);
        assert_eq!(arena.view(0).m(), g1.m());
        // smaller second split: stale tail bytes must not leak into views
        arena.split(&g2, &(0..10u32).map(|v| v % 2).collect::<Vec<_>>(), 2);
        assert_eq!(arena.children(), 2);
        assert_eq!(arena.view(0).n() + arena.view(1).n(), 10);
        let total_m: usize = (0..2).map(|c| arena.view(c).m()).sum();
        // path 0-1-…-9 with labels v%2 cuts every edge
        assert_eq!(total_m, 0);
    }

    #[test]
    fn empty_children_are_valid_empty_views() {
        let g = generators::path(4);
        let mut arena = SplitArena::new();
        // label 3 is never used: child 3 must be an empty, queryable view
        arena.split(&g, &[0, 0, 1, 1], 4);
        assert_eq!(arena.child_n(3), 0);
        assert_eq!(arena.view(3).n(), 0);
        assert_eq!(arena.view(3).m(), 0);
    }

    #[test]
    fn lease_recycles_buffers_per_thread() {
        let g = generators::grid(8, 8);
        let cap = {
            let mut lease = SplitArena::lease();
            lease.split(&g, &vec![0u32; 64], 1);
            lease.targets.capacity()
        };
        // the recycled arena comes back with its buffers intact
        let lease = SplitArena::lease();
        assert!(lease.targets.capacity() >= cap);
    }

    #[test]
    fn to_graph_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::connected_random(30, 60, &mut rng);
        let mut arena = SplitArena::new();
        arena.split(&g, &[0u32; 30], 1);
        assert_eq!(arena.view(0).to_graph(), g);
    }

    proptest! {
        /// Arena children and materialized children are indistinguishable
        /// through the GraphView interface, for arbitrary edge soups and
        /// labelings.
        #[test]
        fn prop_arena_split_equals_materializing_split(
            raw in proptest::collection::vec((0u32..40, 0u32..40, 1u64..20), 0..200),
            labels in proptest::collection::vec(0u32..6, 40)) {
            let g = CsrGraph::from_edges(40, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            let mut arena = SplitArena::new();
            arena.split(&g, &labels, 6);
            let (subs, _) = crate::subgraph::split_by_labels(&g, &labels, 6);
            prop_assert_eq!(arena.children(), subs.len());
            for (c, sub) in subs.iter().enumerate() {
                prop_assert_eq!(arena.to_parent(c), &sub.to_parent[..]);
                let view = arena.view(c);
                prop_assert_eq!(view.edges(), sub.graph.edges());
                for v in 0..sub.graph.n() as u32 {
                    prop_assert_eq!(
                        view.neighbors_with_eid(v).collect::<Vec<_>>(),
                        sub.graph.neighbors_with_eid(v).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}
