//! Union-find (disjoint set union), sequential and concurrent.
//!
//! Used by Appendix B's hierarchical weight decomposition (components of
//! edge-weight prefixes) and by the contraction bookkeeping in
//! `WellSeparatedSpanner` (Algorithm 3), where cluster forests from earlier
//! levels are merged into the running contraction `H_{i-1}`.

use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential union-find with union by size and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // path halving
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Representative without path compression (for `&self` contexts).
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Dense relabeling: returns `(labels, k)` where `labels[v] in 0..k`
    /// and vertices share a label iff they share a set.
    pub fn labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut map = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            let r = self.find(v);
            if map[r as usize] == u32::MAX {
                map[r as usize] = next;
                next += 1;
            }
            labels[v as usize] = map[r as usize];
        }
        (labels, next as usize)
    }
}

/// Lock-free concurrent union-find (Anderson–Woll style hooking with CAS),
/// suitable for processing edge lists from rayon parallel iterators. This is
/// the shape used by the linear-work parallel connectivity of \[SDB14\] that
/// the paper cites.
#[derive(Debug)]
pub struct AtomicUnionFind {
    parent: Vec<AtomicU32>,
}

impl AtomicUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        AtomicUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Representative of `x`'s set (with path compression via CAS).
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // halve the path; failure is benign (someone else compressed)
            let _ = self.parent[x as usize].compare_exchange(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`. Hooks the larger-id root under the
    /// smaller-id root so the outcome is deterministic regardless of
    /// interleaving. Returns true if a merge happened in this call.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        loop {
            if ra == rb {
                return false;
            }
            // deterministic direction: larger root hooks under smaller
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    ra = self.find(ra);
                    rb = self.find(rb);
                }
            }
        }
    }

    /// Freeze into dense labels `(labels, k)`.
    pub fn labels(&self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut map = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            let r = self.find(v);
            if map[r as usize] == u32::MAX {
                map[r as usize] = next;
                next += 1;
            }
            labels[v as usize] = map[r as usize];
        }
        (labels, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.component_size(0), 2);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let (labels, k) = uf.labels();
        assert_eq!(k, 3);
        assert!(labels.iter().all(|&l| (l as usize) < k));
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[4]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn atomic_union_find_agrees_with_sequential() {
        let edges: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5), (1, 2), (6, 7)];
        let auf = AtomicUnionFind::new(8);
        edges.par_iter().for_each(|&(a, b)| {
            auf.union(a, b);
        });
        let (la, ka) = auf.labels();
        let mut uf = UnionFind::new(8);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        let (ls, ks) = uf.labels();
        assert_eq!(ka, ks);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(la[i] == la[j], ls[i] == ls[j], "pair ({i},{j})");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_concurrent_equals_sequential(
            edges in proptest::collection::vec((0u32..64, 0u32..64), 0..300)) {
            let auf = AtomicUnionFind::new(64);
            edges.par_iter().for_each(|&(a, b)| { auf.union(a, b); });
            let (la, _) = auf.labels();
            let mut uf = UnionFind::new(64);
            for &(a, b) in &edges { uf.union(a, b); }
            let (ls, _) = uf.labels();
            for i in 0..64 {
                for j in 0..64 {
                    prop_assert_eq!(la[i] == la[j], ls[i] == ls[j]);
                }
            }
        }
    }
}
