//! Software prefetch for the traversal hot loops.
//!
//! The inner loops of Dial, Δ-stepping, and the hop-limited relaxation
//! all follow the same pattern: walk a contiguous adjacency slice and,
//! per neighbor `w`, probe a big per-vertex array (`dist[w]`,
//! `settled[w]`) at an essentially random index. The adjacency walk is
//! hardware-prefetch friendly; the probes are not — each one is a
//! dependent random read that stalls the loop on a cache miss.
//!
//! [`prefetch_read`] issues a non-binding cache hint for one element,
//! and [`lookahead`] wraps an iterator so every item is *hinted* a fixed
//! number of positions (`LOOKAHEAD`) before it is *yielded*: by the time
//! the loop body probes `dist[w]`, the line has had a few dozen
//! iterations of adjacency streaming to arrive. The adapter buffers
//! items in a fixed ring — no allocation, no reordering, no effect on
//! the yielded sequence — so determinism and cost accounting are
//! untouched; on targets without a prefetch intrinsic the hint is a
//! no-op and the adapter degrades to a plain pass-through.

/// How far ahead [`lookahead`] hints: items are prefetch-touched this
/// many positions before they are yielded. Sized to cover a handful of
/// in-flight cache misses without holding lines so long they are
/// evicted again.
pub const LOOKAHEAD: usize = 8;

/// Vertex count below which the traversal loops skip the hint adapter.
/// The probe targets are per-vertex arrays (8 B/entry or less): under
/// ~64k vertices they are L2-resident, the probes all but never miss,
/// and the ring buffer costs more than the stalls it hides — the
/// benchsuite serve matrix loses ~40% qps on n=800 cells if the adapter
/// runs unconditionally. Above the threshold the arrays outgrow L2 and
/// the hints start paying for themselves (the benchsuite's n≈120k load
/// row runs the hinted arm).
pub const PREFETCH_MIN_VERTICES: usize = 1 << 16;

/// True when per-vertex state of `n` entries is big enough that hinted
/// probes ([`lookahead`] + [`prefetch_read`]) beat plain ones.
#[inline(always)]
pub fn prefetch_pays(n: usize) -> bool {
    n >= PREFETCH_MIN_VERTICES
}

/// Hint that `data[idx]` will be read soon. Out-of-range indices are
/// ignored (the hint must never fault); on targets without a stable
/// prefetch intrinsic this is a no-op.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < data.len() {
        // SAFETY: idx is in bounds; _mm_prefetch has no memory effects
        // beyond the cache hint and accepts any address.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(idx) as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, idx);
    }
}

/// Wrap `inner` so `touch` runs on every item [`LOOKAHEAD`] positions
/// before that item is yielded (and immediately, for the first few).
/// Yields exactly `inner`'s items in exactly `inner`'s order.
pub fn lookahead<I, F>(inner: I, touch: F) -> Lookahead<I, F>
where
    I: Iterator,
    F: FnMut(&I::Item),
{
    Lookahead {
        inner,
        buf: std::array::from_fn(|_| None),
        head: 0,
        count: 0,
        done: false,
        touch,
    }
}

/// Iterator adapter built by [`lookahead`]: a fixed [`LOOKAHEAD`]-slot
/// ring buffer between the source and the consumer, with the `touch`
/// hook running at fill time.
pub struct Lookahead<I: Iterator, F> {
    inner: I,
    buf: [Option<I::Item>; LOOKAHEAD],
    /// Ring index of the oldest buffered item.
    head: usize,
    count: usize,
    done: bool,
    touch: F,
}

impl<I, F> Iterator for Lookahead<I, F>
where
    I: Iterator,
    F: FnMut(&I::Item),
{
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        while !self.done && self.count < LOOKAHEAD {
            match self.inner.next() {
                Some(item) => {
                    (self.touch)(&item);
                    self.buf[(self.head + self.count) % LOOKAHEAD] = Some(item);
                    self.count += 1;
                }
                None => self.done = true,
            }
        }
        if self.count == 0 {
            return None;
        }
        let item = self.buf[self.head].take();
        self.head = (self.head + 1) % LOOKAHEAD;
        self.count -= 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        (
            lo.saturating_add(self.count),
            hi.and_then(|h| h.checked_add(self.count)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_every_item_in_order() {
        for len in [0usize, 1, 7, 8, 9, 100] {
            let items: Vec<usize> = (0..len).collect();
            let out: Vec<usize> = lookahead(items.iter().copied(), |_| {}).collect();
            assert_eq!(out, items, "len = {len}");
        }
    }

    #[test]
    fn touch_runs_lookahead_positions_early() {
        let touched = std::cell::RefCell::new(Vec::new());
        let mut it = lookahead(0..100u32, |&x| touched.borrow_mut().push(x));
        // pulling one item must have touched the first LOOKAHEAD items
        assert_eq!(it.next(), Some(0));
        assert_eq!(*touched.borrow(), (0..LOOKAHEAD as u32).collect::<Vec<_>>());
        assert_eq!(it.next(), Some(1));
        assert_eq!(touched.borrow().len(), LOOKAHEAD + 1);
        // every item is touched exactly once overall
        let mut all = Vec::new();
        lookahead(0..100u32, |&x| all.push(x)).for_each(drop);
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn prefetch_hint_tolerates_any_index() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 999); // out of range: ignored, never faults
        prefetch_read::<u64>(&[], 0);
    }

    #[test]
    fn size_hint_accounts_for_buffered_items() {
        let mut it = lookahead(0..20u32, |_| {});
        it.next();
        let (lo, hi) = it.size_hint();
        assert_eq!(lo, 19);
        assert_eq!(hi, Some(19));
    }
}
