//! Quotient graphs `G/H`: contraction with minimum-weight parallel-edge
//! merging and edge provenance.
//!
//! §2 of the paper: "we will use `G/H` to denote the quotient graph obtained
//! from `G` after contracting the connected components of `H` into points,
//! removing self-loops and merging parallel edges (by keeping the shortest
//! edge)." Both the weighted spanner (Algorithm 3, `Γ_i = G[A_i]/H_{i-1}`)
//! and Appendix B's weight decomposition quotient by prefixes of edge
//! classes.
//!
//! Spanners must ultimately contain **original** edges, so each quotient
//! edge records which canonical edge of the parent graph it represents
//! (the lightest among its parallel class, ties broken deterministically by
//! edge id).

use crate::csr::{CsrGraph, Edge, VertexId};
use psh_pram::Cost;

/// A contracted graph with provenance into its parent.
#[derive(Clone, Debug)]
pub struct QuotientGraph {
    /// The quotient graph over super-vertices `0..count`.
    pub graph: CsrGraph,
    /// For each canonical edge of `graph`, the canonical edge id in the
    /// *parent* graph it represents.
    pub parent_eid: Vec<u32>,
    /// The labeling used to contract (`labels[parent_vertex] = super_vertex`).
    pub labels: Vec<u32>,
}

impl QuotientGraph {
    /// The parent-graph edge represented by quotient edge `qeid`.
    pub fn original_edge(&self, parent: &CsrGraph, qeid: u32) -> Edge {
        parent.edge(self.parent_eid[qeid as usize])
    }

    /// Super-vertex of a parent vertex.
    #[inline]
    pub fn super_of(&self, v: VertexId) -> VertexId {
        self.labels[v as usize]
    }
}

/// Contract `g` by a dense labeling (`labels[v] in 0..k`). Self-loops
/// (intra-component edges) disappear; parallel edges keep the lightest
/// representative, ties broken by the smaller parent edge id so the result
/// is deterministic.
pub fn quotient(g: &CsrGraph, labels: &[u32], k: usize) -> (QuotientGraph, Cost) {
    assert_eq!(labels.len(), g.n());
    // (super_u, super_v, w, parent_eid) for inter-component edges
    let mut qedges: Vec<(u32, u32, u64, u32)> = Vec::new();
    for (eid, e) in g.edges().iter().enumerate() {
        let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
        if lu != lv {
            let (a, b) = if lu < lv { (lu, lv) } else { (lv, lu) };
            qedges.push((a, b, e.w, eid as u32));
        }
    }
    // Sort by endpoints, then weight, then parent id → first of each group
    // is the canonical lightest representative.
    qedges.sort_unstable();
    qedges.dedup_by_key(|&mut (a, b, _, _)| (a, b));
    let parent_eid: Vec<u32> = qedges.iter().map(|&(_, _, _, id)| id).collect();
    let graph = CsrGraph::from_edges(k, qedges.iter().map(|&(a, b, w, _)| Edge::new(a, b, w)));
    debug_assert_eq!(graph.m(), parent_eid.len());
    let cost = Cost::new(g.m() as u64 + g.n() as u64, 2);
    (
        QuotientGraph {
            graph,
            parent_eid,
            labels: labels.to_vec(),
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 0-1-2 form one component, 3-4 another, 5 alone; various cross edges.
    fn sample() -> (CsrGraph, Vec<u32>) {
        let g = CsrGraph::from_edges(
            6,
            [
                Edge::new(0, 1, 1), // internal to component 0
                Edge::new(1, 2, 1), // internal to component 0
                Edge::new(2, 3, 7), // cross 0-1
                Edge::new(0, 4, 3), // cross 0-1 (parallel after contraction, lighter)
                Edge::new(4, 5, 2), // cross 1-2
                Edge::new(3, 5, 9), // cross 1-2 (parallel, heavier)
            ],
        );
        (g, vec![0, 0, 0, 1, 1, 2])
    }

    #[test]
    fn contraction_merges_and_keeps_lightest() {
        let (g, labels) = sample();
        let (q, _) = quotient(&g, &labels, 3);
        assert_eq!(q.graph.n(), 3);
        assert_eq!(q.graph.m(), 2); // {0,1} and {1,2}
        let e01 = q
            .graph
            .edges()
            .iter()
            .find(|e| e.u == 0 && e.v == 1)
            .unwrap();
        assert_eq!(e01.w, 3); // min(7, 3)
        let e12 = q
            .graph
            .edges()
            .iter()
            .find(|e| e.u == 1 && e.v == 2)
            .unwrap();
        assert_eq!(e12.w, 2); // min(2, 9)
    }

    #[test]
    fn provenance_maps_to_the_lightest_parent_edge() {
        let (g, labels) = sample();
        let (q, _) = quotient(&g, &labels, 3);
        for (qeid, qe) in q.graph.edges().iter().enumerate() {
            let orig = q.original_edge(&g, qeid as u32);
            assert_eq!(orig.w, qe.w);
            // endpoints of the original edge contract to the quotient endpoints
            let (su, sv) = (q.super_of(orig.u), q.super_of(orig.v));
            assert_eq!(
                (su.min(sv), su.max(sv)),
                (qe.u, qe.v),
                "provenance endpoint mismatch"
            );
        }
    }

    #[test]
    fn full_contraction_gives_single_vertex() {
        let (g, _) = sample();
        let labels = vec![0u32; 6];
        let (q, _) = quotient(&g, &labels, 1);
        assert_eq!(q.graph.n(), 1);
        assert_eq!(q.graph.m(), 0);
    }

    #[test]
    fn identity_contraction_preserves_graph() {
        let (g, _) = sample();
        let labels: Vec<u32> = (0..6).collect();
        let (q, _) = quotient(&g, &labels, 6);
        assert_eq!(q.graph.m(), g.m());
        assert_eq!(q.graph.edges(), g.edges());
    }

    proptest! {
        /// Quotient edges biject onto the connected pairs of super-vertices,
        /// each carrying the minimum crossing weight.
        #[test]
        fn prop_quotient_min_weights(
            raw in proptest::collection::vec((0u32..20, 0u32..20, 1u64..50), 0..100),
            labels in proptest::collection::vec(0u32..5, 20)) {
            let g = CsrGraph::from_edges(20, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            let (q, _) = quotient(&g, &labels, 5);
            use std::collections::HashMap;
            let mut expect: HashMap<(u32, u32), u64> = HashMap::new();
            for e in g.edges() {
                let (a, b) = (labels[e.u as usize], labels[e.v as usize]);
                if a != b {
                    let key = (a.min(b), a.max(b));
                    let slot = expect.entry(key).or_insert(u64::MAX);
                    *slot = (*slot).min(e.w);
                }
            }
            prop_assert_eq!(q.graph.m(), expect.len());
            for e in q.graph.edges() {
                prop_assert_eq!(expect[&(e.u, e.v)], e.w);
            }
        }
    }
}
