//! # psh-graph — the graph substrate
//!
//! Everything in the paper runs on undirected graphs with positive integer
//! edge weights (§2 normalizes the minimum weight to 1; Appendix A buckets
//! searches by integer distance parts). This crate provides that substrate:
//!
//! * [`CsrGraph`] — compressed-sparse-row undirected graphs with `u64`
//!   weights and *edge provenance*: every adjacency slot knows which
//!   canonical undirected edge it came from, so higher layers (spanners,
//!   quotient graphs) can always map work back to original edges.
//! * [`generators`] — synthetic workloads: Erdős–Rényi, preferential
//!   attachment, grids/tori, paths, trees, geometric graphs, and weight
//!   assigners (uniform, log-uniform over a ratio `U`).
//! * [`frontier`] — the shared level-synchronous frontier engine: the
//!   two-phase claim/commit round loop (bucket → filter → resolve →
//!   commit → expand) that the clustering race, BFS, Dial, Δ-stepping,
//!   and the hopset round loops all drive, executing on a
//!   [`psh_exec::Executor`] with engine-measured work/depth.
//! * [`traversal`] — the parallel search engines the paper builds on:
//!   level-synchronous BFS \[UY91\], bucketed integer-weight SSSP
//!   ("weighted parallel BFS", Dial's algorithm as used by \[KS97\]),
//!   Δ-stepping, hop-limited Bellman–Ford (the hopset query engine), and
//!   exact Dijkstra as a verification oracle — the first three as
//!   [`frontier::Frontier`] implementations.
//! * [`delta`] — incremental edge updates: the [`GraphDelta`] journal of
//!   validated insert/delete ops and [`CsrGraph::apply_delta`], the sorted
//!   merge producing a fresh CSR byte-identical to a full rebuild — the
//!   substrate of the serving tier's zero-downtime oracle hot-swap.
//! * [`connectivity`] / [`union_find`] — connected components (parallel
//!   label propagation and union-find), used by Appendix B's hierarchical
//!   weight decomposition.
//! * [`quotient`] — contraction `G/H` keeping the lightest parallel edge,
//!   exactly the quotient operation of §2, with provenance to original
//!   edges.
//! * [`view`] — the [`GraphView`] trait every algorithm layer is generic
//!   over, plus [`CsrView`] / [`SplitArena`]: borrowed per-cluster
//!   subgraph views backed by reusable per-recursion-level scratch
//!   arenas, so Algorithm 4's recursion never materializes a `CsrGraph`
//!   per cluster per level.
//! * [`subgraph`] — the materializing reference split (per-cluster owned
//!   subgraphs), kept for callers that need owned children and as the
//!   equivalence baseline for the arena path.
//!
//! All traversals are instrumented with the [`psh_pram::Cost`] work/depth
//! model: work counts edge scans / relaxations, depth counts synchronous
//! rounds.

pub mod builder;
pub mod compress;
pub mod connectivity;
pub mod csr;
pub mod delta;
pub mod frontier;
pub mod generators;
pub mod io;
pub mod prefetch;
pub mod prefix;
pub mod quotient;
pub mod source;
pub mod subgraph;
pub mod traversal;
pub mod union_find;
pub mod view;

pub use compress::{CompressedCsr, CompressedView};
pub use csr::{CsrGraph, Edge, VertexId, Weight, INF};
pub use delta::{DeltaError, DeltaOp, GraphDelta};
pub use frontier::{
    drive, drive_on, BTreeBucketQueue, BucketQueue, ClaimQueue, Frontier, QueueKind,
};
pub use quotient::QuotientGraph;
pub use source::{CompressedMmapView, ExtraSlabsView, LoadMode, MmapView, SnapshotSource, Verify};
pub use subgraph::SubGraph;
pub use view::{CsrView, GraphView, SplitArena};
