//! Small parallel primitives: prefix sums and index packing.
//!
//! These are the PRAM toolbox pieces the paper's routines assume for free
//! (frontier compaction in BFS, offset computation when splitting clusters
//! into subgraphs). In the cost model each invocation is a constant number
//! of rounds; we charge them as such at call sites.

use rayon::prelude::*;

/// Exclusive prefix sum: `out[i] = sum(xs[..i])`, and the total is returned.
/// Runs in two passes over chunk-local sums, the classic work-efficient
/// parallel scan shape.
pub fn exclusive_prefix_sum(xs: &[usize]) -> (Vec<usize>, usize) {
    let len = xs.len();
    if len == 0 {
        return (Vec::new(), 0);
    }
    // Chunked two-phase scan. Chunk size balances scheduling overhead
    // against parallelism; at our scales a few thousand is fine.
    const CHUNK: usize = 4096;
    let chunk_sums: Vec<usize> = xs.par_chunks(CHUNK).map(|c| c.iter().sum()).collect();
    let mut chunk_offsets = Vec::with_capacity(chunk_sums.len());
    let mut acc = 0usize;
    for s in &chunk_sums {
        chunk_offsets.push(acc);
        acc += s;
    }
    let mut out = vec![0usize; len];
    out.par_chunks_mut(CHUNK)
        .zip(xs.par_chunks(CHUNK))
        .zip(chunk_offsets.par_iter())
        .for_each(|((out_chunk, in_chunk), &start)| {
            let mut running = start;
            for (o, &x) in out_chunk.iter_mut().zip(in_chunk) {
                *o = running;
                running += x;
            }
        });
    (out, acc)
}

/// Indices `i` where `keep[i]` is true, in increasing order.
pub fn pack_indices(keep: &[bool]) -> Vec<u32> {
    keep.par_iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i as u32))
        .collect()
}

/// Histogram of `keys` over the domain `0..buckets`.
pub fn histogram(keys: &[u32], buckets: usize) -> Vec<usize> {
    let mut h = vec![0usize; buckets];
    for &k in keys {
        h[k as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_sum_matches_sequential() {
        let xs = [3usize, 0, 1, 4, 1, 5];
        let (ps, total) = exclusive_prefix_sum(&xs);
        assert_eq!(ps, vec![0, 3, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn prefix_sum_empty() {
        let (ps, total) = exclusive_prefix_sum(&[]);
        assert!(ps.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn pack_indices_selects_true_positions() {
        let keep = [true, false, false, true, true];
        assert_eq!(pack_indices(&keep), vec![0, 3, 4]);
    }

    #[test]
    fn histogram_counts() {
        assert_eq!(histogram(&[0, 2, 2, 1, 2], 4), vec![1, 1, 3, 0]);
    }

    proptest! {
        #[test]
        fn prop_prefix_sum_agrees_with_scan(xs in proptest::collection::vec(0usize..100, 0..10_000)) {
            let (ps, total) = exclusive_prefix_sum(&xs);
            let mut acc = 0usize;
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!(ps[i], acc);
                acc += x;
            }
            prop_assert_eq!(total, acc);
        }
    }
}
