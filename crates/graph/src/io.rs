//! Graph I/O: the plain-text edge-list format and the versioned binary
//! snapshot framework.
//!
//! # Text edge lists
//!
//! A minimal, dependency-free edge-list format so experiments can be
//! exported/replayed and external graphs (e.g. DIMACS-converted road
//! networks) can be loaded:
//!
//! ```text
//! p <n> <m>
//! e <u> <v> <w>
//! …
//! ```
//!
//! Lines starting with `c` (comments) or blank lines are ignored.
//! Vertices are 0-based. The writer emits canonical (deduplicated) edges.
//! The reader rejects malformed input with descriptive errors — including
//! **self-loops** and **duplicate edges**, which [`CsrGraph::from_edges`]
//! would otherwise silently canonicalize away: a file that declares them
//! is corrupt or was produced by a different tool-chain, and silently
//! "fixing" it would hide the mismatch. These two rejections carry a typed
//! [`EdgeListError`] payload (downcast via [`io::Error::get_ref`]).
//!
//! # Binary snapshots
//!
//! The snapshot format lets preprocessing and serving run as separate
//! processes: build an artifact once, [`SnapshotWriter`] it to disk, and
//! any later process reconstructs it byte-identically with a
//! [`SnapshotReader`]. Every snapshot starts with an 8-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"PSHS"
//! 4       2     format version (little-endian u16) = 1
//! 6       2     artifact kind  (little-endian u16):
//!                 1 graph · 2 hopset · 3 spanner · 4 oracle
//! 8       …     kind-specific body
//! ```
//!
//! Body encoding: all integers little-endian; `f64` values are stored as
//! their IEEE-754 bit pattern in a little-endian `u64` (exact round-trip,
//! no text formatting loss). Edge records are 16 bytes: `u: u32`,
//! `v: u32`, `w: u64`, always canonical (`u < v`).
//!
//! **Versioning policy:** any change to the header or to any kind's body
//! layout bumps [`SNAPSHOT_VERSION`]. Readers accept exactly the version
//! they were compiled against and report [`SnapshotError::UnsupportedVersion`]
//! otherwise — snapshots are cheap to regenerate from their recorded seed,
//! so there is no silent cross-version reinterpretation. New artifact
//! kinds may be added without a version bump (old readers report
//! [`SnapshotError::WrongArtifact`] for kinds they don't expect).
//!
//! Malformed snapshots (truncated data, out-of-range vertex ids,
//! self-loops, duplicates, zero weights) are reported as descriptive
//! [`SnapshotError`] values, never panics — the round-trip and
//! malformed-input tests in this module and in `psh_core::snapshot`
//! enforce this.
//!
//! The graph kind is implemented here ([`write_graph_snapshot`] /
//! [`read_graph_snapshot`]); hopsets, spanners, and the full oracle live
//! in `psh_core::snapshot`, built on the same writer/reader primitives.

use crate::csr::{CsrGraph, Edge};
use crate::view::GraphView;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

// ---------------------------------------------------------------------------
// Text edge lists
// ---------------------------------------------------------------------------

/// Typed rejection reasons for edge-list input that [`CsrGraph`]'s
/// constructor would silently repair. Wrapped in an
/// [`io::ErrorKind::InvalidData`] error by [`read_graph`]; recover the
/// variant with `err.get_ref().and_then(|e| e.downcast_ref())`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeListError {
    /// An `e u u w` record: self-loops carry no distance information and
    /// are dropped by CSR canonicalization — a file declaring one is
    /// corrupt, so it is rejected instead of silently repaired.
    SelfLoop { line: usize, v: u32 },
    /// The unordered pair `{u, v}` appeared on an earlier `e` line; CSR
    /// canonicalization would keep only the lightest copy, silently
    /// changing `m` — rejected for the same reason.
    DuplicateEdge { line: usize, u: u32, v: u32 },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::SelfLoop { line, v } => {
                write!(f, "line {line}: self-loop at vertex {v}")
            }
            EdgeListError::DuplicateEdge { line, u, v } => {
                write!(f, "line {line}: duplicate edge ({u}, {v})")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

/// Serialize `g` to the edge-list format.
pub fn write_graph<W: Write>(g: &CsrGraph, mut out: W) -> io::Result<()> {
    writeln!(out, "p {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(out, "e {} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

/// Parse a graph from the edge-list format. Returns a descriptive error
/// for malformed input (missing header, bad counts, out-of-range ids,
/// self-loops, duplicate edges — see [`EdgeListError`] for the typed
/// variants).
pub fn read_graph<R: BufRead>(input: R) -> io::Result<CsrGraph> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let nn: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad p line", lineno + 1)))?;
                declared_m = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad p line", lineno + 1)))?;
                n = Some(nn);
                edges.reserve(declared_m.min(1 << 22));
            }
            Some("e") => {
                let n = n.ok_or_else(|| bad("e line before p line".into()))?;
                let mut next_num = |what: &str| -> io::Result<u64> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(format!("line {}: bad {what}", lineno + 1)))
                };
                let u = next_num("source")?;
                let v = next_num("target")?;
                let w = next_num("weight")?;
                if u as usize >= n || v as usize >= n {
                    return Err(bad(format!(
                        "line {}: endpoint out of range (n = {n})",
                        lineno + 1
                    )));
                }
                if w == 0 {
                    return Err(bad(format!("line {}: zero weight", lineno + 1)));
                }
                if u == v {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        EdgeListError::SelfLoop {
                            line: lineno + 1,
                            v: u as u32,
                        },
                    ));
                }
                let key = (u.min(v) as u32, u.max(v) as u32);
                if !seen.insert(key) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        EdgeListError::DuplicateEdge {
                            line: lineno + 1,
                            u: key.0,
                            v: key.1,
                        },
                    ));
                }
                edges.push(Edge::new(u as u32, v as u32, w));
            }
            Some(other) => {
                return Err(bad(format!(
                    "line {}: unknown record '{other}'",
                    lineno + 1
                )))
            }
            None => {}
        }
    }
    let n = n.ok_or_else(|| bad("missing p line".into()))?;
    if edges.len() != declared_m {
        return Err(bad(format!(
            "header declared {declared_m} edges, found {}",
            edges.len()
        )));
    }
    Ok(CsrGraph::from_edges(n, edges))
}

// ---------------------------------------------------------------------------
// Binary snapshot framework
// ---------------------------------------------------------------------------

/// First four bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PSHS";
/// The one format version this build reads and writes (see the module
/// docs for the versioning policy).
pub const SNAPSHOT_VERSION: u16 = 1;

/// Artifact kind tag: a bare [`CsrGraph`].
pub const KIND_GRAPH: u16 = 1;
/// Artifact kind tag: a hopset edge set (body defined in `psh_core`).
pub const KIND_HOPSET: u16 = 2;
/// Artifact kind tag: a spanner (body defined in `psh_core`).
pub const KIND_SPANNER: u16 = 3;
/// Artifact kind tag: a full preprocessed oracle (body in `psh_core`).
pub const KIND_ORACLE: u16 = 4;

fn kind_name(kind: u16) -> &'static str {
    match kind {
        KIND_GRAPH => "graph",
        KIND_HOPSET => "hopset",
        KIND_SPANNER => "spanner",
        KIND_ORACLE => "oracle",
        _ => "unknown",
    }
}

/// Why a snapshot could not be written or read. Every malformed input —
/// truncation, bad identification bytes, invalid graph data — maps to a
/// descriptive variant; readers never panic on untrusted bytes.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure (file missing, permissions, …).
    Io(io::Error),
    /// The first four bytes were not [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic { found: [u8; 4] },
    /// Written by a different format version; regenerate the snapshot.
    UnsupportedVersion { found: u16, supported: u16 },
    /// The snapshot holds a different artifact than the caller asked for.
    WrongArtifact { found: u16, expected: u16 },
    /// The stream ended in the middle of `what`.
    Truncated { what: &'static str },
    /// A structurally invalid value, with what/why detail — covers
    /// out-of-range vertex ids, self-loops, duplicate or unsorted edges,
    /// zero weights, and impossible counts.
    Corrupt { what: &'static str, detail: String },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a psh snapshot (magic {found:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} unsupported (this build reads version {supported}); \
                 regenerate the snapshot from its seed"
            ),
            SnapshotError::WrongArtifact { found, expected } => write!(
                f,
                "snapshot holds a {} artifact, expected a {}",
                kind_name(*found),
                kind_name(*expected)
            ),
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::Corrupt { what, detail } => {
                write!(f, "corrupt snapshot ({what}): {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes one artifact in the snapshot format: construct with the
/// artifact's kind tag (the header goes out immediately), then emit the
/// body with the primitive methods.
pub struct SnapshotWriter<W: Write> {
    out: W,
}

impl<W: Write> SnapshotWriter<W> {
    /// Start a snapshot of the given artifact kind (writes the header).
    pub fn new(mut out: W, kind: u16) -> Result<Self, SnapshotError> {
        out.write_all(&SNAPSHOT_MAGIC)?;
        out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        out.write_all(&kind.to_le_bytes())?;
        Ok(SnapshotWriter { out })
    }

    /// Emit one `u8`.
    pub fn u8(&mut self, v: u8) -> Result<(), SnapshotError> {
        Ok(self.out.write_all(&[v])?)
    }

    /// Emit one little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> Result<(), SnapshotError> {
        Ok(self.out.write_all(&v.to_le_bytes())?)
    }

    /// Emit one `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> Result<(), SnapshotError> {
        self.u64(v.to_bits())
    }

    /// Emit an edge list: count followed by 16-byte `(u, v, w)` records.
    pub fn edges(&mut self, edges: &[Edge]) -> Result<(), SnapshotError> {
        self.u64(edges.len() as u64)?;
        for e in edges {
            self.out.write_all(&e.u.to_le_bytes())?;
            self.out.write_all(&e.v.to_le_bytes())?;
            self.out.write_all(&e.w.to_le_bytes())?;
        }
        Ok(())
    }

    /// Emit a graph body: `n`, then the canonical edge list. Generic over
    /// [`GraphView`] so owned graphs and mapped v2 views serialize
    /// identically (the v2 → v1 re-save path depends on this).
    pub fn graph<G: GraphView>(&mut self, g: &G) -> Result<(), SnapshotError> {
        self.u64(g.n() as u64)?;
        self.edges(g.edges())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, SnapshotError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// How [`SnapshotReader::edges`] validates an incoming edge list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeRules {
    /// Graph edge lists: canonical (`u < v`), strictly ascending `(u, v)`
    /// (so no duplicates), endpoints `< n`, weights ≥ 1.
    CanonicalSorted,
    /// Hopset shortcut lists: canonical, endpoints `< n`, weights ≥ 1;
    /// order and multiplicity preserved as written (star and clique
    /// shortcuts may legitimately repeat a vertex pair).
    CanonicalAnyOrder,
}

/// Reads one artifact in the snapshot format: construct with the expected
/// kind (the header is checked immediately), then consume the body with
/// the primitive methods.
pub struct SnapshotReader<R: Read> {
    inp: R,
}

impl<R: Read> SnapshotReader<R> {
    /// Check the header and position the reader at the body. Reports
    /// [`SnapshotError::BadMagic`] / [`SnapshotError::UnsupportedVersion`] /
    /// [`SnapshotError::WrongArtifact`] before any body byte is touched.
    pub fn new(mut inp: R, expected_kind: u16) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 4];
        read_exact(&mut inp, &mut magic, "header magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let mut two = [0u8; 2];
        read_exact(&mut inp, &mut two, "header version")?;
        let version = u16::from_le_bytes(two);
        if version != SNAPSHOT_VERSION {
            // exactly one version is readable per build (module docs);
            // accepting a range would need per-version body readers
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        read_exact(&mut inp, &mut two, "header kind")?;
        let kind = u16::from_le_bytes(two);
        if kind != expected_kind {
            return Err(SnapshotError::WrongArtifact {
                found: kind,
                expected: expected_kind,
            });
        }
        Ok(SnapshotReader { inp })
    }

    /// Read one `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        let mut b = [0u8; 1];
        read_exact(&mut self.inp, &mut b, what)?;
        Ok(b[0])
    }

    /// Read one little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        let mut b = [0u8; 8];
        read_exact(&mut self.inp, &mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read one `f64` from its bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read and validate an edge list over vertices `0..n` under `rules`.
    pub fn edges(&mut self, n: usize, rules: EdgeRules) -> Result<Vec<Edge>, SnapshotError> {
        let m = self.u64("edge count")?;
        if m > u32::MAX as u64 {
            return Err(SnapshotError::Corrupt {
                what: "edge count",
                detail: format!("{m} edges exceeds the u32 edge-id space"),
            });
        }
        let m = m as usize;
        let mut edges = Vec::with_capacity(m.min(1 << 22));
        let mut prev: Option<(u32, u32)> = None;
        for i in 0..m {
            let mut rec = [0u8; 16];
            read_exact(&mut self.inp, &mut rec, "edge record")?;
            let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let w = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            if u as usize >= n || v as usize >= n {
                return Err(SnapshotError::Corrupt {
                    what: "edge endpoint",
                    detail: format!("edge {i} = ({u}, {v}) out of range for n = {n}"),
                });
            }
            if u == v {
                return Err(SnapshotError::Corrupt {
                    what: "edge",
                    detail: format!("edge {i} is a self-loop at vertex {u}"),
                });
            }
            if u > v {
                return Err(SnapshotError::Corrupt {
                    what: "edge",
                    detail: format!("edge {i} = ({u}, {v}) is not canonical (u < v)"),
                });
            }
            if w == 0 {
                return Err(SnapshotError::Corrupt {
                    what: "edge weight",
                    detail: format!("edge {i} = ({u}, {v}) has zero weight"),
                });
            }
            if rules == EdgeRules::CanonicalSorted {
                if let Some(p) = prev {
                    if p >= (u, v) {
                        return Err(SnapshotError::Corrupt {
                            what: "edge order",
                            detail: format!(
                                "edge {i} = ({u}, {v}) duplicates or precedes ({}, {})",
                                p.0, p.1
                            ),
                        });
                    }
                }
                prev = Some((u, v));
            }
            edges.push(Edge { u, v, w });
        }
        Ok(edges)
    }

    /// Read a graph body (`n` + canonical sorted edge list).
    pub fn graph(&mut self) -> Result<CsrGraph, SnapshotError> {
        let n = self.u64("vertex count")?;
        if n > u32::MAX as u64 + 1 {
            return Err(SnapshotError::Corrupt {
                what: "vertex count",
                detail: format!("{n} vertices exceeds the u32 vertex-id space"),
            });
        }
        let n = n as usize;
        let edges = self.edges(n, EdgeRules::CanonicalSorted)?;
        // the list is validated canonical + strictly sorted, so from_edges
        // reproduces it verbatim (no silent repair can occur)
        Ok(CsrGraph::from_edges(n, edges))
    }

    /// Assert the body is fully consumed; trailing bytes mean the snapshot
    /// was written by a different layout and must not be half-trusted.
    pub fn expect_eof(mut self) -> Result<(), SnapshotError> {
        let mut b = [0u8; 1];
        match self.inp.read(&mut b)? {
            0 => Ok(()),
            _ => Err(SnapshotError::Corrupt {
                what: "trailer",
                detail: "trailing bytes after the artifact body".into(),
            }),
        }
    }
}

fn read_exact<R: Read>(
    inp: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), SnapshotError> {
    inp.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { what }
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// Snapshot a bare graph (kind [`KIND_GRAPH`]).
pub fn write_graph_snapshot<W: Write>(g: &CsrGraph, out: W) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, KIND_GRAPH)?;
    w.graph(g)?;
    w.finish()?;
    Ok(())
}

/// Load a graph snapshot, validating the header and every edge.
pub fn read_graph_snapshot<R: Read>(inp: R) -> Result<CsrGraph, SnapshotError> {
    let mut r = SnapshotReader::new(inp, KIND_GRAPH)?;
    let g = r.graph()?;
    r.expect_eof()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_the_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(60, 150, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 40, &mut rng);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c a comment\n\np 3 2\nc another\ne 0 1 5\ne 1 2 7\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge(0).w, 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(
            read_graph("e 0 1 5\n".as_bytes()).is_err(),
            "edge before header"
        );
        assert!(read_graph("p 2\n".as_bytes()).is_err(), "short p line");
        assert!(read_graph("p 2 1\ne 0 5 1\n".as_bytes()).is_err(), "range");
        assert!(read_graph("p 2 1\ne 0 1 0\n".as_bytes()).is_err(), "zero w");
        assert!(read_graph("p 2 2\ne 0 1 1\n".as_bytes()).is_err(), "count");
        assert!(read_graph("x nonsense\n".as_bytes()).is_err(), "record");
        assert!(read_graph("".as_bytes()).is_err(), "empty");
    }

    #[test]
    fn rejects_self_loops_with_typed_error() {
        let err = read_graph("p 3 1\ne 1 1 5\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<EdgeListError>())
            .expect("typed payload");
        assert_eq!(*inner, EdgeListError::SelfLoop { line: 2, v: 1 });
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn rejects_duplicate_edges_with_typed_error() {
        // same pair in either orientation, any weight
        let err = read_graph("p 3 2\ne 0 1 5\ne 1 0 9\n".as_bytes()).unwrap_err();
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<EdgeListError>())
            .expect("typed payload");
        assert_eq!(
            *inner,
            EdgeListError::DuplicateEdge {
                line: 3,
                u: 0,
                v: 1
            }
        );
        assert!(err.to_string().contains("duplicate edge"));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = CsrGraph::from_edges(4, std::iter::empty());
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(buf.as_slice()).unwrap();
        assert_eq!(back.n(), 4);
        assert_eq!(back.m(), 0);
    }

    // --- binary snapshots -------------------------------------------------

    fn snapshot_of(g: &CsrGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_graph_snapshot(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn graph_snapshot_round_trips_byte_identically() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::connected_random(80, 200, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 1_000_000, &mut rng);
        let buf = snapshot_of(&g);
        let back = read_graph_snapshot(buf.as_slice()).unwrap();
        assert_eq!(g, back);
        // writing the reloaded graph reproduces the identical bytes
        assert_eq!(buf, snapshot_of(&back));
    }

    #[test]
    fn empty_and_edgeless_graphs_snapshot() {
        for g in [
            CsrGraph::from_edges(0, std::iter::empty()),
            CsrGraph::from_edges(7, std::iter::empty()),
        ] {
            let back = read_graph_snapshot(snapshot_of(&g).as_slice()).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_detected() {
        let g = generators::grid(4, 4);
        let buf = snapshot_of(&g);
        for cut in 0..buf.len() {
            let err = read_graph_snapshot(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_and_kind_are_detected() {
        let g = generators::path(3);
        let mut buf = snapshot_of(&g);
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            read_graph_snapshot(wrong_magic.as_slice()).unwrap_err(),
            SnapshotError::BadMagic { .. }
        ));
        let mut wrong_version = buf.clone();
        wrong_version[4] = 99;
        match read_graph_snapshot(wrong_version.as_slice()).unwrap_err() {
            SnapshotError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other}"),
        }
        buf[6] = KIND_SPANNER as u8; // kind byte: now claims to be a spanner
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()).unwrap_err(),
            SnapshotError::WrongArtifact { .. }
        ));
    }

    #[test]
    fn corrupt_edges_are_descriptive_errors_not_panics() {
        // Edge values a SnapshotWriter could never emit (it only sees
        // already-canonical Edge structs), so hand-roll the raw bytes.
        fn raw(n: u64, recs: &[(u32, u32, u64)]) -> Vec<u8> {
            let mut buf = Vec::new();
            buf.extend_from_slice(&SNAPSHOT_MAGIC);
            buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
            buf.extend_from_slice(&KIND_GRAPH.to_le_bytes());
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&(recs.len() as u64).to_le_bytes());
            for &(u, v, w) in recs {
                buf.extend_from_slice(&u.to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
                buf.extend_from_slice(&w.to_le_bytes());
            }
            buf
        }

        let cases: &[(&str, Vec<u8>)] = &[
            ("out-of-range id", raw(3, &[(0, 9, 1)])),
            ("self-loop", raw(3, &[(1, 1, 1)])),
            ("non-canonical", raw(3, &[(2, 0, 1)])),
            ("zero weight", raw(3, &[(0, 1, 0)])),
            ("duplicate", raw(3, &[(0, 1, 1), (0, 1, 2)])),
            ("unsorted", raw(3, &[(1, 2, 1), (0, 1, 1)])),
        ];
        for (name, bytes) in cases {
            match read_graph_snapshot(bytes.as_slice()) {
                Err(SnapshotError::Corrupt { .. }) => {}
                other => panic!("{name}: expected Corrupt, got {other:?}"),
            }
        }
        // trailing garbage after a valid body
        let mut ok = raw(3, &[(0, 1, 1)]);
        ok.push(0xAA);
        assert!(matches!(
            read_graph_snapshot(ok.as_slice()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn absurd_counts_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&KIND_GRAPH.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        assert!(read_graph_snapshot(buf.as_slice()).is_err());
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(&SNAPSHOT_MAGIC);
        buf2.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf2.extend_from_slice(&KIND_GRAPH.to_le_bytes());
        buf2.extend_from_slice(&10u64.to_le_bytes()); // n
        buf2.extend_from_slice(&u64::MAX.to_le_bytes()); // m
        assert!(read_graph_snapshot(buf2.as_slice()).is_err());
    }
}
