//! Plain-text graph I/O.
//!
//! A minimal, dependency-free edge-list format so experiments can be
//! exported/replayed and external graphs (e.g. DIMACS-converted road
//! networks) can be loaded:
//!
//! ```text
//! p <n> <m>
//! e <u> <v> <w>
//! …
//! ```
//!
//! Lines starting with `c` (comments) or blank lines are ignored.
//! Vertices are 0-based. The writer emits canonical (deduplicated) edges.

use crate::csr::{CsrGraph, Edge};
use std::io::{self, BufRead, Write};

/// Serialize `g` to the edge-list format.
pub fn write_graph<W: Write>(g: &CsrGraph, mut out: W) -> io::Result<()> {
    writeln!(out, "p {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(out, "e {} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

/// Parse a graph from the edge-list format. Returns a descriptive error
/// for malformed input (missing header, bad counts, out-of-range ids).
pub fn read_graph<R: BufRead>(input: R) -> io::Result<CsrGraph> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<Edge> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let nn: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad p line", lineno + 1)))?;
                declared_m = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad p line", lineno + 1)))?;
                n = Some(nn);
                edges.reserve(declared_m);
            }
            Some("e") => {
                let n = n.ok_or_else(|| bad("e line before p line".into()))?;
                let mut next_num = |what: &str| -> io::Result<u64> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(format!("line {}: bad {what}", lineno + 1)))
                };
                let u = next_num("source")?;
                let v = next_num("target")?;
                let w = next_num("weight")?;
                if u as usize >= n || v as usize >= n {
                    return Err(bad(format!(
                        "line {}: endpoint out of range (n = {n})",
                        lineno + 1
                    )));
                }
                if w == 0 {
                    return Err(bad(format!("line {}: zero weight", lineno + 1)));
                }
                edges.push(Edge::new(u as u32, v as u32, w));
            }
            Some(other) => {
                return Err(bad(format!(
                    "line {}: unknown record '{other}'",
                    lineno + 1
                )))
            }
            None => {}
        }
    }
    let n = n.ok_or_else(|| bad("missing p line".into()))?;
    if edges.len() != declared_m {
        return Err(bad(format!(
            "header declared {declared_m} edges, found {}",
            edges.len()
        )));
    }
    Ok(CsrGraph::from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_the_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(60, 150, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 40, &mut rng);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c a comment\n\np 3 2\nc another\ne 0 1 5\ne 1 2 7\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge(0).w, 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(
            read_graph("e 0 1 5\n".as_bytes()).is_err(),
            "edge before header"
        );
        assert!(read_graph("p 2\n".as_bytes()).is_err(), "short p line");
        assert!(read_graph("p 2 1\ne 0 5 1\n".as_bytes()).is_err(), "range");
        assert!(read_graph("p 2 1\ne 0 1 0\n".as_bytes()).is_err(), "zero w");
        assert!(read_graph("p 2 2\ne 0 1 1\n".as_bytes()).is_err(), "count");
        assert!(read_graph("x nonsense\n".as_bytes()).is_err(), "record");
        assert!(read_graph("".as_bytes()).is_err(), "empty");
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = CsrGraph::from_edges(4, std::iter::empty());
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(buf.as_slice()).unwrap();
        assert_eq!(back.n(), 4);
        assert_eq!(back.m(), 0);
    }
}
