//! Bucketed integer-weight SSSP — the paper's "weighted parallel BFS" —
//! as a [`Frontier`] driven by the shared engine ([`crate::frontier`]).
//!
//! Klein–Subramanian \[KS97\] (and §5 of the paper) run shortest-path
//! searches on integer-weight graphs by processing distance values in
//! increasing order: all vertices settled at the same distance form one
//! parallel round, so the *depth* of a search is the number of distinct
//! distance levels — which the rounding scheme of Lemma 5.2 compresses to
//! `O(ck/ζ)`. This is Dial's algorithm with lazy deletion: a claim
//! `(target, parent)` at key `d` proposes to settle `target` at distance
//! `d`; the first bucket in which a vertex has a live claim is its exact
//! distance, later claims are stale. Contested settlements go to the
//! minimum parent id (engine tie-breaking), so the forest is
//! deterministic under any [`psh_exec::ExecutionPolicy`].
//!
//! Supports per-source start offsets, which is how a super-source with
//! weighted spokes (the ESTC implementation of Appendix A, Lemma 2.1) is
//! expressed without materializing the extra vertex.

use crate::csr::{VertexId, Weight, INF};
use crate::frontier::{drive_on, BTreeBucketQueue, BucketQueue, ClaimQueue, Frontier, QueueKind};
use crate::prefetch::{lookahead, prefetch_pays, prefetch_read};
use crate::traversal::SsspResult;
use crate::view::GraphView;
use psh_exec::Executor;
use psh_pram::Cost;

/// A pending settlement: reach `target` through `parent` at the bucket's
/// key. Ordered target-first (engine contract), then by parent id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct DialClaim {
    target: VertexId,
    parent: VertexId,
}

struct Dial<'a, G> {
    g: &'a G,
    dist: Vec<Weight>,
    parent: Vec<VertexId>,
    settled: Vec<bool>,
    bound: Weight,
}

impl<G: GraphView> Dial<'_, G> {
    /// Queue every improving neighbor claim; both `expand` arms run this
    /// exact body so the hint path cannot change the claim sequence.
    #[inline]
    fn push_claims(
        &self,
        c: &DialClaim,
        round: u64,
        out: &mut Vec<(u64, DialClaim)>,
        neighbors: impl Iterator<Item = (VertexId, Weight)>,
    ) -> u64 {
        for (w, wt) in neighbors {
            let nd = round.saturating_add(wt);
            if nd < INF && nd <= self.bound && !self.settled[w as usize] {
                out.push((
                    nd,
                    DialClaim {
                        target: w,
                        parent: c.target,
                    },
                ));
            }
        }
        self.g.degree(c.target) as u64
    }
}

impl<G: GraphView> Frontier for Dial<'_, G> {
    type Claim = DialClaim;

    fn target(c: &DialClaim) -> VertexId {
        c.target
    }

    fn live(&self, c: &DialClaim) -> bool {
        !self.settled[c.target as usize]
    }

    fn commit(&mut self, c: &DialClaim, round: u64) {
        self.settled[c.target as usize] = true;
        self.dist[c.target as usize] = round;
        self.parent[c.target as usize] = c.parent;
    }

    fn expand(&self, c: &DialClaim, round: u64, out: &mut Vec<(u64, DialClaim)>) -> u64 {
        // the settled[w] probe is the random read in this loop — once
        // the array outgrows L2, hint it a few neighbors ahead while
        // the adjacency slice streams; below that the adapter is pure
        // overhead, so take the plain loop
        if prefetch_pays(self.settled.len()) {
            let settled = &self.settled;
            let neighbors = lookahead(self.g.neighbors(c.target), |&(w, _)| {
                prefetch_read(settled, w as usize);
            });
            self.push_claims(c, round, out, neighbors)
        } else {
            self.push_claims(c, round, out, self.g.neighbors(c.target))
        }
    }
}

/// Single-source exact SSSP on integer weights.
pub fn dial_sssp<G: GraphView>(g: &G, src: VertexId) -> (SsspResult, Cost) {
    dial_sssp_bounded_with(&Executor::current(), g, &[(src, 0)], INF)
}

/// [`dial_sssp`] on an explicit executor.
pub fn dial_sssp_with<G: GraphView>(exec: &Executor, g: &G, src: VertexId) -> (SsspResult, Cost) {
    dial_sssp_bounded_with(exec, g, &[(src, 0)], INF)
}

/// Multi-source SSSP where source `s` starts at distance `offset`.
pub fn dial_sssp_offsets<G: GraphView>(
    g: &G,
    sources: &[(VertexId, Weight)],
) -> (SsspResult, Cost) {
    dial_sssp_bounded_with(&Executor::current(), g, sources, INF)
}

/// Multi-source SSSP ignoring distances beyond `bound` (those vertices
/// keep `dist == INF`). Bounded searches are what Algorithm 4 runs inside
/// its bounded-diameter recursive pieces.
pub fn dial_sssp_bounded<G: GraphView>(
    g: &G,
    sources: &[(VertexId, Weight)],
    bound: Weight,
) -> (SsspResult, Cost) {
    dial_sssp_bounded_with(&Executor::current(), g, sources, bound)
}

/// [`dial_sssp_bounded`] on an explicit executor.
pub fn dial_sssp_bounded_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    sources: &[(VertexId, Weight)],
    bound: Weight,
) -> (SsspResult, Cost) {
    run_dial(exec, g, sources, bound, &mut BucketQueue::new())
}

/// [`dial_sssp_bounded_with`] through an explicitly chosen
/// [`ClaimQueue`] implementation. The queue only changes wall-clock
/// behavior — distances and parents are identical for every
/// [`QueueKind`]; the benchsuite `frontier` race is built on this.
pub fn dial_sssp_queued<G: GraphView>(
    exec: &Executor,
    g: &G,
    sources: &[(VertexId, Weight)],
    bound: Weight,
    kind: QueueKind,
) -> (SsspResult, Cost) {
    match kind {
        QueueKind::Calendar => run_dial(exec, g, sources, bound, &mut BucketQueue::new()),
        QueueKind::Btree => run_dial(exec, g, sources, bound, &mut BTreeBucketQueue::new()),
    }
}

fn run_dial<G: GraphView, Q: ClaimQueue<DialClaim>>(
    exec: &Executor,
    g: &G,
    sources: &[(VertexId, Weight)],
    bound: Weight,
    queue: &mut Q,
) -> (SsspResult, Cost) {
    let n = g.n();
    let mut dial = Dial {
        g,
        dist: vec![INF; n],
        parent: vec![u32::MAX; n],
        settled: vec![false; n],
        bound,
    };
    for &(s, off) in sources {
        if off < INF && off <= bound {
            queue.push(
                off,
                DialClaim {
                    target: s,
                    parent: s,
                },
            );
        }
    }
    let cost = Cost::flat(n as u64).then(drive_on(exec, queue, &mut dial));
    (
        SsspResult {
            dist: dial.dist,
            parent: dial.parent,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::csr::Edge;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use psh_exec::ExecutionPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_on_small_weighted_graph() {
        let g = CsrGraph::from_edges(
            5,
            [
                Edge::new(0, 1, 10),
                Edge::new(0, 2, 3),
                Edge::new(2, 1, 4),
                Edge::new(1, 3, 2),
                Edge::new(2, 3, 8),
                Edge::new(3, 4, 1),
            ],
        );
        let (r, _) = dial_sssp(&g, 0);
        assert_eq!(r.dist, dijkstra(&g, 0).dist);
    }

    #[test]
    fn offsets_shift_sources() {
        let g = generators::path(5); // 0-1-2-3-4 unit
                                     // source 0 at offset 3, source 4 at offset 0
        let (r, _) = dial_sssp_offsets(&g, &[(0, 3), (4, 0)]);
        assert_eq!(r.dist, vec![3, 3, 2, 1, 0]);
        // vertex 1: via 0 costs 4, via 4 costs 3
        assert_eq!(r.parent[1], 2);
    }

    #[test]
    fn bound_prunes_far_vertices() {
        let g = generators::path(10);
        let (r, _) = dial_sssp_bounded(&g, &[(0, 0)], 4);
        assert_eq!(r.dist[4], 4);
        assert_eq!(r.dist[5], INF);
    }

    #[test]
    fn depth_counts_distance_levels() {
        // path with weight-3 edges: levels are 0,3,6,9 → 4 nonempty rounds + init
        let g = CsrGraph::from_edges(4, (0..3).map(|i| Edge::new(i, i + 1, 3)));
        let (r, cost) = dial_sssp(&g, 0);
        assert_eq!(r.dist, vec![0, 3, 6, 9]);
        assert_eq!(cost.depth, 1 + 4);
    }

    #[test]
    fn duplicate_and_dominated_sources() {
        let g = generators::path(3);
        let (r, _) = dial_sssp_offsets(&g, &[(1, 5), (1, 2), (1, 9)]);
        assert_eq!(r.dist, vec![3, 2, 3]);
    }

    #[test]
    fn identical_results_across_executors() {
        let mut rng = StdRng::seed_from_u64(13);
        let base = generators::connected_random(300, 700, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 12, &mut rng);
        let (seq, seq_cost) = dial_sssp_with(&Executor::sequential(), &g, 9);
        for threads in [2, 4, 8] {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads });
            let (par, par_cost) = dial_sssp_with(&exec, &g, 9);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_cost, par_cost, "cost model is execution-independent");
        }
    }

    proptest! {
        #[test]
        fn prop_dial_equals_dijkstra(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(60, 100, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 30, &mut rng);
            let (r, _) = dial_sssp(&g, 5);
            prop_assert_eq!(r.dist, dijkstra(&g, 5).dist);
        }

        #[test]
        fn prop_multi_source_is_min_over_sources(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(40, 60, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 10, &mut rng);
            let sources = [(3u32, 2u64), (17, 0), (25, 7)];
            let (r, _) = dial_sssp_offsets(&g, &sources);
            for v in 0..40u32 {
                let expect = sources
                    .iter()
                    .map(|&(s, off)| dijkstra(&g, s).dist[v as usize].saturating_add(off))
                    .min()
                    .unwrap();
                prop_assert_eq!(r.dist[v as usize], expect);
            }
        }
    }
}
