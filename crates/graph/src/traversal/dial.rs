//! Bucketed integer-weight SSSP — the paper's "weighted parallel BFS".
//!
//! Klein–Subramanian [KS97] (and §5 of the paper) run shortest-path
//! searches on integer-weight graphs by processing distance values in
//! increasing order: all vertices settled at the same distance form one
//! parallel round, so the *depth* of a search is the number of distinct
//! distance levels — which the rounding scheme of Lemma 5.2 compresses to
//! `O(ck/ζ)`. This is Dial's algorithm with lazy buckets; we use an ordered
//! map so sparse distance ranges skip empty levels in O(log) time.
//!
//! Supports per-source start offsets, which is how a super-source with
//! weighted spokes (the ESTC implementation of Appendix A, Lemma 2.1) is
//! expressed without materializing the extra vertex.

use crate::csr::{CsrGraph, VertexId, Weight, INF};
use crate::traversal::SsspResult;
use psh_pram::Cost;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Single-source exact SSSP on integer weights.
pub fn dial_sssp(g: &CsrGraph, src: VertexId) -> (SsspResult, Cost) {
    dial_sssp_offsets(g, &[(src, 0)])
}

/// Multi-source SSSP where source `s` starts at distance `offset`.
pub fn dial_sssp_offsets(g: &CsrGraph, sources: &[(VertexId, Weight)]) -> (SsspResult, Cost) {
    dial_sssp_bounded(g, sources, INF)
}

/// Multi-source SSSP ignoring distances beyond `bound` (those vertices
/// keep `dist == INF`). Bounded searches are what Algorithm 4 runs inside
/// its bounded-diameter recursive pieces.
pub fn dial_sssp_bounded(
    g: &CsrGraph,
    sources: &[(VertexId, Weight)],
    bound: Weight,
) -> (SsspResult, Cost) {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut parent = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut buckets: BTreeMap<Weight, Vec<VertexId>> = BTreeMap::new();

    for &(s, off) in sources {
        if off <= bound && off < dist[s as usize] {
            dist[s as usize] = off;
            parent[s as usize] = s;
            buckets.entry(off).or_default().push(s);
        }
    }

    let mut cost = Cost::flat(n as u64);
    while let Some((&key, _)) = buckets.first_key_value() {
        let candidates = buckets.remove(&key).unwrap();
        // Lazy deletion: keep only entries that are still current and
        // not yet settled (a vertex can be inserted at several keys).
        let dist_ref = &dist;
        let current: Vec<VertexId> = candidates
            .into_iter()
            .filter(|&v| dist_ref[v as usize] == key && !settled[v as usize])
            .collect();
        if current.is_empty() {
            continue;
        }
        for &v in &current {
            settled[v as usize] = true;
        }
        let scanned: u64 = current.par_iter().map(|&v| g.degree(v) as u64).sum();
        // Two-phase deterministic relaxation: gather tentative improvements,
        // then apply the per-target minimum (ties to the smaller parent id).
        let mut relax: Vec<(VertexId, Weight, VertexId)> = current
            .par_iter()
            .flat_map_iter(|&u| {
                g.neighbors(u).filter_map(move |(v, w)| {
                    let nd = key.saturating_add(w);
                    (nd < dist_ref[v as usize] && nd <= bound).then_some((v, nd, u))
                })
            })
            .collect();
        relax.par_sort_unstable();
        let mut last = u32::MAX;
        for (v, nd, p) in relax {
            if v == last {
                continue; // a better (or equal, smaller-parent) entry won
            }
            last = v;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = p;
                buckets.entry(nd).or_default().push(v);
            }
        }
        cost = cost.then(Cost::flat(scanned + current.len() as u64));
    }

    (SsspResult { dist, parent }, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Edge;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_on_small_weighted_graph() {
        let g = CsrGraph::from_edges(
            5,
            [
                Edge::new(0, 1, 10),
                Edge::new(0, 2, 3),
                Edge::new(2, 1, 4),
                Edge::new(1, 3, 2),
                Edge::new(2, 3, 8),
                Edge::new(3, 4, 1),
            ],
        );
        let (r, _) = dial_sssp(&g, 0);
        assert_eq!(r.dist, dijkstra(&g, 0).dist);
    }

    #[test]
    fn offsets_shift_sources() {
        let g = generators::path(5); // 0-1-2-3-4 unit
                                     // source 0 at offset 3, source 4 at offset 0
        let (r, _) = dial_sssp_offsets(&g, &[(0, 3), (4, 0)]);
        assert_eq!(r.dist, vec![3, 3, 2, 1, 0]);
        // vertex 1: via 0 costs 4, via 4 costs 3
        assert_eq!(r.parent[1], 2);
    }

    #[test]
    fn bound_prunes_far_vertices() {
        let g = generators::path(10);
        let (r, _) = dial_sssp_bounded(&g, &[(0, 0)], 4);
        assert_eq!(r.dist[4], 4);
        assert_eq!(r.dist[5], INF);
    }

    #[test]
    fn depth_counts_distance_levels() {
        // path with weight-3 edges: levels are 0,3,6,9 → 4 nonempty rounds + init
        let g = CsrGraph::from_edges(4, (0..3).map(|i| Edge::new(i, i + 1, 3)));
        let (r, cost) = dial_sssp(&g, 0);
        assert_eq!(r.dist, vec![0, 3, 6, 9]);
        assert_eq!(cost.depth, 1 + 4);
    }

    #[test]
    fn duplicate_and_dominated_sources() {
        let g = generators::path(3);
        let (r, _) = dial_sssp_offsets(&g, &[(1, 5), (1, 2), (1, 9)]);
        assert_eq!(r.dist, vec![3, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_dial_equals_dijkstra(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(60, 100, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 30, &mut rng);
            let (r, _) = dial_sssp(&g, 5);
            prop_assert_eq!(r.dist, dijkstra(&g, 5).dist);
        }

        #[test]
        fn prop_multi_source_is_min_over_sources(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(40, 60, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 10, &mut rng);
            let sources = [(3u32, 2u64), (17, 0), (25, 7)];
            let (r, _) = dial_sssp_offsets(&g, &sources);
            for v in 0..40u32 {
                let expect = sources
                    .iter()
                    .map(|&(s, off)| dijkstra(&g, s).dist[v as usize].saturating_add(off))
                    .min()
                    .unwrap();
                prop_assert_eq!(r.dist[v as usize], expect);
            }
        }
    }
}
