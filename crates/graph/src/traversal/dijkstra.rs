//! Sequential Dijkstra — the exact-distance verification oracle.
//!
//! Every probabilistic guarantee in the reproduction (spanner stretch,
//! hopset distortion, oracle accuracy) is checked against these exact
//! distances in tests and experiments. Not instrumented with the cost
//! model: it is the *referee*, not a contestant.

use crate::csr::{VertexId, Weight, INF};
use crate::traversal::SsspResult;
use crate::view::GraphView;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact single-source shortest paths.
pub fn dijkstra<G: GraphView>(g: &G, src: VertexId) -> SsspResult {
    dijkstra_bounded(g, src, INF)
}

/// Dijkstra that abandons vertices further than `limit` (their distance
/// stays [`INF`]). Useful for the greedy spanner's pruned searches.
pub fn dijkstra_bounded<G: GraphView>(g: &G, src: VertexId, limit: Weight) -> SsspResult {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();
    dist[src as usize] = 0;
    parent[src as usize] = src;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] && nd <= limit {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { dist, parent }
}

/// Exact `s`–`t` distance with early exit once `t` is settled.
pub fn dijkstra_pair<G: GraphView>(g: &G, s: VertexId, t: VertexId) -> Weight {
    if s == t {
        return 0;
    }
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if u == t {
            return d;
        }
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    INF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::csr::Edge;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weighted_sample() -> CsrGraph {
        CsrGraph::from_edges(
            5,
            [
                Edge::new(0, 1, 10),
                Edge::new(0, 2, 3),
                Edge::new(2, 1, 4),
                Edge::new(1, 3, 2),
                Edge::new(2, 3, 8),
                Edge::new(3, 4, 1),
            ],
        )
    }

    #[test]
    fn exact_distances() {
        let r = dijkstra(&weighted_sample(), 0);
        assert_eq!(r.dist, vec![0, 7, 3, 9, 10]);
    }

    #[test]
    fn parent_tree_is_consistent() {
        let g = weighted_sample();
        let r = dijkstra(&g, 0);
        // following parents from 4: 4 -> 3 -> 1 -> 2 -> 0
        assert_eq!(r.path_to(4).unwrap(), vec![0, 2, 1, 3, 4]);
        // path distances telescope
        for v in 0..5u32 {
            if r.parent[v as usize] != u32::MAX && r.parent[v as usize] != v {
                let p = r.parent[v as usize];
                let w = g
                    .neighbors(p)
                    .find(|&(t, _)| t == v)
                    .map(|(_, w)| w)
                    .unwrap();
                assert_eq!(r.dist[p as usize] + w, r.dist[v as usize]);
            }
        }
    }

    #[test]
    fn bounded_dijkstra_prunes() {
        let r = dijkstra_bounded(&weighted_sample(), 0, 7);
        assert_eq!(r.dist, vec![0, 7, 3, INF, INF]);
    }

    #[test]
    fn pair_query_matches_full_run() {
        let g = weighted_sample();
        for s in 0..5u32 {
            let full = dijkstra(&g, s);
            for t in 0..5u32 {
                assert_eq!(dijkstra_pair(&g, s, t), full.dist[t as usize]);
            }
        }
    }

    #[test]
    fn unreachable_pair_is_inf() {
        let g = CsrGraph::from_unit_edges(3, [(0, 1)]);
        assert_eq!(dijkstra_pair(&g, 0, 2), INF);
    }

    proptest! {
        /// Dijkstra distances satisfy the exact triangle inequality on edges,
        /// and are realized by some edge (tightness).
        #[test]
        fn prop_dijkstra_fixpoint(seed in 0u64..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(50, 80, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
            let r = dijkstra(&g, 0);
            for e in g.edges() {
                let (du, dv) = (r.dist[e.u as usize], r.dist[e.v as usize]);
                prop_assert!(du <= dv.saturating_add(e.w));
                prop_assert!(dv <= du.saturating_add(e.w));
            }
            for v in 1..50u32 {
                // some in-edge is tight
                let dv = r.dist[v as usize];
                prop_assert!(g.neighbors(v).any(|(u, w)| r.dist[u as usize] + w == dv),
                    "no tight edge into {} at dist {}", v, dv);
            }
        }
    }
}
