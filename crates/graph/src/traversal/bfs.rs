//! Parallel level-synchronous BFS, after Ullman–Yannakakis \[UY91\], as a
//! [`Frontier`] driven by the shared engine ([`crate::frontier`]).
//!
//! Each claim `(target, parent)` proposes to discover `target` at the
//! claim's bucket key (= BFS level); the engine's deterministic
//! contention resolution keeps the minimum-id eligible parent, so the
//! output forest is byte-identical for any
//! [`psh_exec::ExecutionPolicy`].
//!
//! Cost accounting (engine-measured): work = initialization + claims
//! examined + edges scanned per round; depth = one round per BFS level
//! including the source round, matching the `O(diameter)` depth of the
//! paper's parallel BFS (the `log* n` CRCW factor is a model constant we
//! do not multiply in — see the `psh_pram` crate docs).

use crate::csr::{VertexId, INF};
use crate::frontier::{drive, BucketQueue, Frontier};
use crate::traversal::SsspResult;
use crate::view::GraphView;
use psh_exec::Executor;
use psh_pram::Cost;

/// A pending discovery: `parent` proposes to discover `target` at the
/// bucket's level. Ordered target-first (engine contract), then by
/// parent id — the minimum-id parent wins contested vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct BfsClaim {
    target: VertexId,
    parent: VertexId,
}

struct Bfs<'a, G> {
    g: &'a G,
    dist: Vec<u64>,
    parent: Vec<VertexId>,
    max_levels: u64,
}

impl<G: GraphView> Frontier for Bfs<'_, G> {
    type Claim = BfsClaim;

    fn target(c: &BfsClaim) -> VertexId {
        c.target
    }

    fn live(&self, c: &BfsClaim) -> bool {
        self.dist[c.target as usize] == INF
    }

    fn commit(&mut self, c: &BfsClaim, round: u64) {
        self.dist[c.target as usize] = round;
        self.parent[c.target as usize] = c.parent;
    }

    fn expand(&self, c: &BfsClaim, round: u64, out: &mut Vec<(u64, BfsClaim)>) -> u64 {
        if round >= self.max_levels {
            return 0; // bounded search: do not scan past the last level
        }
        for (w, _) in self.g.neighbors(c.target) {
            if self.dist[w as usize] == INF {
                out.push((
                    round + 1,
                    BfsClaim {
                        target: w,
                        parent: c.target,
                    },
                ));
            }
        }
        self.g.degree(c.target) as u64
    }
}

/// BFS from a single source.
pub fn parallel_bfs<G: GraphView>(g: &G, src: VertexId) -> (SsspResult, Cost) {
    parallel_bfs_bounded_with(&Executor::current(), g, &[src], usize::MAX)
}

/// [`parallel_bfs`] on an explicit executor.
pub fn parallel_bfs_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    src: VertexId,
) -> (SsspResult, Cost) {
    parallel_bfs_bounded_with(exec, g, &[src], usize::MAX)
}

/// BFS from a set of sources, all at distance 0. `max_levels` bounds how
/// far the search runs via [`parallel_bfs_bounded`]; this entry point runs
/// to exhaustion.
pub fn parallel_bfs_multi<G: GraphView>(g: &G, sources: &[VertexId]) -> (SsspResult, Cost) {
    parallel_bfs_bounded_with(&Executor::current(), g, sources, usize::MAX)
}

/// BFS from `sources`, stopping after `max_levels` levels (vertices further
/// away keep `dist == INF`). Used by Algorithm 4's clique-edge computation,
/// which only needs distances within a bounded-diameter piece.
pub fn parallel_bfs_bounded<G: GraphView>(
    g: &G,
    sources: &[VertexId],
    max_levels: usize,
) -> (SsspResult, Cost) {
    parallel_bfs_bounded_with(&Executor::current(), g, sources, max_levels)
}

/// [`parallel_bfs_bounded`] on an explicit executor.
pub fn parallel_bfs_bounded_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    sources: &[VertexId],
    max_levels: usize,
) -> (SsspResult, Cost) {
    let n = g.n();
    let mut bfs = Bfs {
        g,
        dist: vec![INF; n],
        parent: vec![u32::MAX; n],
        max_levels: max_levels.min(u64::MAX as usize) as u64,
    };
    let mut queue = BucketQueue::new();
    for &s in sources {
        queue.push(
            0,
            BfsClaim {
                target: s,
                parent: s,
            },
        );
    }
    let cost = Cost::flat(n as u64).then(drive(exec, &mut queue, &mut bfs));
    (
        SsspResult {
            dist: bfs.dist,
            parent: bfs.parent,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use psh_exec::ExecutionPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_on_a_path() {
        let g = generators::path(6);
        let (r, cost) = parallel_bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.path_to(5).unwrap(), vec![0, 1, 2, 3, 4, 5]);
        // depth = init round + 6 discovery rounds (levels 0..=5)
        assert_eq!(cost.depth, 7);
    }

    #[test]
    fn bfs_respects_level_bound() {
        let g = generators::path(10);
        let (r, _) = parallel_bfs_bounded(&g, &[0], 3);
        assert_eq!(r.dist[3], 3);
        assert_eq!(r.dist[4], INF);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let (r, _) = parallel_bfs_multi(&g, &[0, 6]);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let (r, _) = parallel_bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, INF, INF]);
        assert_eq!(r.parent[2], u32::MAX);
    }

    #[test]
    fn parent_is_min_id_among_equally_good() {
        // diamond: 0-1, 0-2, 1-3, 2-3 — both 1 and 2 can parent 3
        let g = CsrGraph::from_unit_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (r, _) = parallel_bfs(&g, 0);
        assert_eq!(r.parent[3], 1, "deterministic min-id parent expected");
    }

    #[test]
    fn bfs_matches_dijkstra_on_unit_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_random(300, 500, &mut rng);
        let (b, _) = parallel_bfs(&g, 7);
        let d = dijkstra(&g, 7);
        assert_eq!(b.dist, d.dist);
    }

    #[test]
    fn duplicate_sources_are_deduped() {
        let g = generators::path(4);
        let (r, _) = parallel_bfs_multi(&g, &[2, 2, 2]);
        assert_eq!(r.dist, vec![2, 1, 0, 1]);
    }

    #[test]
    fn identical_results_across_executors() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::connected_random(400, 900, &mut rng);
        let (seq, seq_cost) = parallel_bfs_with(&Executor::sequential(), &g, 5);
        for threads in [2, 4, 8] {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads });
            let (par, par_cost) = parallel_bfs_with(&exec, &g, 5);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_cost, par_cost, "cost model is execution-independent");
        }
    }

    proptest! {
        #[test]
        fn prop_bfs_triangle_inequality_on_edges(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(60, 120, &mut rng);
            let (r, _) = parallel_bfs(&g, 0);
            for e in g.edges() {
                let (du, dv) = (r.dist[e.u as usize], r.dist[e.v as usize]);
                if du != INF && dv != INF {
                    prop_assert!(du.abs_diff(dv) <= 1, "BFS levels differ by more than an edge");
                } else {
                    // both endpoints of an edge are reachable or neither is
                    prop_assert_eq!(du, dv);
                }
            }
        }

        #[test]
        fn prop_bfs_deterministic(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(80, 200, &mut rng);
            let (a, _) = parallel_bfs(&g, 3);
            let (b, _) = parallel_bfs(&g, 3);
            prop_assert_eq!(a, b);
        }
    }
}
