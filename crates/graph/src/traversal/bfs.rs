//! Parallel level-synchronous BFS, after Ullman–Yannakakis [UY91].
//!
//! Each round expands the whole frontier in parallel; contended claims on a
//! newly discovered vertex are resolved by an atomic `fetch_min` on the
//! claiming parent, so the output forest is deterministic (the minimum-id
//! eligible parent always wins) regardless of scheduling.
//!
//! Cost accounting: work = initialization + edges scanned per round
//! (including re-scans of already-visited targets — that is what a PRAM
//! implementation pays too); depth = one round per BFS level, matching the
//! `O(diameter)` depth of the paper's parallel BFS (the `log* n` CRCW
//! factor is a model constant we do not multiply in — see the
//! `psh_pram` crate docs).

use crate::csr::{CsrGraph, VertexId, INF};
use crate::traversal::SsspResult;
use psh_pram::Cost;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// BFS from a single source.
pub fn parallel_bfs(g: &CsrGraph, src: VertexId) -> (SsspResult, Cost) {
    parallel_bfs_multi(g, &[src])
}

/// BFS from a set of sources, all at distance 0. `max_levels` bounds how
/// far the search runs via [`parallel_bfs_bounded`]; this entry point runs
/// to exhaustion.
pub fn parallel_bfs_multi(g: &CsrGraph, sources: &[VertexId]) -> (SsspResult, Cost) {
    parallel_bfs_bounded(g, sources, usize::MAX)
}

/// BFS from `sources`, stopping after `max_levels` levels (vertices further
/// away keep `dist == INF`). Used by Algorithm 4's clique-edge computation,
/// which only needs distances within a bounded-diameter piece.
pub fn parallel_bfs_bounded(
    g: &CsrGraph,
    sources: &[VertexId],
    max_levels: usize,
) -> (SsspResult, Cost) {
    let n = g.n();
    let claim: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut dist = vec![INF; n];

    let mut frontier: Vec<VertexId> = sources.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    for &s in &frontier {
        dist[s as usize] = 0;
        claim[s as usize].store(s, Ordering::Relaxed);
    }

    let mut cost = Cost::flat(n as u64); // initialization round
    let mut level: u64 = 0;
    while !frontier.is_empty() && (level as usize) < max_levels {
        level += 1;
        let scanned: u64 = frontier.par_iter().map(|&u| g.degree(u) as u64).sum();
        // Expansion: claim unvisited neighbors with atomic min on parent.
        let (dist_ref, claim_ref) = (&dist, &claim);
        let mut next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.neighbors(u).filter_map(move |(w, _)| {
                    if dist_ref[w as usize] == INF {
                        claim_ref[w as usize].fetch_min(u, Ordering::Relaxed);
                        Some(w)
                    } else {
                        None
                    }
                })
            })
            .collect();
        next.par_sort_unstable();
        next.dedup();
        for &w in &next {
            dist[w as usize] = level;
        }
        cost = cost.then(Cost::flat(scanned + next.len() as u64));
        frontier = next;
    }

    let parent: Vec<VertexId> = claim.into_iter().map(AtomicU32::into_inner).collect();
    (SsspResult { dist, parent }, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_on_a_path() {
        let g = generators::path(6);
        let (r, cost) = parallel_bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.path_to(5).unwrap(), vec![0, 1, 2, 3, 4, 5]);
        // depth = init round + 5 discovery levels + 1 final empty expansion
        assert_eq!(cost.depth, 7);
    }

    #[test]
    fn bfs_respects_level_bound() {
        let g = generators::path(10);
        let (r, _) = parallel_bfs_bounded(&g, &[0], 3);
        assert_eq!(r.dist[3], 3);
        assert_eq!(r.dist[4], INF);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let (r, _) = parallel_bfs_multi(&g, &[0, 6]);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let (r, _) = parallel_bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, INF, INF]);
        assert_eq!(r.parent[2], u32::MAX);
    }

    #[test]
    fn parent_is_min_id_among_equally_good() {
        // diamond: 0-1, 0-2, 1-3, 2-3 — both 1 and 2 can parent 3
        let g = CsrGraph::from_unit_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (r, _) = parallel_bfs(&g, 0);
        assert_eq!(r.parent[3], 1, "deterministic min-id parent expected");
    }

    #[test]
    fn bfs_matches_dijkstra_on_unit_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_random(300, 500, &mut rng);
        let (b, _) = parallel_bfs(&g, 7);
        let d = dijkstra(&g, 7);
        assert_eq!(b.dist, d.dist);
    }

    #[test]
    fn duplicate_sources_are_deduped() {
        let g = generators::path(4);
        let (r, _) = parallel_bfs_multi(&g, &[2, 2, 2]);
        assert_eq!(r.dist, vec![2, 1, 0, 1]);
    }

    proptest! {
        #[test]
        fn prop_bfs_triangle_inequality_on_edges(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(60, 120, &mut rng);
            let (r, _) = parallel_bfs(&g, 0);
            for e in g.edges() {
                let (du, dv) = (r.dist[e.u as usize], r.dist[e.v as usize]);
                if du != INF && dv != INF {
                    prop_assert!(du.abs_diff(dv) <= 1, "BFS levels differ by more than an edge");
                } else {
                    // both endpoints of an edge are reachable or neither is
                    prop_assert_eq!(du, dv);
                }
            }
        }

        #[test]
        fn prop_bfs_deterministic(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(80, 200, &mut rng);
            let (a, _) = parallel_bfs(&g, 3);
            let (b, _) = parallel_bfs(&g, 3);
            prop_assert_eq!(a, b);
        }
    }
}
