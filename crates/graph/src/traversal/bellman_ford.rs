//! Hop-limited Bellman–Ford over a graph plus an optional hopset.
//!
//! This computes `dist^h_{E ∪ E'}(s, ·)` — the *h-hop distance* of
//! Definition 2.4 — and is the query engine Klein–Subramanian \[KS97\] attach
//! to a hopset: once a `(ε, h, m')`-hopset exists, a `(1+ε)`-approximate
//! shortest path needs only `h` rounds of parallel edge relaxation, giving
//! the `O(m/ε)` work, `O(h)`-ish depth query of Theorem 1.2.
//!
//! Frontier-based: only vertices whose distance improved in round `r-1`
//! relax their edges in round `r`, so work on easy instances is far below
//! the worst-case `h·m`. Relaxations are gathered in parallel and applied
//! as a deterministic per-target minimum.

use crate::csr::{Edge, VertexId, Weight, INF};
use crate::prefetch::{lookahead, prefetch_pays, prefetch_read};
use crate::view::GraphView;
use psh_pram::Cost;
use rayon::prelude::*;

/// A set of auxiliary (hopset) edges in CSR form over the same vertex ids
/// as the base graph. Undirected: both directions are stored. Offsets are
/// `u32` (2m' adjacency slots fit the u32 edge-id space by the same bound
/// the canonical edge list obeys), so the borrowed form ([`ExtraView`])
/// can alias a mapped snapshot slab directly.
#[derive(Clone, Debug, Default)]
pub struct ExtraEdges {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    m: usize,
}

impl ExtraEdges {
    /// Build from an undirected edge list over vertices `0..n`.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        assert!(
            edges.len() as u64 * 2 <= u32::MAX as u64,
            "extra-edge slots exceed the u32 offset space"
        );
        let mut offsets = vec![0u32; n + 1];
        for e in edges {
            offsets[e.u as usize + 1] += 1;
            offsets[e.v as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let acc = offsets[n] as usize;
        let mut cursor = offsets.clone();
        let mut targets = vec![0; acc];
        let mut weights = vec![0; acc];
        for e in edges {
            targets[cursor[e.u as usize] as usize] = e.v;
            weights[cursor[e.u as usize] as usize] = e.w;
            cursor[e.u as usize] += 1;
            targets[cursor[e.v as usize] as usize] = e.u;
            weights[cursor[e.v as usize] as usize] = e.w;
            cursor[e.v as usize] += 1;
        }
        ExtraEdges {
            offsets,
            targets,
            weights,
            m: edges.len(),
        }
    }

    /// Number of undirected extra edges.
    pub fn len(&self) -> usize {
        self.m
    }

    /// True if there are no extra edges.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Iterate `(neighbor, weight)` of `v` among the extra edges.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.view().neighbors(v)
    }

    /// Borrow as the slice-backed form the query cores run on.
    #[inline]
    pub fn view(&self) -> ExtraView<'_> {
        ExtraView {
            offsets: &self.offsets,
            targets: &self.targets,
            weights: &self.weights,
        }
    }
}

/// Borrowed extra-edge adjacency: three slices in the layout
/// [`ExtraEdges::from_edges`] produces — owned storage and mapped v2
/// snapshot slabs both hand out this form, so the hop-limited cores
/// below run identically on either. `Copy`, like [`crate::CsrView`].
#[derive(Clone, Copy, Debug)]
pub struct ExtraView<'a> {
    offsets: &'a [u32],
    targets: &'a [VertexId],
    weights: &'a [Weight],
}

impl<'a> ExtraView<'a> {
    /// Assemble a view from raw parts (mapped snapshot slabs). `offsets`
    /// needs one entry per vertex plus a trailing total; the adjacency
    /// slices hold both directions of every extra edge.
    pub fn from_raw(offsets: &'a [u32], targets: &'a [VertexId], weights: &'a [Weight]) -> Self {
        assert!(!offsets.is_empty(), "offsets needs a trailing total");
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        ExtraView {
            offsets,
            targets,
            weights,
        }
    }

    /// Iterate `(neighbor, weight)` of `v` among the extra edges.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + 'a {
        let range = self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize;
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }
}

/// Result of a hop-limited query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopQuery {
    /// `dist[v] = dist^h_{E ∪ E'}(sources, v)`.
    pub dist: Vec<Weight>,
    /// Rounds actually executed (≤ the requested `h`; fewer if the
    /// relaxation reached a fixpoint early).
    pub rounds_run: usize,
    /// For each vertex, the round in which its final distance was set
    /// (0 for sources, `u32::MAX` if unreachable). `hops_settled[t]` is the
    /// number of hops a shortest ≤h-hop path to `t` uses.
    pub hops_settled: Vec<u32>,
}

/// Compute h-hop-limited distances from `sources` over `g` plus `extra`.
pub fn hop_limited_sssp<G: GraphView>(
    g: &G,
    extra: Option<&ExtraEdges>,
    sources: &[VertexId],
    h: usize,
) -> (HopQuery, Cost) {
    hop_limited_sssp_on(g, extra.map(ExtraEdges::view), sources, h)
}

/// [`hop_limited_sssp`] on borrowed extra-edge slices — the core both
/// the owned and the mapped (v2 snapshot) oracle reprs run, so their
/// relaxation sequences — and therefore answers and costs — are
/// identical by construction.
pub fn hop_limited_sssp_on<G: GraphView>(
    g: &G,
    extra: Option<ExtraView<'_>>,
    sources: &[VertexId],
    h: usize,
) -> (HopQuery, Cost) {
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut frontier: Vec<VertexId> = sources.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    for &s in &frontier {
        dist[s as usize] = 0;
        hops[s as usize] = 0;
    }
    let mut cost = Cost::flat(n as u64);
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds < h {
        rounds += 1;
        let scanned: u64 = frontier
            .par_iter()
            .map(|&v| (g.degree(v) + extra.map_or(0, |e| e.degree(v))) as u64)
            .sum();
        let dist_ref = &dist;
        // the dist[v] probe is the random read in this loop; once dist
        // outgrows L2 ([`prefetch_pays`]), hint it a few candidates
        // ahead of the filter. The two arms spell out the same loop body
        // rather than sharing it through a closure: routing the iterator
        // construction through a shared closure costs ~30% qps on
        // cache-resident graphs (measured via query_throughput, n=800),
        // so each arm must stay independently inlinable.
        let mut relax: Vec<(VertexId, Weight)> = if prefetch_pays(n) {
            frontier
                .par_iter()
                .flat_map_iter(|&u| {
                    let du = dist_ref[u as usize];
                    let base = g.neighbors(u).map(move |(v, w)| (v, du.saturating_add(w)));
                    let ext = extra
                        .into_iter()
                        .flat_map(move |e| e.neighbors(u))
                        .map(move |(v, w)| (v, du.saturating_add(w)));
                    lookahead(base.chain(ext), |&(v, _)| {
                        prefetch_read(dist_ref, v as usize);
                    })
                    .filter(|&(v, nd)| nd < dist_ref[v as usize])
                })
                .collect()
        } else {
            frontier
                .par_iter()
                .flat_map_iter(|&u| {
                    let du = dist_ref[u as usize];
                    let base = g.neighbors(u).map(move |(v, w)| (v, du.saturating_add(w)));
                    let ext = extra
                        .into_iter()
                        .flat_map(move |e| e.neighbors(u))
                        .map(move |(v, w)| (v, du.saturating_add(w)));
                    base.chain(ext).filter(|&(v, nd)| nd < dist_ref[v as usize])
                })
                .collect()
        };
        relax.par_sort_unstable();
        let mut next = Vec::new();
        let mut last = u32::MAX;
        for (v, nd) in relax {
            if v == last {
                continue;
            }
            last = v;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                hops[v as usize] = rounds as u32;
                next.push(v);
            }
        }
        cost = cost.then(Cost::flat(scanned + next.len() as u64));
        frontier = next;
    }
    (
        HopQuery {
            dist,
            rounds_run: rounds,
            hops_settled: hops,
        },
        cost,
    )
}

/// h-hop-limited `s`–`t` distance. Returns the distance (or [`INF`]) and
/// the number of hops after which `t`'s distance last improved.
pub fn hop_limited_pair<G: GraphView>(
    g: &G,
    extra: Option<&ExtraEdges>,
    s: VertexId,
    t: VertexId,
    h: usize,
) -> (Weight, u32, Cost) {
    hop_limited_pair_on(g, extra.map(ExtraEdges::view), s, t, h)
}

/// [`hop_limited_pair`] on borrowed extra-edge slices (see
/// [`hop_limited_sssp_on`]).
pub fn hop_limited_pair_on<G: GraphView>(
    g: &G,
    extra: Option<ExtraView<'_>>,
    s: VertexId,
    t: VertexId,
    h: usize,
) -> (Weight, u32, Cost) {
    let (q, cost) = hop_limited_sssp_on(g, extra, &[s], h);
    (q.dist[t as usize], q.hops_settled[t as usize], cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unlimited_hops_match_dijkstra() {
        let mut rng = StdRng::seed_from_u64(20);
        let base = generators::connected_random(80, 120, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 9, &mut rng);
        let (q, _) = hop_limited_sssp(&g, None, &[0], g.n());
        assert_eq!(q.dist, dijkstra(&g, 0).dist);
    }

    #[test]
    fn hop_limit_binds_on_a_path() {
        let g = generators::path(10);
        let (q, _) = hop_limited_sssp(&g, None, &[0], 4);
        assert_eq!(q.dist[4], 4);
        assert_eq!(q.dist[5], INF);
        assert_eq!(q.rounds_run, 4);
    }

    #[test]
    fn hopset_edge_cuts_hops() {
        // path 0..=9 plus a shortcut 0-9 of the exact path weight
        let g = generators::path(10);
        let extra = ExtraEdges::from_edges(10, &[Edge::new(0, 9, 9)]);
        let (d_no, hops_no, _) = hop_limited_pair(&g, None, 0, 9, 10);
        assert_eq!((d_no, hops_no), (9, 9));
        let (d_yes, hops_yes, _) = hop_limited_pair(&g, Some(&extra), 0, 9, 10);
        assert_eq!(d_yes, 9, "shortcut must not change the distance");
        assert_eq!(hops_yes, 1, "shortcut should settle t in one hop");
    }

    #[test]
    fn early_fixpoint_stops_rounds() {
        let g = generators::star(50);
        let (q, _) = hop_limited_sssp(&g, None, &[0], 1000);
        assert_eq!(q.rounds_run, 2, "star reaches a fixpoint in two rounds");
        assert!(q.dist.iter().all(|&d| d <= 2));
    }

    #[test]
    fn hops_settled_is_monotone_in_distance_layers() {
        let g = generators::path(6);
        let (q, _) = hop_limited_sssp(&g, None, &[0], 10);
        assert_eq!(q.hops_settled, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn extra_edges_accessors() {
        let e = ExtraEdges::from_edges(4, &[Edge::new(0, 2, 5), Edge::new(1, 3, 7)]);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.neighbors(0).collect::<Vec<_>>(), vec![(2, 5)]);
        assert_eq!(e.neighbors(2).collect::<Vec<_>>(), vec![(0, 5)]);
        assert!(ExtraEdges::from_edges(3, &[]).is_empty());
    }

    proptest! {
        /// h-hop distances are monotone nonincreasing in h and never
        /// undershoot the true distance.
        #[test]
        fn prop_hop_distance_sandwich(seed in 0u64..150, h in 1usize..12) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(40, 70, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 5, &mut rng);
            let exact = dijkstra(&g, 0);
            let (qh, _) = hop_limited_sssp(&g, None, &[0], h);
            let (qh1, _) = hop_limited_sssp(&g, None, &[0], h + 1);
            for v in 0..g.n() {
                prop_assert!(qh.dist[v] >= qh1.dist[v], "more hops can only help");
                prop_assert!(qh.dist[v] >= exact.dist[v], "h-hop dist lower-bounded by true dist");
            }
        }

        /// With h >= n-1 the hop limit never binds.
        #[test]
        fn prop_full_hops_exact(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(30, 60, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 8, &mut rng);
            let (q, _) = hop_limited_sssp(&g, None, &[7], g.n());
            prop_assert_eq!(q.dist, dijkstra(&g, 7).dist);
        }
    }
}
