//! Search engines.
//!
//! * [`bfs`] — parallel level-synchronous BFS \[UY91\]: the engine behind the
//!   unweighted ESTC and the clique-edge distance computations of
//!   Algorithm 4. Depth = number of BFS levels.
//! * [`dial`] — bucketed integer-weight SSSP ("weighted parallel BFS" in
//!   the paper, after \[KS97\]): processes distance values in increasing
//!   order, one parallel round per distinct settled distance. Depth =
//!   number of distinct distance levels, which the rounding scheme of
//!   Lemma 5.2 keeps small.
//! * [`mod@dijkstra`] — sequential exact SSSP; the verification oracle.
//! * [`bellman_ford`] — hop-limited relaxation over the graph plus an
//!   optional hopset: computes `dist^h_{E ∪ E'}`, the quantity hopsets are
//!   about (Definition 2.4), and serves as the query engine of Theorem 1.2.

pub mod bellman_ford;
pub mod bfs;
pub mod delta_stepping;
pub mod dial;
pub mod dijkstra;

pub use bellman_ford::{hop_limited_pair, hop_limited_sssp, ExtraEdges, HopQuery};
pub use bfs::{parallel_bfs, parallel_bfs_multi};
pub use delta_stepping::{delta_stepping, delta_stepping_queued};
pub use dial::{dial_sssp, dial_sssp_bounded, dial_sssp_offsets, dial_sssp_queued};
pub use dijkstra::{dijkstra, dijkstra_bounded, dijkstra_pair};

use crate::csr::{VertexId, Weight, INF};

/// Distances and a shortest-path forest from one or more sources.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspResult {
    /// `dist[v]`: distance from the nearest source ([`INF`] if unreachable).
    pub dist: Vec<Weight>,
    /// `parent[v]`: predecessor on a shortest path (`v` itself for sources,
    /// `u32::MAX` for unreachable vertices).
    pub parent: Vec<VertexId>,
}

impl SsspResult {
    /// True if `v` was reached.
    #[inline]
    pub fn reachable(&self, v: VertexId) -> bool {
        self.dist[v as usize] != INF
    }

    /// The path from the source to `v` (inclusive), or `None` if
    /// unreachable. Linear in the path length.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
            path.push(cur);
            if path.len() > self.dist.len() {
                panic!("parent pointers contain a cycle");
            }
        }
        path.reverse();
        Some(path)
    }

    /// Eccentricity from the source set: the maximum finite distance.
    pub fn max_finite_dist(&self) -> Weight {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != INF)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_to_reconstructs_tree_paths() {
        // hand-built result: 0 -> 1 -> 2
        let r = SsspResult {
            dist: vec![0, 1, 2, INF],
            parent: vec![0, 0, 1, u32::MAX],
        };
        assert_eq!(r.path_to(2), Some(vec![0, 1, 2]));
        assert_eq!(r.path_to(0), Some(vec![0]));
        assert_eq!(r.path_to(3), None);
        assert!(r.reachable(1));
        assert!(!r.reachable(3));
        assert_eq!(r.max_finite_dist(), 2);
    }
}
