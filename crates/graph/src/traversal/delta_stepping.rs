//! Δ-stepping — the practical parallel SSSP engine (Meyer–Sanders) — as a
//! [`Frontier`] driven by the shared engine ([`crate::frontier`]).
//!
//! The paper's searches are expressed as bucketed "weighted parallel BFS"
//! ([`crate::traversal::dial`], one bucket per distance value); Δ-stepping
//! generalizes the bucket key to `dist / Δ`, so a claim carries its
//! tentative distance explicitly: `(target, dist, parent)`. Relaxations
//! that stay inside the current width-Δ bucket re-open it (the engine
//! processes the re-filled key as an extra sub-round — the classic
//! light-edge iteration); relaxations that leave it land in later
//! buckets. A vertex can be committed several times as its tentative
//! distance improves; the `live` check (`claim.dist < dist[target]`)
//! drops everything stale. With `Δ = 1` the key degenerates to Dial; with
//! `Δ = ∞` to Bellman–Ford. It is the engine a production deployment
//! would use for the hopset clique searches when edge weights are spread
//! out, so the library ships it with the same instrumentation and
//! determinism guarantees as the other engines.
//!
//! Depth accounting (engine-measured): one round per (bucket, sub-round)
//! in which some tentative distance improved.

use crate::csr::{VertexId, Weight, INF};
use crate::frontier::{drive_on, BTreeBucketQueue, BucketQueue, ClaimQueue, Frontier, QueueKind};
use crate::prefetch::{lookahead, prefetch_pays, prefetch_read};
use crate::traversal::SsspResult;
use crate::view::GraphView;
use psh_exec::Executor;
use psh_pram::Cost;

/// A pending relaxation: reach `target` at tentative distance `dist`
/// through `parent`. Ordered target-first (engine contract), then by
/// (dist, parent): the smallest tentative distance wins, ties to the
/// minimum parent id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct DeltaClaim {
    target: VertexId,
    dist: Weight,
    parent: VertexId,
}

struct DeltaStepping<'a, G> {
    g: &'a G,
    dist: Vec<Weight>,
    parent: Vec<VertexId>,
    delta: Weight,
}

impl<G: GraphView> DeltaStepping<'_, G> {
    /// Queue every improving neighbor claim; both `expand` arms run this
    /// exact body so the hint path cannot change the claim sequence.
    #[inline]
    fn push_claims(
        &self,
        c: &DeltaClaim,
        out: &mut Vec<(u64, DeltaClaim)>,
        neighbors: impl Iterator<Item = (VertexId, Weight)>,
    ) -> u64 {
        for (w, wt) in neighbors {
            let nd = c.dist.saturating_add(wt);
            if nd < self.dist[w as usize] {
                out.push((
                    nd / self.delta,
                    DeltaClaim {
                        target: w,
                        dist: nd,
                        parent: c.target,
                    },
                ));
            }
        }
        self.g.degree(c.target) as u64
    }
}

impl<G: GraphView> Frontier for DeltaStepping<'_, G> {
    type Claim = DeltaClaim;

    fn target(c: &DeltaClaim) -> VertexId {
        c.target
    }

    fn live(&self, c: &DeltaClaim) -> bool {
        c.dist < self.dist[c.target as usize]
    }

    fn commit(&mut self, c: &DeltaClaim, _round: u64) {
        self.dist[c.target as usize] = c.dist;
        self.parent[c.target as usize] = c.parent;
    }

    fn expand(&self, c: &DeltaClaim, _round: u64, out: &mut Vec<(u64, DeltaClaim)>) -> u64 {
        // the dist[w] probe is the random read in this loop — once the
        // array outgrows L2, hint it a few neighbors ahead while the
        // adjacency slice streams; below that the adapter is pure
        // overhead, so take the plain loop
        if prefetch_pays(self.dist.len()) {
            let dist = &self.dist;
            let neighbors = lookahead(self.g.neighbors(c.target), |&(w, _)| {
                prefetch_read(dist, w as usize);
            });
            self.push_claims(c, out, neighbors)
        } else {
            self.push_claims(c, out, self.g.neighbors(c.target))
        }
    }
}

/// Δ-stepping SSSP from `src` with bucket width `delta >= 1`.
pub fn delta_stepping<G: GraphView>(g: &G, src: VertexId, delta: Weight) -> (SsspResult, Cost) {
    delta_stepping_with(&Executor::current(), g, src, delta)
}

/// [`delta_stepping`] on an explicit executor.
pub fn delta_stepping_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    src: VertexId,
    delta: Weight,
) -> (SsspResult, Cost) {
    run_delta_stepping(exec, g, src, delta, &mut BucketQueue::new())
}

/// [`delta_stepping_with`] through an explicitly chosen [`ClaimQueue`]
/// implementation. The queue only changes wall-clock behavior —
/// distances and parents are identical for every [`QueueKind`]; the
/// benchsuite `frontier` race is built on this.
pub fn delta_stepping_queued<G: GraphView>(
    exec: &Executor,
    g: &G,
    src: VertexId,
    delta: Weight,
    kind: QueueKind,
) -> (SsspResult, Cost) {
    match kind {
        QueueKind::Calendar => run_delta_stepping(exec, g, src, delta, &mut BucketQueue::new()),
        QueueKind::Btree => run_delta_stepping(exec, g, src, delta, &mut BTreeBucketQueue::new()),
    }
}

fn run_delta_stepping<G: GraphView, Q: ClaimQueue<DeltaClaim>>(
    exec: &Executor,
    g: &G,
    src: VertexId,
    delta: Weight,
    queue: &mut Q,
) -> (SsspResult, Cost) {
    assert!(delta >= 1, "bucket width must be at least 1");
    let n = g.n();
    let mut state = DeltaStepping {
        g,
        dist: vec![INF; n],
        parent: vec![u32::MAX; n],
        delta,
    };
    queue.push(
        0,
        DeltaClaim {
            target: src,
            dist: 0,
            parent: src,
        },
    );
    let cost = Cost::flat(n as u64).then(drive_on(exec, queue, &mut state));
    (
        SsspResult {
            dist: state.dist,
            parent: state.parent,
        },
        cost,
    )
}

/// A reasonable default bucket width: the mean edge weight (≥ 1), the
/// standard heuristic balancing light-phase re-relaxations against the
/// number of buckets.
pub fn default_delta<G: GraphView>(g: &G) -> Weight {
    if g.m() == 0 {
        return 1;
    }
    (g.total_weight() / g.m() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use psh_exec::ExecutionPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_across_delta_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(150, 400, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 50, &mut rng);
        let exact = dijkstra(&g, 0);
        for delta in [1u64, 5, 25, 1000] {
            let (r, _) = delta_stepping(&g, 0, delta);
            assert_eq!(r.dist, exact.dist, "delta = {delta}");
        }
    }

    #[test]
    fn delta_one_behaves_like_dial() {
        let g = generators::path(50);
        let (r, _) = delta_stepping(&g, 0, 1);
        assert_eq!(r.dist[49], 49);
        assert_eq!(r.path_to(49).unwrap().len(), 50);
    }

    #[test]
    fn wider_buckets_fewer_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::grid(20, 20);
        let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
        let (_, narrow) = delta_stepping(&g, 0, 1);
        let (_, wide) = delta_stepping(&g, 0, 100);
        assert!(
            wide.depth < narrow.depth,
            "wide {} vs narrow {}",
            wide.depth,
            narrow.depth
        );
    }

    #[test]
    fn default_delta_is_mean_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::with_uniform_weights(&generators::cycle(30), 10, 10, &mut rng);
        assert_eq!(default_delta(&g), 10);
        assert_eq!(
            default_delta(&CsrGraph::from_edges(3, std::iter::empty())),
            1
        );
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let (r, _) = delta_stepping(&g, 0, 3);
        assert_eq!(r.dist, vec![0, 1, INF, INF]);
    }

    #[test]
    fn identical_results_across_executors() {
        let mut rng = StdRng::seed_from_u64(14);
        let base = generators::connected_random(250, 600, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 17, &mut rng);
        let (seq, seq_cost) = delta_stepping_with(&Executor::sequential(), &g, 3, 8);
        for threads in [2, 4, 8] {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads });
            let (par, par_cost) = delta_stepping_with(&exec, &g, 3, 8);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_cost, par_cost, "cost model is execution-independent");
        }
    }

    proptest! {
        #[test]
        fn prop_delta_stepping_exact(seed in 0u64..120, delta in 1u64..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(50, 90, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
            let (r, _) = delta_stepping(&g, 7, delta);
            prop_assert_eq!(r.dist, dijkstra(&g, 7).dist);
        }
    }
}
