//! Δ-stepping — the practical parallel SSSP engine (Meyer–Sanders).
//!
//! The paper's searches are expressed as bucketed "weighted parallel BFS"
//! ([`crate::traversal::dial`], one bucket per distance value); Δ-stepping
//! generalizes the bucket width to Δ, relaxing *light* edges (`w < Δ`)
//! iteratively within a bucket and *heavy* edges once when the bucket
//! settles. With `Δ = 1` it degenerates to Dial; with `Δ = ∞` to
//! Bellman–Ford. It is the engine a production deployment would use for
//! the hopset clique searches when edge weights are spread out, so the
//! library ships it with the same instrumentation and determinism
//! guarantees as the other engines.
//!
//! Depth accounting: one round per (bucket, light-phase iteration) plus
//! one per heavy phase — the standard Δ-stepping round structure.

use crate::csr::{CsrGraph, VertexId, Weight, INF};
use crate::traversal::SsspResult;
use psh_pram::Cost;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Δ-stepping SSSP from `src` with bucket width `delta >= 1`.
pub fn delta_stepping(g: &CsrGraph, src: VertexId, delta: Weight) -> (SsspResult, Cost) {
    assert!(delta >= 1, "bucket width must be at least 1");
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut parent = vec![u32::MAX; n];
    let mut buckets: BTreeMap<u64, Vec<VertexId>> = BTreeMap::new();
    dist[src as usize] = 0;
    parent[src as usize] = src;
    buckets.entry(0).or_default().push(src);
    let mut cost = Cost::flat(n as u64);

    while let Some((&bidx, _)) = buckets.first_key_value() {
        let mut bucket = buckets.remove(&bidx).unwrap();
        // vertices settled by this bucket, for the single heavy phase
        let mut settled: Vec<VertexId> = Vec::new();
        // --- light phases: iterate until the bucket stops refilling ----
        while !bucket.is_empty() {
            let dist_ref = &dist;
            let active: Vec<VertexId> = bucket
                .drain(..)
                .filter(|&v| dist_ref[v as usize] / delta == bidx)
                .collect();
            if active.is_empty() {
                break;
            }
            let scanned: u64 = active.par_iter().map(|&v| g.degree(v) as u64).sum();
            let dist_ref = &dist;
            let mut relax: Vec<(VertexId, Weight, VertexId)> = active
                .par_iter()
                .flat_map_iter(|&u| {
                    let du = dist_ref[u as usize];
                    g.neighbors(u).filter_map(move |(v, w)| {
                        let nd = du.saturating_add(w);
                        (w < delta && nd < dist_ref[v as usize]).then_some((v, nd, u))
                    })
                })
                .collect();
            relax.par_sort_unstable();
            settled.extend(&active);
            let mut last = u32::MAX;
            for (v, nd, p) in relax {
                if v == last {
                    continue;
                }
                last = v;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    parent[v as usize] = p;
                    let b = nd / delta;
                    if b == bidx {
                        bucket.push(v);
                    } else {
                        buckets.entry(b).or_default().push(v);
                    }
                }
            }
            cost = cost.then(Cost::flat(scanned + active.len() as u64));
        }
        // --- one heavy phase over everything settled in this bucket ----
        settled.sort_unstable();
        settled.dedup();
        if settled.is_empty() {
            continue;
        }
        let dist_ref = &dist;
        let mut relax: Vec<(VertexId, Weight, VertexId)> = settled
            .par_iter()
            .flat_map_iter(|&u| {
                let du = dist_ref[u as usize];
                g.neighbors(u).filter_map(move |(v, w)| {
                    let nd = du.saturating_add(w);
                    (w >= delta && nd < dist_ref[v as usize]).then_some((v, nd, u))
                })
            })
            .collect();
        relax.par_sort_unstable();
        let mut last = u32::MAX;
        for (v, nd, p) in relax {
            if v == last {
                continue;
            }
            last = v;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = p;
                buckets.entry(nd / delta).or_default().push(v);
            }
        }
        cost = cost.then(Cost::flat(settled.len() as u64 + 1));
    }

    (SsspResult { dist, parent }, cost)
}

/// A reasonable default bucket width: the mean edge weight (≥ 1), the
/// standard heuristic balancing light-phase re-relaxations against the
/// number of buckets.
pub fn default_delta(g: &CsrGraph) -> Weight {
    if g.m() == 0 {
        return 1;
    }
    (g.total_weight() / g.m() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::dijkstra::dijkstra;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_across_delta_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(150, 400, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 50, &mut rng);
        let exact = dijkstra(&g, 0);
        for delta in [1u64, 5, 25, 1000] {
            let (r, _) = delta_stepping(&g, 0, delta);
            assert_eq!(r.dist, exact.dist, "delta = {delta}");
        }
    }

    #[test]
    fn delta_one_behaves_like_dial() {
        let g = generators::path(50);
        let (r, _) = delta_stepping(&g, 0, 1);
        assert_eq!(r.dist[49], 49);
        assert_eq!(r.path_to(49).unwrap().len(), 50);
    }

    #[test]
    fn wider_buckets_fewer_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::grid(20, 20);
        let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
        let (_, narrow) = delta_stepping(&g, 0, 1);
        let (_, wide) = delta_stepping(&g, 0, 100);
        assert!(
            wide.depth < narrow.depth,
            "wide {} vs narrow {}",
            wide.depth,
            narrow.depth
        );
    }

    #[test]
    fn default_delta_is_mean_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::with_uniform_weights(&generators::cycle(30), 10, 10, &mut rng);
        assert_eq!(default_delta(&g), 10);
        assert_eq!(
            default_delta(&CsrGraph::from_edges(3, std::iter::empty())),
            1
        );
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let (r, _) = delta_stepping(&g, 0, 3);
        assert_eq!(r.dist, vec![0, 1, INF, INF]);
    }

    proptest! {
        #[test]
        fn prop_delta_stepping_exact(seed in 0u64..120, delta in 1u64..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = generators::connected_random(50, 90, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
            let (r, _) = delta_stepping(&g, 7, delta);
            prop_assert_eq!(r.dist, dijkstra(&g, 7).dist);
        }
    }
}
