//! Zero-copy snapshot backing: [`SnapshotSource`] (one `mmap` or one
//! aligned bulk read), the `SNAPSHOT_VERSION = 2` section framework, and
//! [`MmapView`] — a [`GraphView`] that serves CSR adjacency straight off
//! the mapped bytes.
//!
//! # The v2 layout
//!
//! Version-1 snapshots (see [`crate::io`]) are streams: every integer is
//! decoded element by element, every edge re-validated, every derived
//! structure rebuilt. That is robust but it makes cold start O(decode),
//! not O(open). Version 2 keeps the same magic and kind tags but lays the
//! artifact out as **page-aligned, little-endian, section-table-indexed
//! slabs** so a process can `mmap` the file and start answering queries
//! after a linear validation pass — no allocation proportional to the
//! artifact, no sorting, no recomputation of derived state:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"PSHS"
//! 4       2     format version (LE u16) = 2
//! 6       2     artifact kind  (LE u16, same tags as v1)
//! 8       8     file length (LE u64) — must equal the real file size
//! 16      8     section count S (LE u64)
//! 24      24·S  section directory: {tag u32, reserved u32 = 0,
//!                                   offset u64, len u64} per section
//! …       …     zero padding to the next 4096-byte boundary
//! …       …     section payloads, each starting 64-byte aligned
//! ```
//!
//! Alignment rules: the data region starts on a 4096-byte (page)
//! boundary; every section payload starts on a 64-byte (cache-line)
//! boundary. Because [`SnapshotSource`] guarantees the base address is
//! page-aligned (both the mmap and the heap-fallback path), any section
//! payload can be reinterpreted in place as a `&[u32]` / `&[u64]` /
//! `&[Edge]` slab ([`cast_u32s`] and friends check alignment and host
//! endianness before handing out a slice).
//!
//! Section **tags** are owned by the artifact kind: this module defines
//! the graph-adjacency tags ([`SEC_META`], [`SEC_GRAPH_OFFSETS`], …);
//! `psh_core::snapshot` defines the oracle-specific ones on top. Readers
//! ignore tags they don't know, so new sections are additive.
//!
//! # Trust model
//!
//! Mapped bytes are untrusted until validated. [`SectionTable::parse`]
//! bounds-checks the directory (no section escapes the file, none
//! overlap, all aligned); [`MmapView::from_parts`] then validates the
//! slabs at one of two [`Verify`] levels:
//!
//! * [`Verify::Bounds`] — the serving hot path. Shape agreement,
//!   monotone covering offsets, and branch-light max-scans that bound
//!   every stored index (`targets < n`, `slot_eids < m`). After `Ok`,
//!   no access through the view can read out of bounds, and a *valid*
//!   file iterates bit-identically to the owned graph (the writer is
//!   canonical). Cost: a few sequential scans over the index slabs —
//!   the weights and edge records are never touched, which is what
//!   keeps an `mmap` open lazy.
//! * [`Verify::Deep`] — additionally replays the exact
//!   edges-in-canonical-order sweep [`crate::CsrGraph`] construction
//!   uses and rejects any deviation, pinning the slab *content* (not
//!   just its shape) to the edge list. `psh-snap`, migration, and the
//!   corruption test-suites run at this level; in-bounds tampering
//!   that `Bounds` would serve (with wrong answers, never a crash) is
//!   a typed error here.
//!
//! Every rejection at either level is a typed [`SnapshotError`]; no
//! input can cause a panic or an out-of-bounds read.

use crate::csr::{Edge, VertexId, Weight};
use crate::io::{SnapshotError, SNAPSHOT_MAGIC};
use crate::view::GraphView;
use std::fmt;
use std::fs::File;
use std::io::Read as _;
use std::path::Path;
use std::ptr::NonNull;
use std::sync::Arc;

/// The mmap-able snapshot format version this module reads and writes.
pub const SNAPSHOT_VERSION_V2: u16 = 2;
/// Bytes before the section directory.
pub const V2_HEADER_BYTES: usize = 24;
/// Bytes per section-directory entry.
pub const V2_DIR_ENTRY_BYTES: usize = 24;
/// Every section payload starts on this boundary (cache line).
pub const V2_SECTION_ALIGN: usize = 64;
/// The data region (first section) starts on this boundary (page), and
/// [`SnapshotSource`] buffers are allocated to it.
pub const V2_PAGE_ALIGN: usize = 4096;

/// Tag: artifact-level scalars (fixed little-endian layout per kind).
pub const SEC_META: u32 = 1;
/// Tag: CSR offsets, `(n + 1) × u32`.
pub const SEC_GRAPH_OFFSETS: u32 = 2;
/// Tag: CSR adjacency targets, `2m × u32`.
pub const SEC_GRAPH_TARGETS: u32 = 3;
/// Tag: CSR adjacency weights, `2m × u64`.
pub const SEC_GRAPH_WEIGHTS: u32 = 4;
/// Tag: CSR adjacency canonical-edge ids, `2m × u32`.
pub const SEC_GRAPH_EIDS: u32 = 5;
/// Tag: canonical edge list, `m × 16`-byte [`Edge`] records.
pub const SEC_GRAPH_EDGES: u32 = 6;
/// Tag: per-vertex byte offsets into the delta-compressed adjacency
/// stream, `(n + 1) × u64`. Present (together with
/// [`SEC_GRAPH_COMP_DATA`]) *instead of* [`SEC_GRAPH_TARGETS`] +
/// [`SEC_GRAPH_EIDS`] in compressed snapshots — see [`crate::compress`].
pub const SEC_GRAPH_COMP_OFFSETS: u32 = 12;
/// Tag: the delta-compressed adjacency stream (varint gap pairs).
pub const SEC_GRAPH_COMP_DATA: u32 = 13;

/// Round `x` up to a multiple of `a` (`a` must be a power of two).
#[inline]
pub const fn align_up(x: usize, a: usize) -> usize {
    (x + a - 1) & !(a - 1)
}

fn corrupt(what: &'static str, detail: impl fmt::Display) -> SnapshotError {
    SnapshotError::Corrupt {
        what,
        detail: detail.to_string(),
    }
}

/// Slab casts only make sense when the host's native layout matches the
/// on-disk little-endian layout; on a big-endian host v2 loading reports
/// a typed error (v1 decoding still works there).
fn ensure_little_endian() -> Result<(), SnapshotError> {
    if cfg!(target_endian = "little") {
        Ok(())
    } else {
        Err(corrupt(
            "host endianness",
            "v2 snapshots are little-endian slabs and this host is big-endian; \
             use the v1 format here",
        ))
    }
}

// ---------------------------------------------------------------------------
// SnapshotSource — one mmap (linux) or one aligned bulk read
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

/// How to bring snapshot bytes into the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// `mmap(PROT_READ, MAP_PRIVATE)` on linux — the kernel pages the
    /// file in lazily and N processes share one page-cache copy. Falls
    /// back to [`LoadMode::Read`] on other platforms.
    Mmap,
    /// One bulk read into a page-aligned heap buffer — works everywhere,
    /// still a single sequential I/O pass.
    Read,
}

enum Repr {
    /// Zero-length input; no allocation and nothing to unmap.
    Empty,
    /// A page-aligned heap buffer we own.
    Heap { ptr: NonNull<u8>, len: usize },
    /// A live read-only mapping.
    #[cfg(target_os = "linux")]
    Mapped { ptr: NonNull<u8>, len: usize },
}

/// An immutable, page-aligned byte region holding one snapshot file —
/// either a real `mmap` (linux) or an owned aligned buffer (fallback).
/// Both reprs expose the same [`SnapshotSource::bytes`]; everything
/// layered on top ([`SectionTable`], [`MmapView`], the mapped oracle in
/// `psh_core`) is agnostic to which one backs it.
///
/// The region is immutable for the lifetime of the value and freed on
/// drop; views keep it alive through an [`Arc`].
pub struct SnapshotSource {
    repr: Repr,
}

// SAFETY: the region is read-only for the whole lifetime of the value
// (PROT_READ mapping or a never-mutated owned buffer), so shared access
// from any thread is sound, and ownership can move between threads.
unsafe impl Send for SnapshotSource {}
unsafe impl Sync for SnapshotSource {}

impl SnapshotSource {
    /// Open `path` with the requested [`LoadMode`].
    pub fn open(path: &Path, mode: LoadMode) -> std::io::Result<SnapshotSource> {
        match mode {
            LoadMode::Mmap => SnapshotSource::map(path),
            LoadMode::Read => SnapshotSource::read(path),
        }
    }

    /// Map `path` read-only. On non-linux platforms this is
    /// [`SnapshotSource::read`].
    #[cfg(target_os = "linux")]
    pub fn map(path: &Path) -> std::io::Result<SnapshotSource> {
        use std::os::unix::io::AsRawFd;

        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot larger than the address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(SnapshotSource { repr: Repr::Empty });
        }
        // SAFETY: requesting a fresh read-only private mapping of a file
        // we hold open; the kernel picks the address. The fd may be
        // closed after mmap returns — the mapping keeps the file alive.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            return Err(std::io::Error::last_os_error());
        }
        let ptr = NonNull::new(ptr as *mut u8).expect("mmap returned a non-null address");
        Ok(SnapshotSource {
            repr: Repr::Mapped { ptr, len },
        })
    }

    /// Map `path` read-only (bulk-read fallback on this platform).
    #[cfg(not(target_os = "linux"))]
    pub fn map(path: &Path) -> std::io::Result<SnapshotSource> {
        SnapshotSource::read(path)
    }

    /// Read `path` in one pass into a page-aligned buffer.
    pub fn read(path: &Path) -> std::io::Result<SnapshotSource> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot larger than the address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(SnapshotSource { repr: Repr::Empty });
        }
        let mut src = SnapshotSource::alloc_aligned(len);
        let Repr::Heap { ptr, .. } = &mut src.repr else {
            unreachable!("alloc_aligned builds a heap repr");
        };
        // SAFETY: `ptr` owns `len` writable bytes, freshly allocated.
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr.as_ptr(), len) };
        file.read_exact(buf)?;
        // a file that grew between metadata() and here would desync the
        // header's recorded length; trailing bytes are caught by parse
        Ok(src)
    }

    /// Copy `bytes` into a page-aligned owned buffer — for in-memory
    /// round trips and tests; files should use [`SnapshotSource::open`].
    pub fn from_bytes(bytes: &[u8]) -> SnapshotSource {
        if bytes.is_empty() {
            return SnapshotSource { repr: Repr::Empty };
        }
        let mut src = SnapshotSource::alloc_aligned(bytes.len());
        let Repr::Heap { ptr, .. } = &mut src.repr else {
            unreachable!("alloc_aligned builds a heap repr");
        };
        // SAFETY: `ptr` owns `bytes.len()` writable bytes; regions are
        // distinct (one freshly allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr.as_ptr(), bytes.len());
        }
        src
    }

    /// A zeroed page-aligned heap buffer of `len > 0` bytes. A plain
    /// `Vec<u8>` would only guarantee alignment 1, which would break the
    /// in-place slab casts.
    fn alloc_aligned(len: usize) -> SnapshotSource {
        let layout = std::alloc::Layout::from_size_align(len, V2_PAGE_ALIGN)
            .expect("snapshot length fits a page-aligned layout");
        // SAFETY: len > 0 so the layout is non-zero-sized.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        SnapshotSource {
            repr: Repr::Heap { ptr, len },
        }
    }

    /// The whole region. The base address is page-aligned for both
    /// reprs, so section payloads keep their on-disk alignment in
    /// memory.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Empty => &[],
            // SAFETY: ptr/len describe a live region owned (or mapped)
            // by self, immutable until drop.
            Repr::Heap { ptr, len } => unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) },
            #[cfg(target_os = "linux")]
            Repr::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) },
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for a zero-length region.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the region is a real `mmap` (as opposed to an owned
    /// buffer) — what the benchsuite `load` table reports as "mmap".
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(target_os = "linux")]
            Repr::Mapped { .. } => true,
            _ => false,
        }
    }
}

impl Drop for SnapshotSource {
    fn drop(&mut self) {
        match &self.repr {
            Repr::Empty => {}
            Repr::Heap { ptr, len } => {
                let layout = std::alloc::Layout::from_size_align(*len, V2_PAGE_ALIGN)
                    .expect("layout validated at allocation");
                // SAFETY: allocated by alloc_aligned with this layout.
                unsafe { std::alloc::dealloc(ptr.as_ptr(), layout) };
            }
            #[cfg(target_os = "linux")]
            Repr::Mapped { ptr, len } => {
                // SAFETY: a live mapping created by map() with this length.
                unsafe { sys::munmap(ptr.as_ptr() as *mut _, *len) };
            }
        }
    }
}

impl fmt::Debug for SnapshotSource {
    /// Repr + length only — never dumps the region.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotSource")
            .field("mapped", &self.is_mapped())
            .field("len", &self.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Section directory: parse (reader) and layout (writer)
// ---------------------------------------------------------------------------

/// One parsed directory entry: a named byte range inside the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section tag (see the `SEC_*` constants and `psh_core::snapshot`).
    pub tag: u32,
    /// Payload offset from the start of the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// The validated section directory of a v2 snapshot. After
/// [`SectionTable::parse`] succeeds, every entry is in bounds, 64-byte
/// aligned, non-overlapping, and unique by tag — slicing a section out
/// of the file can no longer fail.
#[derive(Debug)]
pub struct SectionTable {
    kind: u16,
    entries: Vec<SectionEntry>,
}

impl SectionTable {
    /// Parse and validate the header + directory of `bytes` (a whole v2
    /// file). Rejects v1 files with
    /// [`SnapshotError::UnsupportedVersion`] so callers can dispatch on
    /// version; rejects every structural violation with a typed error.
    pub fn parse(bytes: &[u8]) -> Result<SectionTable, SnapshotError> {
        if bytes.len() < V2_HEADER_BYTES {
            return Err(SnapshotError::Truncated { what: "v2 header" });
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic {
                found: bytes[0..4].try_into().expect("4 bytes checked"),
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != SNAPSHOT_VERSION_V2 {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION_V2,
            });
        }
        let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
        let file_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if file_len != bytes.len() as u64 {
            return Err(corrupt(
                "file length",
                format_args!(
                    "header records {file_len} bytes but the file holds {}",
                    bytes.len()
                ),
            ));
        }
        let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        // the directory itself must fit — this bounds `count` before any
        // allocation, so an absurd count cannot OOM
        let dir_bytes = count.checked_mul(V2_DIR_ENTRY_BYTES as u64);
        let dir_end = dir_bytes.and_then(|d| d.checked_add(V2_HEADER_BYTES as u64));
        let dir_end = match dir_end {
            Some(e) if e <= bytes.len() as u64 => e as usize,
            _ => {
                return Err(corrupt(
                    "section count",
                    format_args!("{count} directory entries do not fit in the file"),
                ))
            }
        };
        let count = count as usize;
        let data_start = align_up(dir_end, V2_PAGE_ALIGN);

        let mut entries = Vec::with_capacity(count);
        let mut prev_end = data_start as u64;
        for i in 0..count {
            let at = V2_HEADER_BYTES + i * V2_DIR_ENTRY_BYTES;
            let rec = &bytes[at..at + V2_DIR_ENTRY_BYTES];
            let tag = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
            let reserved = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"));
            if reserved != 0 {
                return Err(corrupt(
                    "section directory",
                    format_args!("entry {i}: reserved field is {reserved:#x}, not 0"),
                ));
            }
            if offset % V2_SECTION_ALIGN as u64 != 0 {
                return Err(corrupt(
                    "section alignment",
                    format_args!(
                        "entry {i} (tag {tag:#x}): offset {offset} is not 64-byte aligned"
                    ),
                ));
            }
            // sections live in the data region, in directory order,
            // without overlap — `prev_end` enforces all three at once
            if offset < prev_end {
                return Err(corrupt(
                    "section layout",
                    format_args!(
                        "entry {i} (tag {tag:#x}): offset {offset} overlaps the previous \
                         section or the directory (expected ≥ {prev_end})"
                    ),
                ));
            }
            let end = match offset.checked_add(len) {
                Some(e) if e <= file_len => e,
                _ => {
                    return Err(corrupt(
                        "section length",
                        format_args!(
                            "entry {i} (tag {tag:#x}): {len} bytes at offset {offset} escape \
                             the {file_len}-byte file"
                        ),
                    ))
                }
            };
            prev_end = end;
            if entries.iter().any(|e: &SectionEntry| e.tag == tag) {
                return Err(corrupt(
                    "section directory",
                    format_args!("tag {tag:#x} appears twice"),
                ));
            }
            entries.push(SectionEntry {
                tag,
                offset: offset as usize,
                len: len as usize,
            });
        }
        Ok(SectionTable { kind, entries })
    }

    /// The artifact kind recorded in the header (same tags as v1).
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// All entries, in file order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Look up a section by tag.
    pub fn find(&self, tag: u32) -> Option<SectionEntry> {
        self.entries.iter().copied().find(|e| e.tag == tag)
    }

    /// Slice a section's payload out of the file it was parsed from.
    /// `bytes` must be the same buffer passed to [`SectionTable::parse`]
    /// (entries are in bounds for it by construction).
    pub fn slice<'a>(&self, bytes: &'a [u8], tag: u32) -> Option<&'a [u8]> {
        self.find(tag).map(|e| &bytes[e.offset..e.offset + e.len])
    }

    /// [`SectionTable::slice`], but a missing section is a typed error.
    pub fn require<'a>(
        &self,
        bytes: &'a [u8],
        tag: u32,
        what: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        self.slice(bytes, tag)
            .ok_or_else(|| corrupt(what, format_args!("section tag {tag:#x} missing")))
    }
}

/// Accumulates sections in memory and emits a complete v2 file:
/// header, directory, page padding, and 64-byte-aligned payloads in
/// insertion order.
pub struct SectionWriter {
    kind: u16,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SectionWriter {
    /// Start a v2 snapshot of the given artifact kind.
    pub fn new(kind: u16) -> SectionWriter {
        SectionWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Append a section. Tags must be unique per file.
    pub fn section(&mut self, tag: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate section tag {tag:#x}"
        );
        self.sections.push((tag, payload));
    }

    /// Lay out and emit the whole file.
    pub fn finish(self) -> Vec<u8> {
        let dir_end = V2_HEADER_BYTES + self.sections.len() * V2_DIR_ENTRY_BYTES;
        let data_start = align_up(dir_end, V2_PAGE_ALIGN);

        // first pass: assign aligned offsets
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = data_start;
        for (_, payload) in &self.sections {
            let at = align_up(cursor, V2_SECTION_ALIGN);
            offsets.push(at);
            cursor = at + payload.len();
        }
        let file_len = if self.sections.is_empty() {
            dir_end
        } else {
            cursor
        };

        // second pass: emit
        let mut out = vec![0u8; file_len];
        out[0..4].copy_from_slice(&SNAPSHOT_MAGIC);
        out[4..6].copy_from_slice(&SNAPSHOT_VERSION_V2.to_le_bytes());
        out[6..8].copy_from_slice(&self.kind.to_le_bytes());
        out[8..16].copy_from_slice(&(file_len as u64).to_le_bytes());
        out[16..24].copy_from_slice(&(self.sections.len() as u64).to_le_bytes());
        for (i, ((tag, payload), at)) in self.sections.iter().zip(&offsets).enumerate() {
            let rec = V2_HEADER_BYTES + i * V2_DIR_ENTRY_BYTES;
            out[rec..rec + 4].copy_from_slice(&tag.to_le_bytes());
            // rec + 4 .. rec + 8 stays zero (reserved)
            out[rec + 8..rec + 16].copy_from_slice(&(*at as u64).to_le_bytes());
            out[rec + 16..rec + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            out[*at..*at + payload.len()].copy_from_slice(payload);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Slab casts: &[u8] → &[u32] / &[u64] / &[Edge], in place
// ---------------------------------------------------------------------------

/// Reinterpret a section payload as a `u32` slab (little-endian host
/// only; length and alignment checked).
pub fn cast_u32s<'a>(bytes: &'a [u8], what: &'static str) -> Result<&'a [u32], SnapshotError> {
    cast_slab(bytes, what)
}

/// Reinterpret a section payload as a `u64` slab.
pub fn cast_u64s<'a>(bytes: &'a [u8], what: &'static str) -> Result<&'a [u64], SnapshotError> {
    cast_slab(bytes, what)
}

/// Reinterpret a section payload as 16-byte canonical [`Edge`] records.
/// Structural validity (`u < v`, sortedness, weights ≥ 1) is *not*
/// checked here — that is [`MmapView::from_parts`]'s job.
pub fn cast_edges<'a>(bytes: &'a [u8], what: &'static str) -> Result<&'a [Edge], SnapshotError> {
    // SAFETY of the cast below relies on Edge being repr(C) with every
    // bit pattern inhabited (u32, u32, u64) — checked at compile time:
    const _: () = assert!(std::mem::size_of::<Edge>() == 16);
    const _: () = assert!(std::mem::align_of::<Edge>() == 8);
    cast_slab(bytes, what)
}

fn cast_slab<'a, T: Copy>(bytes: &'a [u8], what: &'static str) -> Result<&'a [T], SnapshotError> {
    ensure_little_endian()?;
    let size = std::mem::size_of::<T>();
    let align = std::mem::align_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(corrupt(
            what,
            format_args!(
                "section holds {} bytes, not a multiple of the {size}-byte record",
                bytes.len()
            ),
        ));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(align) {
        return Err(corrupt(
            what,
            format_args!("section start is not {align}-byte aligned"),
        ));
    }
    // SAFETY: length and alignment checked above; T is a plain-old-data
    // type (u32 / u64 / repr(C) Edge) for which every bit pattern is a
    // valid value, and the source region outlives the borrow.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

// ---------------------------------------------------------------------------
// Writer-side slab encoding
// ---------------------------------------------------------------------------

/// The five CSR slabs of one graph, already little-endian encoded —
/// ready to hand to [`SectionWriter::section`].
pub struct CsrSlabs {
    /// `(n + 1) × u32` adjacency offsets.
    pub offsets: Vec<u8>,
    /// `2m × u32` adjacency targets.
    pub targets: Vec<u8>,
    /// `2m × u64` adjacency weights.
    pub weights: Vec<u8>,
    /// `2m × u32` adjacency canonical-edge ids.
    pub slot_eids: Vec<u8>,
    /// `m × 16`-byte canonical edge records.
    pub edges: Vec<u8>,
}

/// Encode the CSR slabs of a graph given its canonical edge list,
/// using the same degree-count + edges-in-order fill sweep
/// [`crate::CsrGraph`] construction uses — so a mapped view over these
/// slabs iterates identically to the owned graph.
pub fn encode_csr_slabs(n: usize, edges: &[Edge]) -> CsrSlabs {
    let m = edges.len();
    let mut offsets = vec![0u32; n + 1];
    for e in edges {
        offsets[e.u as usize + 1] += 1;
        offsets[e.v as usize + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let mut targets = vec![0u32; 2 * m];
    let mut weights = vec![0u64; 2 * m];
    let mut slot_eids = vec![0u32; 2 * m];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (eid, e) in edges.iter().enumerate() {
        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
            let c = cursor[a as usize] as usize;
            targets[c] = b;
            weights[c] = e.w;
            slot_eids[c] = eid as u32;
            cursor[a as usize] += 1;
        }
    }
    CsrSlabs {
        offsets: le_u32s(&offsets),
        targets: le_u32s(&targets),
        weights: le_u64s(&weights),
        slot_eids: le_u32s(&slot_eids),
        edges: le_edges(edges),
    }
}

/// The three adjacency slabs of one extra-edge (hopset shortcut) set,
/// little-endian encoded — the mapped counterpart of
/// `ExtraEdges::from_edges` in the traversal layer.
pub struct ExtraSlabs {
    /// `(n + 1) × u32` adjacency offsets.
    pub offsets: Vec<u8>,
    /// `2m' × u32` adjacency targets.
    pub targets: Vec<u8>,
    /// `2m' × u64` adjacency weights.
    pub weights: Vec<u8>,
}

/// Encode the extra-edge adjacency slabs for an undirected shortcut
/// list, using the same both-directions edges-in-list-order fill
/// `ExtraEdges::from_edges` uses — so a view over these slabs iterates
/// identically to the owned structure.
pub fn encode_extra_slabs(n: usize, edges: &[Edge]) -> ExtraSlabs {
    let mut offsets = vec![0u32; n + 1];
    for e in edges {
        offsets[e.u as usize + 1] += 1;
        offsets[e.v as usize + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let slots = offsets[n] as usize;
    let mut targets = vec![0u32; slots];
    let mut weights = vec![0u64; slots];
    let mut cursor = offsets.clone();
    for e in edges {
        targets[cursor[e.u as usize] as usize] = e.v;
        weights[cursor[e.u as usize] as usize] = e.w;
        cursor[e.u as usize] += 1;
        targets[cursor[e.v as usize] as usize] = e.u;
        weights[cursor[e.v as usize] as usize] = e.w;
        cursor[e.v as usize] += 1;
    }
    ExtraSlabs {
        offsets: le_u32s(&offsets),
        targets: le_u32s(&targets),
        weights: le_u64s(&weights),
    }
}

/// How much of a mapped snapshot's content to validate at open time.
///
/// `Bounds` guarantees memory safety (no access through the resulting
/// view can go out of bounds) with a few sequential index scans;
/// `Deep` additionally pins the slab content to the edge list by
/// replaying the owned structures' fill sweeps, so in-bounds tampering
/// becomes a typed error instead of a wrong answer. Serving opens with
/// `Bounds` (that is the zero-copy fast path); `psh-snap`, migration,
/// and the corruption suites use `Deep`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verify {
    /// Shape + offset monotonicity + index max-scans: safe, lazy, fast.
    Bounds,
    /// Everything `Bounds` checks, plus exact fill-sweep replays and
    /// per-record content rules: a view that passes iterates
    /// bit-identically to the owned structure.
    Deep,
}

/// `Ok` iff every value in `vals` is `< limit` (vacuously true when
/// empty). A branch-light max-fold the optimizer vectorizes — this is
/// the whole per-slab cost of [`Verify::Bounds`].
fn check_indices_below(
    vals: &[u32],
    limit: usize,
    what: &'static str,
) -> Result<(), SnapshotError> {
    let max = vals.iter().copied().fold(0u32, u32::max);
    if !vals.is_empty() && max as usize >= limit {
        return Err(corrupt(
            what,
            format_args!("stored index {max} out of range for limit {limit}"),
        ));
    }
    Ok(())
}

/// Validate mapped extra-edge adjacency slabs against the shortcut list
/// they claim to index: shape, monotone offsets, and (at
/// [`Verify::Deep`]) an exact replay of the `ExtraEdges::from_edges`
/// fill order. Mirrors what `validate_csr_parts` does for the graph
/// slabs (shortcut lists may repeat pairs and are not sorted, so the
/// rules differ).
pub fn validate_extra_parts(
    offsets: &[u32],
    targets: &[VertexId],
    weights: &[Weight],
    n: usize,
    edges: &[Edge],
    verify: Verify,
) -> Result<(), SnapshotError> {
    if offsets.len() != n + 1 {
        return Err(corrupt(
            "extra offsets",
            format_args!("{} offset entries for n = {n}", offsets.len()),
        ));
    }
    let slots = targets.len();
    if slots != 2 * edges.len() || weights.len() != slots {
        return Err(corrupt(
            "extra shape",
            format_args!(
                "{} targets / {} weights for {} shortcut edges",
                targets.len(),
                weights.len(),
                edges.len()
            ),
        ));
    }
    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) || offsets[n] as usize != slots {
        return Err(corrupt(
            "extra offsets",
            "offsets are not a monotone cover of the adjacency slots",
        ));
    }
    if verify == Verify::Bounds {
        // safety only: every target must index a real vertex; the
        // replay below subsumes this check when it runs
        return check_indices_below(targets, n, "extra target");
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (i, e) in edges.iter().enumerate() {
        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
            let c = cursor[a as usize] as usize;
            if c >= offsets[a as usize + 1] as usize || targets[c] != b || weights[c] != e.w {
                return Err(corrupt(
                    "extra adjacency",
                    format_args!(
                        "adjacency slots do not replay the shortcut fill at edge {i} = ({}, {})",
                        e.u, e.v
                    ),
                ));
            }
            cursor[a as usize] += 1;
        }
    }
    Ok(())
}

/// Validate a shortcut edge list over vertices `0..n`: canonical
/// endpoints (`u < v`, both `< n`), weights ≥ 1, any order and
/// multiplicity — the v2 counterpart of the v1 reader's
/// `CanonicalAnyOrder` rules.
pub fn validate_edges_any_order(n: usize, edges: &[Edge]) -> Result<(), SnapshotError> {
    for (i, e) in edges.iter().enumerate() {
        if e.u as usize >= n || e.v as usize >= n {
            return Err(corrupt(
                "edge endpoint",
                format_args!("edge {i} = ({}, {}) out of range for n = {n}", e.u, e.v),
            ));
        }
        if e.u >= e.v {
            return Err(corrupt(
                "edge",
                format_args!("edge {i} = ({}, {}) is not canonical (u < v)", e.u, e.v),
            ));
        }
        if e.w == 0 {
            return Err(corrupt(
                "edge weight",
                format_args!("edge {i} = ({}, {}) has zero weight", e.u, e.v),
            ));
        }
    }
    Ok(())
}

/// Little-endian-encode a `u32` slice.
pub fn le_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Little-endian-encode a `u64` slice.
pub fn le_u64s(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode canonical edges as the 16-byte on-disk records.
pub fn le_edges(edges: &[Edge]) -> Vec<u8> {
    let mut out = Vec::with_capacity(edges.len() * 16);
    for e in edges {
        out.extend_from_slice(&e.u.to_le_bytes());
        out.extend_from_slice(&e.v.to_le_bytes());
        out.extend_from_slice(&e.w.to_le_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// MmapView — GraphView over validated slabs
// ---------------------------------------------------------------------------

/// A raw pointer + length pair into a [`SnapshotSource`] region. Not a
/// slice so that the owning view can be `'static` (self-referential
/// through the `Arc`); re-borrowed as a slice per call.
struct Slab<T> {
    ptr: *const T,
    len: usize,
}

impl<T> Slab<T> {
    fn of(s: &[T]) -> Slab<T> {
        Slab {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    /// SAFETY-by-invariant: `ptr/len` point into the `SnapshotSource`
    /// held alive by the owning view, which is immutable until drop.
    #[inline]
    fn get(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T> Clone for Slab<T> {
    fn clone(&self) -> Self {
        Slab {
            ptr: self.ptr,
            len: self.len,
        }
    }
}

/// An owned [`GraphView`] whose storage is five slabs inside a shared
/// [`SnapshotSource`] — the zero-copy counterpart of [`crate::CsrGraph`].
///
/// Construction ([`MmapView::from_parts`]) validates the slabs at the
/// caller's [`Verify`] level. [`Verify::Bounds`] pins shape, monotone
/// offsets, and every stored index — after `Ok`, no access through the
/// view can go out of bounds, and a valid file iterates bit-identically
/// to the [`crate::CsrGraph`] built from the same edge list (the
/// writer is canonical). [`Verify::Deep`] additionally replays the
/// exact edges-in-canonical-order fill sweep of CSR construction, so
/// even in-bounds tampering is a typed error — that replay is what the
/// corruption suites and `psh-snap` lean on, and keeping it off the
/// serving open path is what keeps an `mmap` load lazy.
///
/// Cloning is cheap (an `Arc` bump); the underlying mapping lives until
/// the last clone drops.
#[derive(Clone)]
pub struct MmapView {
    /// Keeps the mapped region alive; all slabs point into it.
    src: Arc<SnapshotSource>,
    offsets: Slab<u32>,
    targets: Slab<VertexId>,
    weights: Slab<Weight>,
    slot_eids: Slab<u32>,
    edges: Slab<Edge>,
}

// SAFETY: the slabs point into `src`, which is immutable and kept alive
// by the Arc field; shared/moved access from any thread only ever reads.
unsafe impl Send for MmapView {}
unsafe impl Sync for MmapView {}

impl MmapView {
    /// Assemble and validate a view over slabs that live inside `src`.
    ///
    /// All five slices must point into `src.bytes()` (checked). Returns
    /// a typed [`SnapshotError::Corrupt`] for any violation of the
    /// chosen [`Verify`] level; after `Ok`, no access through the view
    /// can go out of bounds.
    pub fn from_parts(
        src: Arc<SnapshotSource>,
        offsets: &[u32],
        targets: &[VertexId],
        weights: &[Weight],
        slot_eids: &[u32],
        edges: &[Edge],
        verify: Verify,
    ) -> Result<MmapView, SnapshotError> {
        let region = src.bytes().as_ptr_range();
        let inside = |ptr: *const u8, bytes: usize| {
            bytes == 0 || (region.start <= ptr && unsafe { ptr.add(bytes) } <= region.end)
        };
        assert!(
            inside(
                offsets.as_ptr() as *const u8,
                std::mem::size_of_val(offsets)
            ) && inside(
                targets.as_ptr() as *const u8,
                std::mem::size_of_val(targets)
            ) && inside(
                weights.as_ptr() as *const u8,
                std::mem::size_of_val(weights)
            ) && inside(
                slot_eids.as_ptr() as *const u8,
                std::mem::size_of_val(slot_eids)
            ) && inside(edges.as_ptr() as *const u8, std::mem::size_of_val(edges)),
            "MmapView slabs must live inside the SnapshotSource that owns them"
        );
        validate_csr_parts(offsets, targets, weights, slot_eids, edges, verify)?;
        Ok(MmapView {
            src,
            offsets: Slab::of(offsets),
            targets: Slab::of(targets),
            weights: Slab::of(weights),
            slot_eids: Slab::of(slot_eids),
            edges: Slab::of(edges),
        })
    }

    /// A second view over this view's already-validated adjacency
    /// structure with substituted weight and edge slabs — how a rounded
    /// band shares the base graph's offsets/targets/eids without
    /// re-scanning them once per band.
    ///
    /// Only the substituted slabs are checked (same lengths as the
    /// originals, and inside the same source region); the structural
    /// guarantees of `self`'s [`Verify`] level carry over because the
    /// index slabs are literally the same memory.
    pub fn reweighted(
        &self,
        weights: &[Weight],
        edges: &[Edge],
    ) -> Result<MmapView, SnapshotError> {
        let region = self.src.bytes().as_ptr_range();
        let inside = |ptr: *const u8, bytes: usize| {
            bytes == 0 || (region.start <= ptr && unsafe { ptr.add(bytes) } <= region.end)
        };
        assert!(
            inside(
                weights.as_ptr() as *const u8,
                std::mem::size_of_val(weights)
            ) && inside(edges.as_ptr() as *const u8, std::mem::size_of_val(edges)),
            "MmapView slabs must live inside the SnapshotSource that owns them"
        );
        if weights.len() != self.weights.len || edges.len() != self.edges.len {
            return Err(corrupt(
                "csr shape",
                format_args!(
                    "substituted slabs disagree: {} weights / {} edges, base has {} / {}",
                    weights.len(),
                    edges.len(),
                    self.weights.len,
                    self.edges.len
                ),
            ));
        }
        Ok(MmapView {
            src: Arc::clone(&self.src),
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: Slab::of(weights),
            slot_eids: self.slot_eids.clone(),
            edges: Slab::of(edges),
        })
    }

    /// The source region this view (and possibly others) is backed by.
    pub fn source(&self) -> &Arc<SnapshotSource> {
        &self.src
    }

    /// Borrow this view as a [`CsrView`](crate::view::CsrView) (same iteration behavior; handy
    /// for APIs that take the borrowed form).
    pub fn as_view(&self) -> crate::view::CsrView<'_> {
        crate::view::CsrView::from_raw(
            self.offsets.get(),
            self.targets.get(),
            self.weights.get(),
            self.slot_eids.get(),
            self.edges.get(),
        )
    }

    #[inline]
    fn slot_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let offsets = self.offsets.get();
        offsets[v as usize] as usize..offsets[v as usize + 1] as usize
    }
}

impl fmt::Debug for MmapView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapView")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("mapped", &self.src.is_mapped())
            .finish()
    }
}

impl GraphView for MmapView {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len - 1
    }

    #[inline]
    fn m(&self) -> usize {
        self.edges.len
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let offsets = self.offsets.get();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.slot_range(v);
        self.targets.get()[range.clone()]
            .iter()
            .copied()
            .zip(self.weights.get()[range].iter().copied())
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        let range = self.slot_range(v);
        self.targets.get()[range.clone()]
            .iter()
            .copied()
            .zip(self.weights.get()[range.clone()].iter().copied())
            .zip(self.slot_eids.get()[range].iter().copied())
            .map(|((t, w), e)| (t, w, e))
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        self.edges.get()
    }
}

/// An owned [`GraphView`] over **delta-compressed** adjacency slabs
/// inside a shared [`SnapshotSource`] — the mapped counterpart of
/// [`crate::compress::CompressedCsr`], serving neighbor iteration by
/// decoding varint gap pairs inline (see [`crate::compress`]).
///
/// Construction runs [`crate::compress::validate_compressed_parts`]:
/// both [`Verify`] levels fully decode-sweep the stream (so the
/// hot-path decoder can neither panic nor read out of bounds), and
/// [`Verify::Deep`] additionally replays the gaps against the canonical
/// edge list. Cloning is an `Arc` bump.
#[derive(Clone)]
pub struct CompressedMmapView {
    /// Keeps the mapped region alive; all slabs point into it.
    src: Arc<SnapshotSource>,
    offsets: Slab<u32>,
    byte_offsets: Slab<u64>,
    data: Slab<u8>,
    weights: Slab<Weight>,
    edges: Slab<Edge>,
}

// SAFETY: the slabs point into `src`, which is immutable and kept alive
// by the Arc field; shared/moved access from any thread only ever reads.
unsafe impl Send for CompressedMmapView {}
unsafe impl Sync for CompressedMmapView {}

impl CompressedMmapView {
    /// Assemble and validate a view over compressed slabs living inside
    /// `src`. All five slices must point into `src.bytes()` (checked);
    /// any structural violation is a typed [`SnapshotError`].
    pub fn from_parts(
        src: Arc<SnapshotSource>,
        offsets: &[u32],
        byte_offsets: &[u64],
        data: &[u8],
        weights: &[Weight],
        edges: &[Edge],
        verify: Verify,
    ) -> Result<CompressedMmapView, SnapshotError> {
        let region = src.bytes().as_ptr_range();
        let inside = |ptr: *const u8, bytes: usize| {
            bytes == 0 || (region.start <= ptr && unsafe { ptr.add(bytes) } <= region.end)
        };
        assert!(
            inside(
                offsets.as_ptr() as *const u8,
                std::mem::size_of_val(offsets)
            ) && inside(
                byte_offsets.as_ptr() as *const u8,
                std::mem::size_of_val(byte_offsets)
            ) && inside(data.as_ptr(), data.len())
                && inside(
                    weights.as_ptr() as *const u8,
                    std::mem::size_of_val(weights)
                )
                && inside(edges.as_ptr() as *const u8, std::mem::size_of_val(edges)),
            "CompressedMmapView slabs must live inside the SnapshotSource that owns them"
        );
        crate::compress::validate_compressed_parts(
            offsets,
            byte_offsets,
            data,
            weights,
            edges,
            verify,
        )?;
        Ok(CompressedMmapView {
            src,
            offsets: Slab::of(offsets),
            byte_offsets: Slab::of(byte_offsets),
            data: Slab::of(data),
            weights: Slab::of(weights),
            edges: Slab::of(edges),
        })
    }

    /// A second view over this view's already-validated gap stream with
    /// substituted weight and edge slabs — how a rounded band shares the
    /// base graph's compressed structure, mirroring
    /// [`MmapView::reweighted`].
    pub fn reweighted(
        &self,
        weights: &[Weight],
        edges: &[Edge],
    ) -> Result<CompressedMmapView, SnapshotError> {
        let region = self.src.bytes().as_ptr_range();
        let inside = |ptr: *const u8, bytes: usize| {
            bytes == 0 || (region.start <= ptr && unsafe { ptr.add(bytes) } <= region.end)
        };
        assert!(
            inside(
                weights.as_ptr() as *const u8,
                std::mem::size_of_val(weights)
            ) && inside(edges.as_ptr() as *const u8, std::mem::size_of_val(edges)),
            "CompressedMmapView slabs must live inside the SnapshotSource that owns them"
        );
        if weights.len() != self.weights.len || edges.len() != self.edges.len {
            return Err(corrupt(
                "compressed shape",
                format_args!(
                    "substituted slabs disagree: {} weights / {} edges, base has {} / {}",
                    weights.len(),
                    edges.len(),
                    self.weights.len,
                    self.edges.len
                ),
            ));
        }
        Ok(CompressedMmapView {
            src: Arc::clone(&self.src),
            offsets: self.offsets.clone(),
            byte_offsets: self.byte_offsets.clone(),
            data: self.data.clone(),
            weights: Slab::of(weights),
            edges: Slab::of(edges),
        })
    }

    /// The source region this view (and possibly others) is backed by.
    pub fn source(&self) -> &Arc<SnapshotSource> {
        &self.src
    }

    /// Borrow as the `Copy` view form.
    #[inline]
    pub fn as_view(&self) -> crate::compress::CompressedView<'_> {
        crate::compress::CompressedView::from_raw(
            self.offsets.get(),
            self.byte_offsets.get(),
            self.data.get(),
            self.weights.get(),
            self.edges.get(),
        )
    }

    /// Bytes of compressed adjacency payload (stream only).
    pub fn data_len(&self) -> usize {
        self.data.len
    }
}

impl fmt::Debug for CompressedMmapView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompressedMmapView")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("stream_bytes", &self.data.len)
            .field("mapped", &self.src.is_mapped())
            .finish()
    }
}

impl GraphView for CompressedMmapView {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len - 1
    }

    #[inline]
    fn m(&self) -> usize {
        self.edges.len
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let offsets = self.offsets.get();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.as_view().neighbors_iter(v)
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        self.as_view().neighbors_with_eid_iter(v)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        self.edges.get()
    }
}

/// The extra-edge (hopset shortcut) adjacency as three slabs inside a
/// shared [`SnapshotSource`] — the zero-copy counterpart of the
/// traversal layer's `ExtraEdges`.
///
/// Construction validates the slabs against the shortcut edge list they
/// claim to index at the caller's [`Verify`] level
/// ([`validate_extra_parts`]): `Bounds` pins shape, monotone offsets,
/// and target ranges; `Deep` replays the `ExtraEdges::from_edges` fill
/// order exactly, so a view that deep-validates iterates bit-identically
/// to the owned structure. Cloning is an `Arc` bump.
#[derive(Clone)]
pub struct ExtraSlabsView {
    /// Keeps the mapped region alive; all slabs point into it.
    src: Arc<SnapshotSource>,
    offsets: Slab<u32>,
    targets: Slab<VertexId>,
    weights: Slab<Weight>,
}

// SAFETY: the slabs point into `src`, which is immutable and kept alive
// by the Arc field; shared/moved access from any thread only ever reads.
unsafe impl Send for ExtraSlabsView {}
unsafe impl Sync for ExtraSlabsView {}

impl ExtraSlabsView {
    /// Assemble and validate a view over extra-edge slabs living inside
    /// `src`, checked against the `edges` shortcut list over `0..n` at
    /// the caller's [`Verify`] level.
    pub fn from_parts(
        src: Arc<SnapshotSource>,
        offsets: &[u32],
        targets: &[VertexId],
        weights: &[Weight],
        n: usize,
        edges: &[Edge],
        verify: Verify,
    ) -> Result<ExtraSlabsView, SnapshotError> {
        let region = src.bytes().as_ptr_range();
        let inside = |ptr: *const u8, bytes: usize| {
            bytes == 0 || (region.start <= ptr && unsafe { ptr.add(bytes) } <= region.end)
        };
        assert!(
            inside(
                offsets.as_ptr() as *const u8,
                std::mem::size_of_val(offsets)
            ) && inside(
                targets.as_ptr() as *const u8,
                std::mem::size_of_val(targets)
            ) && inside(
                weights.as_ptr() as *const u8,
                std::mem::size_of_val(weights)
            ),
            "ExtraSlabsView slabs must live inside the SnapshotSource that owns them"
        );
        validate_extra_parts(offsets, targets, weights, n, edges, verify)?;
        Ok(ExtraSlabsView {
            src,
            offsets: Slab::of(offsets),
            targets: Slab::of(targets),
            weights: Slab::of(weights),
        })
    }

    /// Borrow as the traversal layer's [`ExtraView`](crate::traversal::bellman_ford::ExtraView) (what the hop-limited
    /// relaxation consumes).
    #[inline]
    pub fn view(&self) -> crate::traversal::bellman_ford::ExtraView<'_> {
        crate::traversal::bellman_ford::ExtraView::from_raw(
            self.offsets.get(),
            self.targets.get(),
            self.weights.get(),
        )
    }

    /// Number of vertices covered (`offsets.len() - 1`).
    pub fn n(&self) -> usize {
        self.offsets.len - 1
    }

    /// The source region this view (and possibly others) is backed by.
    pub fn source(&self) -> &Arc<SnapshotSource> {
        &self.src
    }
}

impl fmt::Debug for ExtraSlabsView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtraSlabsView")
            .field("n", &self.n())
            .field("slots", &self.targets.len)
            .finish()
    }
}

/// The structural validation backing [`MmapView::from_parts`]: shape
/// and monotone offsets always; index max-scans at [`Verify::Bounds`];
/// canonical strictly-sorted edges plus an exact replay of the CSR fill
/// sweep over the adjacency slots at [`Verify::Deep`]. Linear in
/// `n + m` either way, but the `Bounds` level is a handful of
/// sequential scans over the two index slabs (weights and edge records
/// untouched), while `Deep` random-accesses every slot and allocates
/// the `n`-entry cursor array.
fn validate_csr_parts(
    offsets: &[u32],
    targets: &[VertexId],
    weights: &[Weight],
    slot_eids: &[u32],
    edges: &[Edge],
    verify: Verify,
) -> Result<(), SnapshotError> {
    if offsets.is_empty() {
        return Err(corrupt(
            "csr offsets",
            "offsets slab needs a trailing total",
        ));
    }
    let n = offsets.len() - 1;
    if n > u32::MAX as usize + 1 {
        return Err(corrupt(
            "vertex count",
            format_args!("{n} vertices exceeds the u32 vertex-id space"),
        ));
    }
    let m = edges.len();
    if m > u32::MAX as usize {
        return Err(corrupt(
            "edge count",
            format_args!("{m} edges exceeds the u32 edge-id space"),
        ));
    }
    let slots = targets.len();
    if slots != 2 * m || weights.len() != slots || slot_eids.len() != slots {
        return Err(corrupt(
            "csr shape",
            format_args!(
                "adjacency slabs disagree: {} targets / {} weights / {} eids for m = {m}",
                targets.len(),
                weights.len(),
                slot_eids.len()
            ),
        ));
    }
    if offsets[0] != 0 {
        return Err(corrupt(
            "csr offsets",
            format_args!("offsets[0] = {}, expected 0", offsets[0]),
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("csr offsets", "offsets are not monotone"));
    }
    if offsets[n] as usize != slots {
        return Err(corrupt(
            "csr offsets",
            format_args!("offsets total {} ≠ {slots} adjacency slots", offsets[n]),
        ));
    }
    if verify == Verify::Bounds {
        // safety only: targets index dist arrays of length n, slot eids
        // index the canonical edge list; the replay below subsumes both
        // checks when it runs
        check_indices_below(targets, n, "csr target")?;
        return check_indices_below(slot_eids, m, "csr edge id");
    }
    let mut prev: Option<(u32, u32)> = None;
    for (i, e) in edges.iter().enumerate() {
        if e.u as usize >= n || e.v as usize >= n {
            return Err(corrupt(
                "edge endpoint",
                format_args!("edge {i} = ({}, {}) out of range for n = {n}", e.u, e.v),
            ));
        }
        if e.u >= e.v {
            return Err(corrupt(
                "edge",
                format_args!("edge {i} = ({}, {}) is not canonical (u < v)", e.u, e.v),
            ));
        }
        if e.w == 0 {
            return Err(corrupt(
                "edge weight",
                format_args!("edge {i} = ({}, {}) has zero weight", e.u, e.v),
            ));
        }
        if let Some(p) = prev {
            if p >= (e.u, e.v) {
                return Err(corrupt(
                    "edge order",
                    format_args!(
                        "edge {i} = ({}, {}) duplicates or precedes ({}, {})",
                        e.u, e.v, p.0, p.1
                    ),
                ));
            }
        }
        prev = Some((e.u, e.v));
    }
    // Replay the CSR fill sweep. Each edge claims the next free slot of
    // both endpoints; total claims (2m) equal total capacity, so if
    // every claim stays within its vertex's range, every range is
    // exactly filled — no separate exhaustion pass needed.
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (eid, e) in edges.iter().enumerate() {
        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
            let c = cursor[a as usize] as usize;
            if c >= offsets[a as usize + 1] as usize
                || targets[c] != b
                || weights[c] != e.w
                || slot_eids[c] != eid as u32
            {
                return Err(corrupt(
                    "csr adjacency",
                    format_args!(
                        "adjacency slots do not replay the canonical fill sweep at edge \
                         {eid} = ({}, {})",
                        e.u, e.v
                    ),
                ));
            }
            cursor[a as usize] += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;
    use crate::io::KIND_GRAPH;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let base = generators::connected_random(60, 140, &mut rng);
        generators::with_uniform_weights(&base, 1, 50, &mut rng)
    }

    /// Emit a minimal v2 graph file: the five CSR slabs plus a META
    /// section carrying n and m.
    fn v2_graph_file(g: &CsrGraph) -> Vec<u8> {
        let slabs = encode_csr_slabs(g.n(), g.edges());
        let mut w = SectionWriter::new(KIND_GRAPH);
        let mut meta = Vec::new();
        meta.extend_from_slice(&(g.n() as u64).to_le_bytes());
        meta.extend_from_slice(&(g.m() as u64).to_le_bytes());
        w.section(SEC_META, meta);
        w.section(SEC_GRAPH_OFFSETS, slabs.offsets);
        w.section(SEC_GRAPH_TARGETS, slabs.targets);
        w.section(SEC_GRAPH_WEIGHTS, slabs.weights);
        w.section(SEC_GRAPH_EIDS, slabs.slot_eids);
        w.section(SEC_GRAPH_EDGES, slabs.edges);
        w.finish()
    }

    fn view_at(src: &Arc<SnapshotSource>, verify: Verify) -> Result<MmapView, SnapshotError> {
        let bytes = src.bytes();
        let table = SectionTable::parse(bytes)?;
        let offsets = cast_u32s(
            table.require(bytes, SEC_GRAPH_OFFSETS, "offsets")?,
            "offsets",
        )?;
        let targets = cast_u32s(
            table.require(bytes, SEC_GRAPH_TARGETS, "targets")?,
            "targets",
        )?;
        let weights = cast_u64s(
            table.require(bytes, SEC_GRAPH_WEIGHTS, "weights")?,
            "weights",
        )?;
        let eids = cast_u32s(table.require(bytes, SEC_GRAPH_EIDS, "eids")?, "eids")?;
        let edges = cast_edges(table.require(bytes, SEC_GRAPH_EDGES, "edges")?, "edges")?;
        MmapView::from_parts(
            Arc::clone(src),
            offsets,
            targets,
            weights,
            eids,
            edges,
            verify,
        )
    }

    fn view_of(src: &Arc<SnapshotSource>) -> Result<MmapView, SnapshotError> {
        view_at(src, Verify::Deep)
    }

    #[test]
    fn mapped_view_iterates_identically_to_the_owned_graph() {
        let g = sample_graph();
        let src = Arc::new(SnapshotSource::from_bytes(&v2_graph_file(&g)));
        let view = view_of(&src).unwrap();
        assert_eq!(view.n(), g.n());
        assert_eq!(view.m(), g.m());
        assert_eq!(view.edges(), g.edges());
        assert_eq!(view.is_unit_weight(), g.is_unit_weight());
        assert_eq!(view.total_weight(), GraphView::total_weight(&g));
        for v in 0..g.n() as u32 {
            assert_eq!(view.degree(v), g.degree(v));
            assert_eq!(
                view.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>()
            );
            assert_eq!(
                view.neighbors_with_eid(v).collect::<Vec<_>>(),
                g.neighbors_with_eid(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(view.as_view().to_graph(), g);
    }

    #[test]
    fn verify_levels_split_safety_from_identity() {
        let g = sample_graph();
        let mut bytes = v2_graph_file(&g);
        let targets_at = {
            let table = SectionTable::parse(&bytes).unwrap();
            table
                .entries()
                .iter()
                .find(|e| e.tag == SEC_GRAPH_TARGETS)
                .unwrap()
                .offset
        };

        // valid bytes pass both levels and iterate identically
        let src = Arc::new(SnapshotSource::from_bytes(&bytes));
        for verify in [Verify::Bounds, Verify::Deep] {
            let view = view_at(&src, verify).unwrap();
            assert_eq!(view.edges(), g.edges(), "{verify:?}");
        }

        // swapping two in-bounds targets keeps every index valid —
        // Bounds serves it (safely, wrongly), Deep rejects it
        assert_ne!(
            &bytes[targets_at..targets_at + 4],
            &bytes[targets_at + 4..targets_at + 8],
            "fixture needs two distinct leading targets"
        );
        let mut swapped = bytes.clone();
        for i in 0..4 {
            swapped.swap(targets_at + i, targets_at + 4 + i);
        }
        let src = Arc::new(SnapshotSource::from_bytes(&swapped));
        assert!(view_at(&src, Verify::Bounds).is_ok());
        assert!(matches!(
            view_at(&src, Verify::Deep),
            Err(SnapshotError::Corrupt { .. })
        ));

        // an out-of-range target is rejected at both levels
        bytes[targets_at..targets_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let src = Arc::new(SnapshotSource::from_bytes(&bytes));
        for verify in [Verify::Bounds, Verify::Deep] {
            assert!(
                matches!(view_at(&src, verify), Err(SnapshotError::Corrupt { .. })),
                "{verify:?}"
            );
        }
    }

    #[test]
    fn reweighted_views_share_structure_and_check_shape() {
        let g = sample_graph();
        let bytes = v2_graph_file(&g);
        let src = Arc::new(SnapshotSource::from_bytes(&bytes));
        let view = view_of(&src).unwrap();
        let table = SectionTable::parse(src.bytes()).unwrap();
        let weights = cast_u64s(
            table
                .require(src.bytes(), SEC_GRAPH_WEIGHTS, "weights")
                .unwrap(),
            "weights",
        )
        .unwrap();
        // substituting the view's own slabs is the identity
        let again = view.reweighted(weights, view.edges()).unwrap();
        assert_eq!(again.edges(), g.edges());
        for v in 0..g.n() as u32 {
            assert_eq!(
                again.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>()
            );
        }
        // wrong-length substitutes are a typed error
        assert!(matches!(
            view.reweighted(&weights[1..], view.edges()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = CsrGraph::from_edges(5, std::iter::empty());
        let src = Arc::new(SnapshotSource::from_bytes(&v2_graph_file(&g)));
        let view = view_of(&src).unwrap();
        assert_eq!(view.n(), 5);
        assert_eq!(view.m(), 0);
        assert_eq!(view.neighbors(3).count(), 0);
    }

    #[test]
    fn sections_obey_the_alignment_rules() {
        let g = sample_graph();
        let bytes = v2_graph_file(&g);
        let table = SectionTable::parse(&bytes).unwrap();
        assert_eq!(table.kind(), KIND_GRAPH);
        assert_eq!(table.entries().len(), 6);
        let first = table.entries().iter().map(|e| e.offset).min().unwrap();
        assert_eq!(first % V2_PAGE_ALIGN, 0, "data region starts on a page");
        for e in table.entries() {
            assert_eq!(e.offset % V2_SECTION_ALIGN, 0, "tag {:#x}", e.tag);
        }
    }

    #[test]
    fn source_open_modes_agree_with_the_in_memory_bytes() {
        let g = sample_graph();
        let bytes = v2_graph_file(&g);
        let path = std::env::temp_dir().join(format!(
            "psh-source-test-{}-{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, &bytes).unwrap();
        for mode in [LoadMode::Mmap, LoadMode::Read] {
            let src = SnapshotSource::open(&path, mode).unwrap();
            assert_eq!(src.bytes(), &bytes[..], "{mode:?}");
            assert_eq!(src.len(), bytes.len());
            assert_eq!(
                src.is_mapped(),
                mode == LoadMode::Mmap && cfg!(target_os = "linux")
            );
            assert_eq!(src.bytes().as_ptr() as usize % V2_PAGE_ALIGN, 0);
            let view = view_of(&Arc::new(src)).unwrap();
            assert_eq!(view.edges(), g.edges());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_source_is_valid_and_rejected_as_a_snapshot() {
        let src = SnapshotSource::from_bytes(&[]);
        assert!(src.is_empty());
        assert!(matches!(
            SectionTable::parse(src.bytes()),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn header_violations_are_typed_errors() {
        let g = generators::path(4);
        let good = v2_graph_file(&g);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            SectionTable::parse(&bad_magic),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut v1 = good.clone();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert!(matches!(
            SectionTable::parse(&v1),
            Err(SnapshotError::UnsupportedVersion { found: 1, .. })
        ));

        let mut short_len = good.clone();
        short_len[8..16].copy_from_slice(&((good.len() as u64) - 1).to_le_bytes());
        assert!(matches!(
            SectionTable::parse(&short_len),
            Err(SnapshotError::Corrupt { .. })
        ));

        // absurd section count must fail fast without allocating
        let mut huge = good.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SectionTable::parse(&huge),
            Err(SnapshotError::Corrupt { .. })
        ));

        for cut in 0..V2_HEADER_BYTES {
            assert!(matches!(
                SectionTable::parse(&good[..cut]),
                Err(SnapshotError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn directory_violations_are_typed_errors() {
        let g = generators::path(4);
        let good = v2_graph_file(&g);
        let entry = |i: usize| V2_HEADER_BYTES + i * V2_DIR_ENTRY_BYTES;

        // reserved field must be zero
        let mut reserved = good.clone();
        reserved[entry(0) + 4] = 1;
        assert!(matches!(
            SectionTable::parse(&reserved),
            Err(SnapshotError::Corrupt { .. })
        ));

        // misaligned section offset
        let mut misaligned = good.clone();
        let off = u64::from_le_bytes(misaligned[entry(1) + 8..entry(1) + 16].try_into().unwrap());
        misaligned[entry(1) + 8..entry(1) + 16].copy_from_slice(&(off + 1).to_le_bytes());
        assert!(matches!(
            SectionTable::parse(&misaligned),
            Err(SnapshotError::Corrupt { .. })
        ));

        // oversized length escaping the file
        let mut oversized = good.clone();
        oversized[entry(2) + 16..entry(2) + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SectionTable::parse(&oversized),
            Err(SnapshotError::Corrupt { .. })
        ));

        // overlapping sections: point entry 1 at entry 0's offset
        let mut overlap = good.clone();
        let off0 = good[entry(0) + 8..entry(0) + 16].to_vec();
        overlap[entry(1) + 8..entry(1) + 16].copy_from_slice(&off0);
        assert!(matches!(
            SectionTable::parse(&overlap),
            Err(SnapshotError::Corrupt { .. })
        ));

        // duplicate tag
        let mut dup = good.clone();
        let tag0 = good[entry(0)..entry(0) + 4].to_vec();
        dup[entry(1)..entry(1) + 4].copy_from_slice(&tag0);
        assert!(matches!(
            SectionTable::parse(&dup),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn tampered_slabs_fail_the_sweep_validation() {
        let g = sample_graph();
        let good = v2_graph_file(&g);
        let table = SectionTable::parse(&good).unwrap();
        // flip one byte inside every adjacency slab; each must be caught
        for tag in [
            SEC_GRAPH_OFFSETS,
            SEC_GRAPH_TARGETS,
            SEC_GRAPH_WEIGHTS,
            SEC_GRAPH_EIDS,
            SEC_GRAPH_EDGES,
        ] {
            let e = table.find(tag).unwrap();
            let mut bad = good.clone();
            bad[e.offset] ^= 0x01;
            let src = Arc::new(SnapshotSource::from_bytes(&bad));
            assert!(
                matches!(view_of(&src), Err(SnapshotError::Corrupt { .. })),
                "tag {tag:#x} tamper undetected"
            );
        }
    }

    #[test]
    fn cast_helpers_check_shape_and_alignment() {
        assert!(matches!(
            cast_u64s(&[0u8; 12], "x"),
            Err(SnapshotError::Corrupt { .. })
        ));
        assert!(matches!(
            cast_edges(&[0u8; 8], "x"),
            Err(SnapshotError::Corrupt { .. })
        ));
        let buf = [0u8; 64];
        // deliberately misaligned view into an aligned buffer
        let off = (buf.as_ptr() as usize).wrapping_neg() % 8 + 1;
        assert!(matches!(
            cast_u64s(&buf[off..off + 8], "x"),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn views_keep_the_source_alive() {
        let g = sample_graph();
        let src = Arc::new(SnapshotSource::from_bytes(&v2_graph_file(&g)));
        let view = view_of(&src).unwrap();
        drop(src); // the view's Arc clone must keep the bytes valid
        assert_eq!(view.edges().len(), g.m());
        let clone = view.clone();
        drop(view);
        assert_eq!(clone.edges().len(), g.m());
    }
}
