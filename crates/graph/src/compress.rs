//! Delta-compressed CSR adjacency: sorted neighbor lists stored as
//! varint gaps, decoded inline by a zero-alloc iterator.
//!
//! # Why it works
//!
//! The canonical CSR fill sweep (see [`crate::CsrGraph`]) visits edges in
//! sorted `(u, v)` order and appends to both endpoints' adjacency
//! cursors, so within every vertex's slot range **both** the neighbor ids
//! and the canonical edge ids are strictly increasing. Strictly
//! increasing `u32` sequences delta-encode losslessly: store the first
//! value raw and every successor as the gap to its predecessor, each as
//! an LEB128 varint. Neighbor ids in a graph with good locality are
//! mostly small gaps — one or two bytes instead of four — and edge ids
//! gain the same way, so the two hottest slabs of a mapped oracle
//! (`targets` + `slot_eids`, 16 bytes per edge between them) shrink to a
//! single byte stream, typically 3–6 bytes per edge.
//!
//! # Layout
//!
//! Two parts replace the `targets` and `slot_eids` slabs:
//!
//! ```text
//! byte_offsets : (n + 1) × u64   per-vertex byte ranges into `data`
//! data         : byte stream     per vertex, degree(v) pairs of
//!                                (target varint, eid varint); the first
//!                                pair holds raw values, later pairs hold
//!                                gaps (≥ 1) to the previous pair
//! ```
//!
//! The plain `offsets` (degrees and weight-slab indexing), `weights`
//! (substituted per rounding band by the oracle layer), and canonical
//! `edges` (the [`GraphView::edges`] contract) slabs stay uncompressed.
//!
//! # Trust model
//!
//! [`validate_compressed_parts`] runs a full decode sweep at *every*
//! [`Verify`] level: each varint terminates inside its vertex's byte
//! range, accumulated targets stay below `n` (a gap overflowing the
//! `u32` id space lands here), eids stay below `m`, both sequences are
//! strictly increasing, and every byte range is consumed exactly. After
//! `Ok`, the hot-path decoder — plain slice indexing, no unsafe — can
//! neither panic nor read out of bounds. [`Verify::Deep`] additionally
//! replays the canonical fill sweep from the edge list and rejects any
//! in-bounds deviation of targets, eids, or weights, exactly like the
//! plain-slab deep check.

use crate::csr::{Edge, VertexId, Weight};
use crate::io::SnapshotError;
use crate::source::Verify;
use crate::view::GraphView;
use std::fmt;

fn corrupt(what: &'static str, detail: impl fmt::Display) -> SnapshotError {
    SnapshotError::Corrupt {
        what,
        detail: detail.to_string(),
    }
}

/// Append `value` to `out` as an LEB128 varint (7 bits per byte, high
/// bit = continuation).
#[inline]
pub fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint starting at `pos`. Hot-path form: assumes a
/// validated stream (every varint terminates in bounds), panics on a
/// malformed one rather than reading out of bounds. Most gaps fit one
/// byte, so that case is branched to directly; the loop lives in an
/// outlined helper to keep the common path tight.
#[inline]
fn read_varint(data: &[u8], pos: usize) -> (u64, usize) {
    let byte = data[pos];
    if byte & 0x80 == 0 {
        (byte as u64, pos + 1)
    } else {
        read_varint_multi(data, pos, byte)
    }
}

fn read_varint_multi(data: &[u8], mut pos: usize, first: u8) -> (u64, usize) {
    let mut value = (first & 0x7f) as u64;
    let mut shift = 7u32;
    pos += 1;
    loop {
        let byte = data[pos];
        pos += 1;
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return (value, pos);
        }
        shift += 7;
    }
}

/// Checked decode for validation: `None` when the varint runs past
/// `end` or is longer than any encoded `u64` can be.
#[inline]
fn try_read_varint(data: &[u8], mut pos: usize, end: usize) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if pos >= end || shift >= 64 {
            return None;
        }
        let byte = data[pos];
        pos += 1;
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((value, pos));
        }
        shift += 7;
    }
}

/// Delta-compress the adjacency derived from a canonical edge list:
/// returns `(byte_offsets, data)` as described in the module docs. This
/// is the snapshot writer's path — it replays the same fill sweep CSR
/// construction uses, so the stream matches what
/// [`CompressedCsr::from_view`] produces for the built graph.
pub fn delta_compress_edges(n: usize, edges: &[Edge]) -> (Vec<u64>, Vec<u8>) {
    let mut degree = vec![0u32; n];
    for e in edges {
        degree[e.u as usize] += 1;
        degree[e.v as usize] += 1;
    }
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let slots = offsets[n] as usize;
    let mut targets = vec![0u32; slots];
    let mut eids = vec![0u32; slots];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (eid, e) in edges.iter().enumerate() {
        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
            let c = cursor[a as usize] as usize;
            targets[c] = b;
            eids[c] = eid as u32;
            cursor[a as usize] += 1;
        }
    }
    encode_stream(n, &offsets, &targets, &eids)
}

/// Encode per-vertex `(target, eid)` gap pairs from plain slabs.
fn encode_stream(n: usize, offsets: &[u32], targets: &[u32], eids: &[u32]) -> (Vec<u64>, Vec<u8>) {
    let mut byte_offsets = Vec::with_capacity(n + 1);
    // most gaps fit a byte or two; 3 bytes per slot rarely reallocates
    let mut data = Vec::with_capacity(targets.len().saturating_mul(3));
    byte_offsets.push(0u64);
    for v in 0..n {
        let range = offsets[v] as usize..offsets[v + 1] as usize;
        let mut prev: Option<(u32, u32)> = None;
        for (&t, &e) in targets[range.clone()].iter().zip(&eids[range]) {
            match prev {
                None => {
                    write_varint(t as u64, &mut data);
                    write_varint(e as u64, &mut data);
                }
                Some((pt, pe)) => {
                    debug_assert!(t > pt && e > pe, "adjacency not strictly increasing");
                    write_varint((t - pt) as u64, &mut data);
                    write_varint((e - pe) as u64, &mut data);
                }
            }
            prev = Some((t, e));
        }
        byte_offsets.push(data.len() as u64);
    }
    (byte_offsets, data)
}

/// Inline decoder over one vertex's gap stream: yields
/// `(neighbor, canonical_edge_id)` pairs in adjacency order without
/// allocating. Construction is two slice reads; each `next()` is two
/// varint decodes and two adds.
#[derive(Clone, Copy)]
pub struct GapPairs<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    target: u32,
    eid: u32,
}

impl<'a> GapPairs<'a> {
    /// Decode `count` pairs starting at `pos` in `data`. The range must
    /// come from a validated compressed view.
    #[inline]
    fn new(data: &'a [u8], pos: usize, count: usize) -> GapPairs<'a> {
        // A raw first pair is just a gap from an implicit (0, 0)
        // predecessor, so the accumulators start there and `next()`
        // needs no first-pair branch.
        GapPairs {
            data,
            pos,
            remaining: count,
            target: 0,
            eid: 0,
        }
    }
}

impl<'a> Iterator for GapPairs<'a> {
    type Item = (VertexId, u32);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, u32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (t, pos) = read_varint(self.data, self.pos);
        let (e, pos) = read_varint(self.data, pos);
        self.pos = pos;
        self.target = self.target.wrapping_add(t as u32);
        self.eid = self.eid.wrapping_add(e as u32);
        Some((self.target, self.eid))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for GapPairs<'_> {}

/// Step over one varint without building its value — the
/// neighbor-only iteration path pays for the target decode but not the
/// eid it is about to drop.
#[inline]
fn skip_varint(data: &[u8], mut pos: usize) -> usize {
    while data[pos] & 0x80 != 0 {
        pos += 1;
    }
    pos + 1
}

/// Inline decoder over one vertex's gap stream yielding neighbor ids
/// only: the eid varint of each pair is skipped, not decoded. This is
/// the `(neighbor, weight)` iteration engine — shortest-path inner
/// loops never look at edge ids.
#[derive(Clone, Copy)]
pub struct GapTargets<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    target: u32,
}

impl<'a> Iterator for GapTargets<'a> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (t, pos) = read_varint(self.data, self.pos);
        self.pos = skip_varint(self.data, pos);
        self.target = self.target.wrapping_add(t as u32);
        Some(self.target)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for GapTargets<'_> {}

/// A borrowed delta-compressed CSR graph: five slices into someone
/// else's storage (a [`CompressedCsr`], a mapped snapshot, an arena).
/// `Copy`, like [`crate::CsrView`]; iterates in exactly the canonical
/// adjacency order, so artifacts built through it are byte-identical to
/// artifacts built on the plain representation — pinned by the
/// round-trip proptest here and the `compressed_equivalence` suite.
#[derive(Clone, Copy, Debug)]
pub struct CompressedView<'a> {
    /// `offsets[v]..offsets[v+1]` indexes the weight slab (and counts
    /// the pairs encoded for `v`).
    offsets: &'a [u32],
    /// `byte_offsets[v]..byte_offsets[v+1]` brackets `v`'s gap stream.
    byte_offsets: &'a [u64],
    data: &'a [u8],
    weights: &'a [Weight],
    edges: &'a [Edge],
}

impl<'a> CompressedView<'a> {
    /// Assemble a view from raw parts. Debug-asserts shape agreement;
    /// full validation is [`validate_compressed_parts`] (mapped paths
    /// run it before handing out slices).
    pub fn from_raw(
        offsets: &'a [u32],
        byte_offsets: &'a [u64],
        data: &'a [u8],
        weights: &'a [Weight],
        edges: &'a [Edge],
    ) -> CompressedView<'a> {
        assert!(!offsets.is_empty(), "offsets needs a trailing total");
        debug_assert_eq!(offsets.len(), byte_offsets.len());
        debug_assert_eq!(*offsets.last().unwrap() as usize, weights.len());
        debug_assert_eq!(*byte_offsets.last().unwrap() as usize, data.len());
        CompressedView {
            offsets,
            byte_offsets,
            data,
            weights,
            edges,
        }
    }

    /// The `(neighbor, eid)` gap decoder for `v`.
    #[inline]
    pub fn pairs(self, v: VertexId) -> GapPairs<'a> {
        let count = (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize;
        GapPairs::new(self.data, self.byte_offsets[v as usize] as usize, count)
    }

    #[inline]
    fn weight_slots(self, v: VertexId) -> &'a [Weight] {
        &self.weights[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The neighbor-id-only gap decoder for `v` (eids skipped, not
    /// decoded).
    #[inline]
    pub fn targets(self, v: VertexId) -> GapTargets<'a> {
        let count = (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize;
        GapTargets {
            data: self.data,
            pos: self.byte_offsets[v as usize] as usize,
            remaining: count,
            target: 0,
        }
    }

    /// `(neighbor, weight)` iteration with the full slice lifetime (the
    /// [`GraphView`] impls borrow this).
    #[inline]
    pub fn neighbors_iter(self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + 'a {
        self.targets(v).zip(self.weight_slots(v).iter().copied())
    }

    /// `(neighbor, weight, eid)` iteration with the full slice lifetime.
    #[inline]
    pub fn neighbors_with_eid_iter(
        self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + 'a {
        self.pairs(v)
            .zip(self.weight_slots(v).iter().copied())
            .map(|((t, e), w)| (t, w, e))
    }

    /// Bytes of compressed adjacency payload (stream only).
    pub fn data_len(self) -> usize {
        self.data.len()
    }
}

impl GraphView for CompressedView<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn m(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors_iter(v)
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        self.neighbors_with_eid_iter(v)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        self.edges
    }
}

/// An owned delta-compressed CSR graph — [`crate::CsrGraph`] with the
/// `targets`/`slot_eids` slabs replaced by the gap stream. Built from
/// any [`GraphView`]; iterates identically to its source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedCsr {
    offsets: Vec<u32>,
    byte_offsets: Vec<u64>,
    data: Vec<u8>,
    weights: Vec<Weight>,
    edges: Vec<Edge>,
}

impl CompressedCsr {
    /// Compress the adjacency of `g`.
    pub fn from_view<G: GraphView>(g: &G) -> CompressedCsr {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut weights = Vec::with_capacity(2 * g.m());
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::with_capacity(2 * g.m().saturating_mul(3));
        offsets.push(0u32);
        byte_offsets.push(0u64);
        for v in 0..n as u32 {
            let mut prev: Option<(u32, u32)> = None;
            for (t, w, e) in g.neighbors_with_eid(v) {
                match prev {
                    None => {
                        write_varint(t as u64, &mut data);
                        write_varint(e as u64, &mut data);
                    }
                    Some((pt, pe)) => {
                        debug_assert!(t > pt && e > pe, "adjacency not strictly increasing");
                        write_varint((t - pt) as u64, &mut data);
                        write_varint((e - pe) as u64, &mut data);
                    }
                }
                prev = Some((t, e));
                weights.push(w);
            }
            offsets.push(weights.len() as u32);
            byte_offsets.push(data.len() as u64);
        }
        CompressedCsr {
            offsets,
            byte_offsets,
            data,
            weights,
            edges: g.edges().to_vec(),
        }
    }

    /// Borrow as the `Copy` view form.
    #[inline]
    pub fn as_view(&self) -> CompressedView<'_> {
        CompressedView {
            offsets: &self.offsets,
            byte_offsets: &self.byte_offsets,
            data: &self.data,
            weights: &self.weights,
            edges: &self.edges,
        }
    }

    /// Bytes of the compressed adjacency representation
    /// (stream + byte offsets) — what replaces the plain
    /// `targets + slot_eids` slabs (`16 · m` bytes).
    pub fn compressed_adjacency_bytes(&self) -> usize {
        self.data.len() + self.byte_offsets.len() * 8
    }

    /// Total heap bytes of this representation (all five parts).
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + self.byte_offsets.len() * 8
            + self.offsets.len() * 4
            + self.weights.len() * 8
            + self.edges.len() * 16
    }
}

impl GraphView for CompressedCsr {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn m(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.as_view().neighbors_iter(v)
    }

    #[inline]
    fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        self.as_view().neighbors_with_eid_iter(v)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        &self.edges
    }
}

/// The structural validation behind every mapped compressed view. Both
/// [`Verify`] levels run the full decode sweep (that is what makes the
/// panic-free hot-path decoder sound); [`Verify::Deep`] additionally
/// pins the decoded content — and the weight slab — to the canonical
/// edge list via the exact CSR fill-sweep replay.
pub fn validate_compressed_parts(
    offsets: &[u32],
    byte_offsets: &[u64],
    data: &[u8],
    weights: &[Weight],
    edges: &[Edge],
    verify: Verify,
) -> Result<(), SnapshotError> {
    if offsets.is_empty() {
        return Err(corrupt(
            "compressed offsets",
            "offsets slab needs a trailing total",
        ));
    }
    let n = offsets.len() - 1;
    if n > u32::MAX as usize + 1 {
        return Err(corrupt(
            "vertex count",
            format_args!("{n} vertices exceeds the u32 vertex-id space"),
        ));
    }
    let m = edges.len();
    if m > u32::MAX as usize {
        return Err(corrupt(
            "edge count",
            format_args!("{m} edges exceeds the u32 edge-id space"),
        ));
    }
    let slots = weights.len();
    if slots != 2 * m {
        return Err(corrupt(
            "compressed shape",
            format_args!("{slots} weight slots for m = {m}"),
        ));
    }
    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt(
            "compressed offsets",
            "offsets are not monotone from 0",
        ));
    }
    if offsets[n] as usize != slots {
        return Err(corrupt(
            "compressed offsets",
            format_args!("offsets total {} ≠ {slots} adjacency slots", offsets[n]),
        ));
    }
    if byte_offsets.len() != n + 1 {
        return Err(corrupt(
            "compressed byte offsets",
            format_args!("{} byte offsets for n = {n}", byte_offsets.len()),
        ));
    }
    if byte_offsets[0] != 0 || byte_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt(
            "compressed byte offsets",
            "byte offsets are not monotone from 0",
        ));
    }
    if byte_offsets[n] != data.len() as u64 {
        return Err(corrupt(
            "compressed byte offsets",
            format_args!(
                "byte offsets end at {} but the stream holds {} bytes",
                byte_offsets[n],
                data.len()
            ),
        ));
    }
    // Full decode sweep: after this, GapPairs over any vertex touches
    // only bytes inside the stream and yields strictly increasing
    // in-range ids — the hot path cannot panic.
    let deep = verify == Verify::Deep;
    let mut decoded: Vec<(u32, u32)> = if deep {
        Vec::with_capacity(slots)
    } else {
        Vec::new()
    };
    for v in 0..n {
        let count = (offsets[v + 1] - offsets[v]) as usize;
        let mut pos = byte_offsets[v] as usize;
        let end = byte_offsets[v + 1] as usize;
        let mut prev: Option<(u64, u64)> = None;
        for i in 0..count {
            let Some((tg, p)) = try_read_varint(data, pos, end) else {
                return Err(corrupt(
                    "compressed stream",
                    format_args!("vertex {v}: truncated varint in pair {i}"),
                ));
            };
            let Some((eg, p)) = try_read_varint(data, p, end) else {
                return Err(corrupt(
                    "compressed stream",
                    format_args!("vertex {v}: truncated varint in pair {i}"),
                ));
            };
            pos = p;
            let (t, e) = match prev {
                None => (tg, eg),
                Some((pt, pe)) => {
                    if tg == 0 || eg == 0 {
                        return Err(corrupt(
                            "compressed stream",
                            format_args!("vertex {v}: zero gap in pair {i}"),
                        ));
                    }
                    (pt.saturating_add(tg), pe.saturating_add(eg))
                }
            };
            if t >= n as u64 {
                return Err(corrupt(
                    "compressed target",
                    format_args!("vertex {v}: decoded neighbor {t} out of range for n = {n}"),
                ));
            }
            if e >= m as u64 {
                return Err(corrupt(
                    "compressed edge id",
                    format_args!("vertex {v}: decoded edge id {e} out of range for m = {m}"),
                ));
            }
            prev = Some((t, e));
            if deep {
                decoded.push((t as u32, e as u32));
            }
        }
        if pos != end {
            return Err(corrupt(
                "compressed stream",
                format_args!(
                    "vertex {v}: {} stream bytes left after {count} pairs",
                    end - pos
                ),
            ));
        }
    }
    if !deep {
        return Ok(());
    }
    // Deep: canonical edge rules, then replay the fill sweep against the
    // decoded pairs and the weight slab.
    let mut prev_edge: Option<(u32, u32)> = None;
    for (i, e) in edges.iter().enumerate() {
        if e.u as usize >= n || e.v as usize >= n || e.u >= e.v || e.w == 0 {
            return Err(corrupt(
                "edge",
                format_args!(
                    "edge {i} = ({}, {}, w {}) violates canonical rules for n = {n}",
                    e.u, e.v, e.w
                ),
            ));
        }
        if let Some(p) = prev_edge {
            if p >= (e.u, e.v) {
                return Err(corrupt(
                    "edge order",
                    format_args!(
                        "edge {i} = ({}, {}) duplicates or precedes ({}, {})",
                        e.u, e.v, p.0, p.1
                    ),
                ));
            }
        }
        prev_edge = Some((e.u, e.v));
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (eid, e) in edges.iter().enumerate() {
        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
            let c = cursor[a as usize] as usize;
            if c >= offsets[a as usize + 1] as usize
                || decoded[c] != (b, eid as u32)
                || weights[c] != e.w
            {
                return Err(corrupt(
                    "compressed adjacency",
                    format_args!(
                        "gap stream does not replay the canonical fill sweep at edge \
                         {eid} = ({}, {})",
                        e.u, e.v
                    ),
                ));
            }
            cursor[a as usize] += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph(seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::connected_random(80, 220, &mut rng);
        generators::with_uniform_weights(&base, 1, 60, &mut rng)
    }

    fn assert_iterates_identically<G: GraphView>(c: &CompressedCsr, g: &G) {
        assert_eq!(c.n(), g.n());
        assert_eq!(c.m(), g.m());
        assert_eq!(GraphView::edges(c), g.edges());
        for v in 0..g.n() as u32 {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(
                c.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>()
            );
            assert_eq!(
                c.neighbors_with_eid(v).collect::<Vec<_>>(),
                g.neighbors_with_eid(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn compressed_view_iterates_identically_to_the_plain_graph() {
        let g = sample_graph(11);
        let c = CompressedCsr::from_view(&g);
        assert_iterates_identically(&c, &g);
        assert!(
            c.compressed_adjacency_bytes() < 16 * g.m(),
            "gap stream should beat the 16m-byte plain slabs"
        );
        // the borrowed form behaves the same
        let v = c.as_view();
        assert_eq!(
            v.neighbors_iter(3).collect::<Vec<_>>(),
            g.neighbors(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn writer_path_matches_the_view_path() {
        let g = sample_graph(12);
        let c = CompressedCsr::from_view(&g);
        let (byte_offsets, data) = delta_compress_edges(g.n(), g.edges());
        assert_eq!(byte_offsets, c.byte_offsets);
        assert_eq!(data, c.data);
        validate_compressed_parts(
            &c.offsets,
            &byte_offsets,
            &data,
            &c.weights,
            &c.edges,
            Verify::Deep,
        )
        .unwrap();
    }

    #[test]
    fn validation_rejects_tampered_streams_with_typed_errors() {
        let g = sample_graph(13);
        let c = CompressedCsr::from_view(&g);
        let check = |offsets: &[u32], bo: &[u64], data: &[u8], verify: Verify| {
            validate_compressed_parts(offsets, bo, data, &c.weights, &c.edges, verify)
        };
        for verify in [Verify::Bounds, Verify::Deep] {
            check(&c.offsets, &c.byte_offsets, &c.data, verify).unwrap();

            // truncated varint: set a continuation bit on the last byte
            let mut data = c.data.clone();
            *data.last_mut().unwrap() |= 0x80;
            assert!(matches!(
                check(&c.offsets, &c.byte_offsets, &data, verify),
                Err(SnapshotError::Corrupt { .. })
            ));

            // gap overflowing the vertex-id space: splice a huge varint
            // in place of the first vertex's first target
            let mut data = c.data.clone();
            data[0] = 0xff; // becomes a multi-byte varint eating the next pair
            let r = check(&c.offsets, &c.byte_offsets, &data, verify);
            assert!(matches!(r, Err(SnapshotError::Corrupt { .. })), "{r:?}");

            // byte offset past the stream end
            let mut bo = c.byte_offsets.clone();
            let last = bo.len() - 1;
            bo[last] = c.data.len() as u64 + 9;
            assert!(matches!(
                check(&c.offsets, &bo, &c.data, verify),
                Err(SnapshotError::Corrupt { .. })
            ));
        }
        // byte offsets that stop being monotone are a typed error before
        // any decode is attempted
        let path = generators::path(4);
        let pc = CompressedCsr::from_view(&path);
        let mut bo = pc.byte_offsets.clone();
        bo.swap(1, 2);
        assert!(matches!(
            validate_compressed_parts(
                &pc.offsets,
                &bo,
                &pc.data,
                &pc.weights,
                &pc.edges,
                Verify::Bounds
            ),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_round_trip_matches_plain_csr(
            raw in proptest::collection::vec((0u32..60, 0u32..60, 1u64..1000), 0..300)
        ) {
            let g = CsrGraph::from_edges(
                60,
                raw.iter().map(|&(u, v, w)| crate::csr::Edge::new(u, v, w)),
            );
            let c = CompressedCsr::from_view(&g);
            assert_iterates_identically(&c, &g);
            validate_compressed_parts(
                &c.offsets, &c.byte_offsets, &c.data, &c.weights, &c.edges, Verify::Deep,
            ).unwrap();
        }
    }
}
