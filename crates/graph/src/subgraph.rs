//! Induced subgraphs and the materializing cluster split.
//!
//! Algorithm 4 (`HopSet`) recurses on each cluster of a decomposition "in
//! parallel". The natural substrate operation is: given a dense labeling of
//! the vertices, produce all `k` induced subgraphs `G[X_i]` at once, each
//! with a relabeled compact vertex set and a mapping back to the parent
//! graph. Edges with endpoints in different clusters are dropped (they are
//! exactly the *cut* edges the analysis of Lemma 4.2 charges separately).
//!
//! Two implementations exist:
//!
//! * [`crate::view::SplitArena::split`] — the production path: children
//!   come back as borrowed [`crate::view::CsrView`]s over one reused
//!   arena, with no per-child allocation. The hopset recursion runs on
//!   this.
//! * [`split_by_labels`] (here) — the materializing reference: children
//!   are owned [`CsrGraph`]s. Kept for callers that need owned subgraphs
//!   outliving the parent, and as the baseline the `view_equivalence`
//!   suite and the `recursion_memory` bench compare the arena path
//!   against.

use crate::csr::{CsrGraph, Edge, VertexId};
use crate::view::GraphView;
use psh_pram::Cost;
use rayon::prelude::*;

/// An induced subgraph with vertex provenance.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// The subgraph itself, over vertices `0..to_parent.len()`.
    pub graph: CsrGraph,
    /// `to_parent[local] = parent vertex id`.
    pub to_parent: Vec<VertexId>,
}

impl SubGraph {
    /// Map a local vertex back to the parent graph.
    #[inline]
    pub fn parent_of(&self, local: VertexId) -> VertexId {
        self.to_parent[local as usize]
    }

    /// Number of vertices in the subgraph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }
}

/// Parent→local vertex mapping for an induced subgraph: vertices outside
/// the inducing subset have **no** local id, and that absence is typed —
/// [`ParentMap::local_of`] returns an `Option`, so an out-of-subset
/// lookup can never be mistaken for a vertex id (the raw `u32::MAX`
/// sentinel this type replaced read exactly like one).
#[derive(Clone, Debug)]
pub struct ParentMap {
    /// Dense over the parent vertex set; `ABSENT` marks non-members.
    /// The sentinel is an encoding detail and never escapes this type.
    local: Vec<u32>,
}

/// In-subset local ids are `< subset.len() <= u32::MAX`, so this value is
/// free to mark absences.
const ABSENT: u32 = u32::MAX;

impl ParentMap {
    /// The local id of `parent` in the subgraph, or `None` if `parent` is
    /// not part of the inducing subset.
    #[inline]
    pub fn local_of(&self, parent: VertexId) -> Option<VertexId> {
        let raw = self.local[parent as usize];
        (raw != ABSENT).then_some(raw)
    }

    /// True if `parent` belongs to the inducing subset.
    #[inline]
    pub fn contains(&self, parent: VertexId) -> bool {
        self.local[parent as usize] != ABSENT
    }

    /// Size of the parent vertex universe this map is dense over.
    pub fn parent_n(&self) -> usize {
        self.local.len()
    }
}

/// Induced subgraph on an explicit vertex subset.
///
/// Returns the subgraph and the typed parent→local [`ParentMap`].
pub fn induced<G: GraphView>(g: &G, verts: &[VertexId]) -> (SubGraph, ParentMap) {
    let mut to_local = vec![ABSENT; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        assert!(
            to_local[v as usize] == ABSENT,
            "duplicate vertex {v} in induced-subgraph set"
        );
        to_local[v as usize] = i as u32;
    }
    let mut edges = Vec::new();
    for (i, &v) in verts.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let lu = to_local[u as usize];
            if lu != ABSENT && (i as u32) < lu {
                edges.push(Edge::new(i as u32, lu, w));
            }
        }
    }
    (
        SubGraph {
            graph: CsrGraph::from_edges(verts.len(), edges),
            to_parent: verts.to_vec(),
        },
        ParentMap { local: to_local },
    )
}

/// Split `g` into the `k` induced subgraphs of a dense labeling
/// (`labels[v] in 0..k`), **materializing** each child as an owned
/// [`CsrGraph`]. Cut edges (different labels) are dropped.
///
/// Work is `O(n + m)` plus the CSR builds; depth is a constant number of
/// rounds (bucketing, relabeling, and per-cluster builds run in parallel).
/// Prefer [`crate::view::SplitArena::split`] on recursive hot paths — it
/// produces byte-identical children (as graphs) without the per-child
/// allocations, and reports the same [`Cost`].
pub fn split_by_labels<G: GraphView>(g: &G, labels: &[u32], k: usize) -> (Vec<SubGraph>, Cost) {
    assert_eq!(labels.len(), g.n());
    // Bucket vertices by label.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, &l) in labels.iter().enumerate() {
        members[l as usize].push(v as u32);
    }
    // Parent → local index within its cluster.
    let mut to_local = vec![0u32; g.n()];
    for verts in &members {
        for (i, &v) in verts.iter().enumerate() {
            to_local[v as usize] = i as u32;
        }
    }
    // Distribute intra-cluster edges.
    let mut cluster_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for e in g.edges() {
        let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
        if lu == lv {
            cluster_edges[lu as usize].push(Edge::new(
                to_local[e.u as usize],
                to_local[e.v as usize],
                e.w,
            ));
        }
    }
    let subs: Vec<SubGraph> = members
        .into_par_iter()
        .zip(cluster_edges.into_par_iter())
        .map(|(verts, edges)| SubGraph {
            graph: CsrGraph::from_edges(verts.len(), edges),
            to_parent: verts,
        })
        .collect();
    let cost = Cost::new(g.n() as u64 + g.m() as u64, 3);
    (subs, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrGraph {
        // two triangles joined by a bridge 2-3
        CsrGraph::from_unit_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let (sub, map) = induced(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.n(), 4);
        // edges 0-1, 1-2, 2-0, 2-3 survive
        assert_eq!(sub.graph.m(), 4);
        assert_eq!(map.local_of(4), None);
        assert!(!map.contains(4));
        assert!(map.contains(3));
        assert_eq!(map.parent_n(), 6);
        assert_eq!(sub.parent_of(map.local_of(3).unwrap()), 3);
    }

    #[test]
    fn induced_map_round_trips_every_member() {
        let g = sample();
        let verts = [5u32, 1, 3];
        let (sub, map) = induced(&g, &verts);
        for (i, &v) in verts.iter().enumerate() {
            assert_eq!(map.local_of(v), Some(i as u32));
            assert_eq!(sub.parent_of(i as u32), v);
        }
        for v in [0u32, 2, 4] {
            assert_eq!(map.local_of(v), None);
        }
    }

    #[test]
    fn split_drops_cut_edges() {
        let g = sample();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let (subs, _) = split_by_labels(&g, &labels, 2);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].n(), 3);
        assert_eq!(subs[1].n(), 3);
        // the bridge 2-3 is cut; each triangle keeps its 3 edges
        assert_eq!(subs[0].graph.m(), 3);
        assert_eq!(subs[1].graph.m(), 3);
    }

    #[test]
    fn split_preserves_parent_mapping() {
        let g = sample();
        let labels = vec![0, 1, 0, 1, 0, 1];
        let (subs, _) = split_by_labels(&g, &labels, 2);
        for (cluster, sub) in subs.iter().enumerate() {
            for local in 0..sub.n() as u32 {
                let parent = sub.parent_of(local);
                assert_eq!(labels[parent as usize] as usize, cluster);
            }
        }
        let total: usize = subs.iter().map(SubGraph::n).sum();
        assert_eq!(total, g.n());
    }

    #[test]
    fn singleton_clusters_are_edgeless() {
        let g = sample();
        let labels: Vec<u32> = (0..6).collect();
        let (subs, _) = split_by_labels(&g, &labels, 6);
        for sub in &subs {
            assert_eq!(sub.n(), 1);
            assert_eq!(sub.graph.m(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_rejects_duplicates() {
        let g = sample();
        let _ = induced(&g, &[0, 0]);
    }

    proptest! {
        /// Splitting preserves exactly the intra-cluster edges, with weights.
        #[test]
        fn prop_split_edge_conservation(
            raw in proptest::collection::vec((0u32..30, 0u32..30, 1u64..10), 0..150),
            labels in proptest::collection::vec(0u32..4, 30)) {
            let g = CsrGraph::from_edges(30, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            let (subs, _) = split_by_labels(&g, &labels, 4);
            let internal = g.edges().iter()
                .filter(|e| labels[e.u as usize] == labels[e.v as usize])
                .count();
            let split_total: usize = subs.iter().map(|s| s.graph.m()).sum();
            prop_assert_eq!(internal, split_total);
            // every subgraph edge maps back to a real parent edge
            for sub in &subs {
                for e in sub.graph.edges() {
                    let (pu, pv) = (sub.parent_of(e.u), sub.parent_of(e.v));
                    prop_assert!(g.neighbors(pu).any(|(t, w)| t == pv && w == e.w));
                }
            }
        }
    }
}
