//! Induced subgraphs and one-pass cluster splitting.
//!
//! Algorithm 4 (`HopSet`) recurses on each cluster of a decomposition "in
//! parallel". The natural substrate operation is: given a dense labeling of
//! the vertices, produce all `k` induced subgraphs `G[X_i]` at once, each
//! with a relabeled compact vertex set and a mapping back to the parent
//! graph. Edges with endpoints in different clusters are dropped (they are
//! exactly the *cut* edges the analysis of Lemma 4.2 charges separately).

use crate::csr::{CsrGraph, Edge, VertexId};
use psh_pram::Cost;
use rayon::prelude::*;

/// An induced subgraph with vertex provenance.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// The subgraph itself, over vertices `0..to_parent.len()`.
    pub graph: CsrGraph,
    /// `to_parent[local] = parent vertex id`.
    pub to_parent: Vec<VertexId>,
}

impl SubGraph {
    /// Map a local vertex back to the parent graph.
    #[inline]
    pub fn parent_of(&self, local: VertexId) -> VertexId {
        self.to_parent[local as usize]
    }

    /// Number of vertices in the subgraph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }
}

/// Induced subgraph on an explicit vertex subset.
///
/// Returns the subgraph and a parent→local map (`u32::MAX` for vertices
/// outside the subset).
pub fn induced(g: &CsrGraph, verts: &[VertexId]) -> (SubGraph, Vec<u32>) {
    let mut to_local = vec![u32::MAX; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        assert!(
            to_local[v as usize] == u32::MAX,
            "duplicate vertex {v} in induced-subgraph set"
        );
        to_local[v as usize] = i as u32;
    }
    let mut edges = Vec::new();
    for (i, &v) in verts.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let lu = to_local[u as usize];
            if lu != u32::MAX && (i as u32) < lu {
                edges.push(Edge::new(i as u32, lu, w));
            }
        }
    }
    (
        SubGraph {
            graph: CsrGraph::from_edges(verts.len(), edges),
            to_parent: verts.to_vec(),
        },
        to_local,
    )
}

/// Split `g` into the `k` induced subgraphs of a dense labeling
/// (`labels[v] in 0..k`). Cut edges (different labels) are dropped.
///
/// Work is `O(n + m)` plus the CSR builds; depth is a constant number of
/// rounds (bucketing, relabeling, and per-cluster builds run in parallel).
pub fn split_by_labels(g: &CsrGraph, labels: &[u32], k: usize) -> (Vec<SubGraph>, Cost) {
    assert_eq!(labels.len(), g.n());
    // Bucket vertices by label.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, &l) in labels.iter().enumerate() {
        members[l as usize].push(v as u32);
    }
    // Parent → local index within its cluster.
    let mut to_local = vec![0u32; g.n()];
    for verts in &members {
        for (i, &v) in verts.iter().enumerate() {
            to_local[v as usize] = i as u32;
        }
    }
    // Distribute intra-cluster edges.
    let mut cluster_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for e in g.edges() {
        let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
        if lu == lv {
            cluster_edges[lu as usize].push(Edge::new(
                to_local[e.u as usize],
                to_local[e.v as usize],
                e.w,
            ));
        }
    }
    let subs: Vec<SubGraph> = members
        .into_par_iter()
        .zip(cluster_edges.into_par_iter())
        .map(|(verts, edges)| SubGraph {
            graph: CsrGraph::from_edges(verts.len(), edges),
            to_parent: verts,
        })
        .collect();
    let cost = Cost::new(g.n() as u64 + g.m() as u64, 3);
    (subs, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrGraph {
        // two triangles joined by a bridge 2-3
        CsrGraph::from_unit_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let (sub, to_local) = induced(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.n(), 4);
        // edges 0-1, 1-2, 2-0, 2-3 survive
        assert_eq!(sub.graph.m(), 4);
        assert_eq!(to_local[4], u32::MAX);
        assert_eq!(sub.parent_of(to_local[3]), 3);
    }

    #[test]
    fn split_drops_cut_edges() {
        let g = sample();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let (subs, _) = split_by_labels(&g, &labels, 2);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].n(), 3);
        assert_eq!(subs[1].n(), 3);
        // the bridge 2-3 is cut; each triangle keeps its 3 edges
        assert_eq!(subs[0].graph.m(), 3);
        assert_eq!(subs[1].graph.m(), 3);
    }

    #[test]
    fn split_preserves_parent_mapping() {
        let g = sample();
        let labels = vec![0, 1, 0, 1, 0, 1];
        let (subs, _) = split_by_labels(&g, &labels, 2);
        for (cluster, sub) in subs.iter().enumerate() {
            for local in 0..sub.n() as u32 {
                let parent = sub.parent_of(local);
                assert_eq!(labels[parent as usize] as usize, cluster);
            }
        }
        let total: usize = subs.iter().map(SubGraph::n).sum();
        assert_eq!(total, g.n());
    }

    #[test]
    fn singleton_clusters_are_edgeless() {
        let g = sample();
        let labels: Vec<u32> = (0..6).collect();
        let (subs, _) = split_by_labels(&g, &labels, 6);
        for sub in &subs {
            assert_eq!(sub.n(), 1);
            assert_eq!(sub.graph.m(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_rejects_duplicates() {
        let g = sample();
        let _ = induced(&g, &[0, 0]);
    }

    proptest! {
        /// Splitting preserves exactly the intra-cluster edges, with weights.
        #[test]
        fn prop_split_edge_conservation(
            raw in proptest::collection::vec((0u32..30, 0u32..30, 1u64..10), 0..150),
            labels in proptest::collection::vec(0u32..4, 30)) {
            let g = CsrGraph::from_edges(30, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            let (subs, _) = split_by_labels(&g, &labels, 4);
            let internal = g.edges().iter()
                .filter(|e| labels[e.u as usize] == labels[e.v as usize])
                .count();
            let split_total: usize = subs.iter().map(|s| s.graph.m()).sum();
            prop_assert_eq!(internal, split_total);
            // every subgraph edge maps back to a real parent edge
            for sub in &subs {
                for e in sub.graph.edges() {
                    let (pu, pv) = (sub.parent_of(e.u), sub.parent_of(e.v));
                    prop_assert!(g.neighbors(pu).any(|(t, w)| t == pv && w == e.w));
                }
            }
        }
    }
}
