//! Incremental graph builder.
//!
//! Most call sites construct graphs in one shot with
//! [`CsrGraph::from_edges`]; the builder exists for generators and
//! transformation passes that accumulate edges piecemeal and want the
//! dedup/canonicalization behaviour documented in [`crate::csr`].

use crate::csr::{CsrGraph, Edge, VertexId, Weight};

/// Accumulates edges and finishes into a [`CsrGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// With pre-reserved edge capacity.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Add an undirected edge; order of endpoints is irrelevant.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        self.edges.push(Edge::new(u, v, w));
        self
    }

    /// Add a unit-weight edge.
    #[inline]
    pub fn add_unit_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_edge(u, v, 1)
    }

    /// Extend from an edge iterator.
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges accumulated so far (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finish into a CSR graph (dedups parallel edges, drops self-loops).
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_expected_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_unit_edge(0, 1).add_edge(1, 2, 5).add_edge(2, 1, 3);
        assert_eq!(b.len(), 3);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge(1).w, 3); // parallel (1,2) edges merged to min
    }

    #[test]
    fn empty_builder_builds_edgeless_graph() {
        let b = GraphBuilder::new(3);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn extend_accepts_edge_iterators() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.extend([Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        assert_eq!(b.build().m(), 2);
    }
}
