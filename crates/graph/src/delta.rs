//! Incremental edge updates: the [`GraphDelta`] journal and
//! [`CsrGraph::apply_delta`].
//!
//! A delta is an ordered batch of edge insertions and deletions against a
//! graph with a fixed vertex count. Validation mirrors [`crate::io::read_graph`]
//! — no self-loops, no zero weights, no out-of-range endpoints, no duplicate
//! pairs within one delta — but surfaces typed [`DeltaError`] values instead
//! of IO errors, because a delta usually arrives over a journal or the wire,
//! not a text file.
//!
//! Applying a delta always produces a **fresh** [`CsrGraph`]: CSR storage is
//! position-dependent (offsets, slot edge ids), so in-place surgery would
//! invalidate every derived artifact anyway, and the serving tier swaps whole
//! oracles atomically. The apply path is a sorted two-list merge of the
//! canonical edge list with the delta ops — `O(m + |Δ| log |Δ|)` instead of
//! the `O((m + |Δ|) log (m + |Δ|))` full re-sort — and is pinned
//! byte-identical to the correctness-first [`CsrGraph::from_edges`] rebuild
//! by a debug assertion plus the proptest below.

use std::collections::HashSet;
use std::fmt;

use crate::csr::{CsrGraph, Edge, VertexId, Weight};

/// One edge mutation. Endpoints are stored canonically (`u < v`); the
/// constructors on [`GraphDelta`] canonicalize for you.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add an edge that must not already exist.
    Insert { u: VertexId, v: VertexId, w: Weight },
    /// Remove an edge that must exist.
    Delete { u: VertexId, v: VertexId },
}

impl DeltaOp {
    /// The canonical `(u, v)` endpoint pair of this op.
    #[inline]
    pub fn pair(&self) -> (VertexId, VertexId) {
        match *self {
            DeltaOp::Insert { u, v, .. } | DeltaOp::Delete { u, v } => (u, v),
        }
    }
}

/// Why a delta op (or a whole delta) was rejected. Every variant names the
/// offending endpoints so journal tooling can report the exact record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `u == v`: self-loops are dropped by CSR construction, so journaling
    /// one is always a caller bug.
    SelfLoop { v: VertexId },
    /// Insert with `w == 0` (the paper normalizes weights to `w >= 1`).
    ZeroWeight { u: VertexId, v: VertexId },
    /// An endpoint is `>= n` for the delta's vertex count.
    OutOfRange { u: VertexId, v: VertexId, n: usize },
    /// The same canonical pair appears twice in one delta.
    DuplicatePair { u: VertexId, v: VertexId },
    /// The delta was built for a different vertex count than the graph.
    VertexCountMismatch { delta_n: usize, graph_n: usize },
    /// Insert of an edge the graph already has (delete it first; parallel
    /// edges never exist in canonical form).
    InsertExisting { u: VertexId, v: VertexId },
    /// Delete of an edge the graph does not have.
    DeleteMissing { u: VertexId, v: VertexId },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::SelfLoop { v } => write!(f, "delta op is a self-loop at vertex {v}"),
            DeltaError::ZeroWeight { u, v } => {
                write!(f, "delta insert ({u}, {v}) has zero weight (minimum is 1)")
            }
            DeltaError::OutOfRange { u, v, n } => {
                write!(f, "delta op ({u}, {v}) out of range for n = {n}")
            }
            DeltaError::DuplicatePair { u, v } => {
                write!(f, "delta touches edge ({u}, {v}) more than once")
            }
            DeltaError::VertexCountMismatch { delta_n, graph_n } => write!(
                f,
                "delta built for n = {delta_n} applied to a graph with n = {graph_n}"
            ),
            DeltaError::InsertExisting { u, v } => {
                write!(f, "delta inserts edge ({u}, {v}) which already exists")
            }
            DeltaError::DeleteMissing { u, v } => {
                write!(f, "delta deletes edge ({u}, {v}) which does not exist")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A validated batch of edge mutations against an `n`-vertex graph.
///
/// Structural invariants (self-loops, weights, ranges, intra-delta
/// duplicates) are enforced as ops are added, so a `GraphDelta` in hand is
/// always structurally sound; graph-dependent checks (insert-exists /
/// delete-missing) happen in [`CsrGraph::apply_delta`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GraphDelta {
    n: usize,
    ops: Vec<DeltaOp>,
    touched: HashSet<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// An empty delta against an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        GraphDelta {
            n,
            ops: Vec::new(),
            touched: HashSet::new(),
        }
    }

    /// Rebuild a delta from raw ops (e.g. decoded from a journal),
    /// re-running the full structural validation.
    pub fn from_ops<I>(n: usize, ops: I) -> Result<Self, DeltaError>
    where
        I: IntoIterator<Item = DeltaOp>,
    {
        let mut delta = GraphDelta::new(n);
        for op in ops {
            match op {
                DeltaOp::Insert { u, v, w } => delta.insert(u, v, w)?,
                DeltaOp::Delete { u, v } => delta.delete(u, v)?,
            }
        }
        Ok(delta)
    }

    /// Vertex count this delta targets.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The validated ops, in insertion order (endpoints canonicalized).
    #[inline]
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the delta holds no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn check_pair(&mut self, u: VertexId, v: VertexId) -> Result<(VertexId, VertexId), DeltaError> {
        if u == v {
            return Err(DeltaError::SelfLoop { v });
        }
        if (u as usize) >= self.n || (v as usize) >= self.n {
            return Err(DeltaError::OutOfRange { u, v, n: self.n });
        }
        let pair = if u < v { (u, v) } else { (v, u) };
        if !self.touched.insert(pair) {
            return Err(DeltaError::DuplicatePair {
                u: pair.0,
                v: pair.1,
            });
        }
        Ok(pair)
    }

    /// Record an edge insertion. Endpoint order is canonicalized.
    pub fn insert(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), DeltaError> {
        if w == 0 {
            // Weight check first: a zero-weight op should not consume the
            // pair's one slot in `touched`.
            if u == v {
                return Err(DeltaError::SelfLoop { v });
            }
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            return Err(DeltaError::ZeroWeight { u, v });
        }
        let (u, v) = self.check_pair(u, v)?;
        self.ops.push(DeltaOp::Insert { u, v, w });
        Ok(())
    }

    /// Record an edge deletion. Endpoint order is canonicalized.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        let (u, v) = self.check_pair(u, v)?;
        self.ops.push(DeltaOp::Delete { u, v });
        Ok(())
    }
}

impl CsrGraph {
    /// Apply a delta, producing a fresh graph. The input graph is untouched.
    ///
    /// Errors if the delta targets a different vertex count, inserts an edge
    /// that already exists, or deletes one that does not — checked *before*
    /// any construction work, so an `Err` means no allocation was wasted.
    ///
    /// The construction is a sorted merge of the canonical edge list with
    /// the delta, byte-identical to `CsrGraph::from_edges(n, surviving ∪
    /// inserted)` (debug-asserted here, proptest-pinned in this module's
    /// tests).
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<CsrGraph, DeltaError> {
        if delta.n() != self.n() {
            return Err(DeltaError::VertexCountMismatch {
                delta_n: delta.n(),
                graph_n: self.n(),
            });
        }
        // Graph-dependent validation up front: every op must be applicable.
        for op in delta.ops() {
            let pair = op.pair();
            let found = self
                .edges()
                .binary_search_by_key(&pair, |e| (e.u, e.v))
                .is_ok();
            match (op, found) {
                (DeltaOp::Insert { u, v, .. }, true) => {
                    return Err(DeltaError::InsertExisting { u: *u, v: *v });
                }
                (DeltaOp::Delete { u, v }, false) => {
                    return Err(DeltaError::DeleteMissing { u: *u, v: *v });
                }
                _ => {}
            }
        }
        // Merge fast path: ops sorted by pair, two-pointer walk against the
        // already-sorted canonical edge list. Pairs are unique on both sides
        // (canonical edges + the intra-delta duplicate check), so each
        // comparison resolves to exactly one of the three arms.
        let mut sorted_ops: Vec<DeltaOp> = delta.ops().to_vec();
        sorted_ops.sort_unstable_by_key(|op| op.pair());
        let mut merged: Vec<Edge> = Vec::with_capacity(self.m() + delta.len());
        let mut ops = sorted_ops.iter().copied().peekable();
        for e in self.edges() {
            while let Some(op) = ops.peek().copied() {
                if op.pair() >= (e.u, e.v) {
                    break;
                }
                if let DeltaOp::Insert { u, v, w } = op {
                    merged.push(Edge { u, v, w });
                }
                ops.next();
            }
            match ops.peek().copied() {
                Some(DeltaOp::Delete { u, v }) if (u, v) == (e.u, e.v) => {
                    ops.next();
                }
                _ => merged.push(*e),
            }
        }
        for op in ops {
            if let DeltaOp::Insert { u, v, w } = op {
                merged.push(Edge { u, v, w });
            }
        }
        let fast = CsrGraph::from_canonical_edges(self.n(), merged);
        debug_assert_eq!(
            fast,
            self.rebuild_with_delta(delta),
            "apply_delta merge diverged from the reference rebuild"
        );
        Ok(fast)
    }

    /// Reference path: full `from_edges` rebuild of the mutated edge set.
    fn rebuild_with_delta(&self, delta: &GraphDelta) -> CsrGraph {
        let deleted: HashSet<(VertexId, VertexId)> = delta
            .ops()
            .iter()
            .filter_map(|op| match *op {
                DeltaOp::Delete { u, v } => Some((u, v)),
                DeltaOp::Insert { .. } => None,
            })
            .collect();
        let survivors = self
            .edges()
            .iter()
            .copied()
            .filter(|e| !deleted.contains(&(e.u, e.v)));
        let inserted = delta.ops().iter().filter_map(|op| match *op {
            DeltaOp::Insert { u, v, w } => Some(Edge { u, v, w }),
            DeltaOp::Delete { .. } => None,
        });
        CsrGraph::from_edges(self.n(), survivors.chain(inserted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            [Edge::new(0, 1, 2), Edge::new(1, 2, 3), Edge::new(2, 3, 4)],
        )
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let g = path4();
        let mut d = GraphDelta::new(4);
        d.insert(3, 0, 7).unwrap(); // canonicalized to (0, 3)
        d.delete(1, 2).unwrap();
        let g2 = g.apply_delta(&d).unwrap();
        assert_eq!(g2.n(), 4);
        assert_eq!(g2.m(), 3);
        assert_eq!(
            g2.edges(),
            &[Edge::new(0, 1, 2), Edge::new(0, 3, 7), Edge::new(2, 3, 4)]
        );
        // original graph untouched
        assert_eq!(g.m(), 3);
        assert_eq!(g.edges()[1], Edge::new(1, 2, 3));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = path4();
        let g2 = g.apply_delta(&GraphDelta::new(4)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn structural_validation_is_typed() {
        let mut d = GraphDelta::new(4);
        assert_eq!(d.insert(2, 2, 1), Err(DeltaError::SelfLoop { v: 2 }));
        assert_eq!(
            d.insert(1, 0, 0),
            Err(DeltaError::ZeroWeight { u: 0, v: 1 })
        );
        assert_eq!(
            d.insert(0, 4, 1),
            Err(DeltaError::OutOfRange { u: 0, v: 4, n: 4 })
        );
        assert_eq!(
            d.delete(9, 1),
            Err(DeltaError::OutOfRange { u: 9, v: 1, n: 4 })
        );
        d.insert(0, 3, 5).unwrap();
        // a second touch of the same canonical pair — either op kind — is a dup
        assert_eq!(
            d.delete(3, 0),
            Err(DeltaError::DuplicatePair { u: 0, v: 3 })
        );
        assert_eq!(
            d.insert(0, 3, 9),
            Err(DeltaError::DuplicatePair { u: 0, v: 3 })
        );
        // a rejected zero-weight insert must not have consumed the pair slot
        let mut d2 = GraphDelta::new(4);
        assert!(d2.insert(0, 1, 0).is_err());
        d2.insert(0, 1, 5).unwrap();
    }

    #[test]
    fn apply_time_validation_is_typed() {
        let g = path4();
        let mut d = GraphDelta::new(4);
        d.insert(0, 1, 9).unwrap();
        assert_eq!(
            g.apply_delta(&d),
            Err(DeltaError::InsertExisting { u: 0, v: 1 })
        );
        let mut d = GraphDelta::new(4);
        d.delete(0, 2).unwrap();
        assert_eq!(
            g.apply_delta(&d),
            Err(DeltaError::DeleteMissing { u: 0, v: 2 })
        );
        let d = GraphDelta::new(5);
        assert_eq!(
            g.apply_delta(&d),
            Err(DeltaError::VertexCountMismatch {
                delta_n: 5,
                graph_n: 4
            })
        );
    }

    #[test]
    fn weight_update_is_delete_then_insert_across_deltas() {
        let g = path4();
        let mut d = GraphDelta::new(4);
        d.delete(0, 1).unwrap();
        let g = g.apply_delta(&d).unwrap();
        let mut d = GraphDelta::new(4);
        d.insert(0, 1, 10).unwrap();
        let g = g.apply_delta(&d).unwrap();
        assert_eq!(g.edges()[0], Edge::new(0, 1, 10));
    }

    #[test]
    fn from_ops_revalidates() {
        let ops = vec![
            DeltaOp::Insert { u: 0, v: 1, w: 3 },
            DeltaOp::Insert { u: 0, v: 1, w: 4 },
        ];
        assert_eq!(
            GraphDelta::from_ops(8, ops),
            Err(DeltaError::DuplicatePair { u: 0, v: 1 })
        );
        let ops = vec![
            DeltaOp::Insert { u: 0, v: 1, w: 3 },
            DeltaOp::Delete { u: 2, v: 5 },
        ];
        let d = GraphDelta::from_ops(8, ops.clone()).unwrap();
        assert_eq!(d.ops(), &ops[..]);
        assert_eq!(d.n(), 8);
    }

    proptest! {
        /// The merge fast path is byte-identical to a full `from_edges`
        /// rebuild of the mutated edge set, for arbitrary graphs and deltas.
        #[test]
        fn prop_apply_delta_matches_full_rebuild(
            raw in proptest::collection::vec((0u32..30, 0u32..30, 1u64..50), 0..120),
            muts in proptest::collection::vec((0u32..30, 0u32..30, 1u64..50, 0u32..2), 0..40),
        ) {
            let g = CsrGraph::from_edges(30, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            let mut delta = GraphDelta::new(30);
            for &(u, v, w, del) in &muts {
                let del = del == 1;
                if u == v {
                    continue;
                }
                let pair = if u < v { (u, v) } else { (v, u) };
                let exists = g.edges().binary_search_by_key(&pair, |e| (e.u, e.v)).is_ok();
                // keep only applicable, non-duplicate ops
                let res = if del && exists {
                    delta.delete(u, v)
                } else if !del && !exists {
                    delta.insert(u, v, w)
                } else {
                    continue;
                };
                let _ = res; // DuplicatePair rejections are fine to skip
            }
            let fast = g.apply_delta(&delta).unwrap();
            let reference = CsrGraph::from_edges(
                30,
                g.edges()
                    .iter()
                    .copied()
                    .filter(|e| {
                        !delta.ops().iter().any(|op| matches!(op, DeltaOp::Delete { u, v } if (*u, *v) == (e.u, e.v)))
                    })
                    .chain(delta.ops().iter().filter_map(|op| match *op {
                        DeltaOp::Insert { u, v, w } => Some(Edge { u, v, w }),
                        DeltaOp::Delete { .. } => None,
                    })),
            );
            prop_assert_eq!(fast, reference);
        }
    }
}
