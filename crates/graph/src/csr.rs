//! Compressed-sparse-row undirected graphs with integer weights and edge
//! provenance.
//!
//! Design decisions:
//!
//! * **Vertices are `u32`**, weights and distances are `u64` with
//!   [`INF`] = `u64::MAX` as the unreachable sentinel. The paper assumes
//!   integer weights with minimum 1 (§2, Appendix A), which we adopt
//!   wholesale; unweighted graphs simply have all weights equal to 1.
//! * **Undirected edges are canonical** `(min(u,v), max(u,v), w)` triples
//!   stored once in [`CsrGraph::edges`]; the CSR adjacency stores each edge
//!   in both directions and records the canonical edge id per slot
//!   ([`CsrGraph::slot_edge_id`]). Spanner construction needs this: when a
//!   cluster boundary is crossed in a *quotient* graph we must add the
//!   *original* edge to the spanner.
//! * **Parallel edges are merged keeping the minimum weight** and
//!   self-loops are dropped — the paper's quotient-graph convention (§2).

use std::fmt;

/// Vertex identifier.
pub type VertexId = u32;
/// Edge weight / path distance. Minimum edge weight is 1 by convention.
pub type Weight = u64;
/// Unreachable-distance sentinel.
pub const INF: Weight = u64::MAX;

/// A canonical undirected edge: `u < v` always holds after construction.
/// `repr(C)` pins the field layout (`u32, u32, u64` — 16 bytes, align 8,
/// no padding) so snapshot slabs can reinterpret mapped bytes as edge
/// records without a per-element decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Edge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
}

impl Edge {
    /// Construct an edge, canonicalizing the endpoint order.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        if u <= v {
            Edge { u, v, w }
        } else {
            Edge { u: v, v: u, w }
        }
    }

    /// The endpoint other than `x`; panics if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            debug_assert_eq!(x, self.v);
            self.u
        }
    }
}

/// An undirected graph in CSR form. See the module docs for conventions.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights`/`slot_eids`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Canonical edge id for each directed adjacency slot.
    slot_eids: Vec<u32>,
    /// Canonical undirected edge list (deduplicated, self-loop free).
    edges: Vec<Edge>,
}

impl CsrGraph {
    /// Build from an edge iterator. Self-loops are dropped; parallel edges
    /// are merged keeping the lightest. Panics if any endpoint `>= n` or if
    /// any weight is 0 (the paper's normalization requires `w >= 1`).
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut list: Vec<Edge> = edges
            .into_iter()
            .filter(|e| e.u != e.v)
            .map(|e| {
                assert!(e.w >= 1, "edge weights must be >= 1 (got 0)");
                assert!(
                    (e.u as usize) < n && (e.v as usize) < n,
                    "edge endpoint out of range: ({}, {}) with n = {n}",
                    e.u,
                    e.v
                );
                Edge::new(e.u, e.v, e.w)
            })
            .collect();
        // Sort so equal endpoints group together with the lightest first,
        // then keep the first of each group (minimum-weight parallel edge).
        list.sort_unstable();
        list.dedup_by_key(|e| (e.u, e.v));
        Self::from_canonical_edges(n, list)
    }

    /// Build from unit-weight vertex pairs.
    pub fn from_unit_edges<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        Self::from_edges(n, pairs.into_iter().map(|(u, v)| Edge::new(u, v, 1)))
    }

    /// Internal: `list` must already be canonical, sorted, and deduplicated.
    pub(crate) fn from_canonical_edges(n: usize, list: Vec<Edge>) -> Self {
        let m = list.len();
        let mut degree = vec![0usize; n];
        for e in &list {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; 2 * m];
        let mut weights = vec![0 as Weight; 2 * m];
        let mut slot_eids = vec![0u32; 2 * m];
        for (i, e) in list.iter().enumerate() {
            let cu = cursor[e.u as usize];
            targets[cu] = e.v;
            weights[cu] = e.w;
            slot_eids[cu] = i as u32;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize];
            targets[cv] = e.u;
            weights[cv] = e.w;
            slot_eids[cv] = i as u32;
            cursor[e.v as usize] += 1;
        }
        CsrGraph {
            n,
            offsets,
            targets,
            weights,
            slot_eids,
            edges: list,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected, deduplicated) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Iterate `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Iterate `(neighbor, weight, canonical_edge_id)` triples of `v`.
    #[inline]
    pub fn neighbors_with_eid(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight, u32)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range.clone()].iter().copied())
            .zip(self.slot_eids[range].iter().copied())
            .map(|((t, w), e)| (t, w, e))
    }

    /// The canonical undirected edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The canonical edge with id `eid`.
    #[inline]
    pub fn edge(&self, eid: u32) -> Edge {
        self.edges[eid as usize]
    }

    /// Canonical edge id of a given directed adjacency slot.
    #[inline]
    pub fn slot_edge_id(&self, slot: usize) -> u32 {
        self.slot_eids[slot]
    }

    /// Adjacency slot range of vertex `v` (for slot-indexed access).
    #[inline]
    pub fn slot_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// True if every edge has weight 1.
    pub fn is_unit_weight(&self) -> bool {
        self.edges.iter().all(|e| e.w == 1)
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_weight(&self) -> Option<Weight> {
        self.edges.iter().map(|e| e.w).min()
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.edges.iter().map(|e| e.w).max()
    }

    /// The weight ratio `U = max_w / min_w` (1 for edgeless graphs).
    pub fn weight_ratio(&self) -> f64 {
        match (self.min_weight(), self.max_weight()) {
            (Some(lo), Some(hi)) => hi as f64 / lo as f64,
            _ => 1.0,
        }
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.w).sum()
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("n", &self.n)
            .field("m", &self.m())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_unit_edges(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn edge_canonicalizes_order() {
        assert_eq!(Edge::new(5, 2, 7), Edge { u: 2, v: 5, w: 7 });
        assert_eq!(Edge::new(2, 5, 7), Edge { u: 2, v: 5, w: 7 });
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 4, 2);
        assert_eq!(e.other(1), 4);
        assert_eq!(e.other(4), 1);
    }

    #[test]
    fn triangle_basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = CsrGraph::from_unit_edges(2, [(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges()[0], Edge::new(0, 1, 1));
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let g = CsrGraph::from_edges(
            2,
            [Edge::new(0, 1, 9), Edge::new(1, 0, 3), Edge::new(0, 1, 5)],
        );
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges()[0].w, 3);
        // both adjacency slots see the merged weight
        assert_eq!(g.neighbors(0).next(), Some((1, 3)));
        assert_eq!(g.neighbors(1).next(), Some((0, 3)));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for v in 0..3u32 {
            for (u, w) in g.neighbors(v) {
                assert!(g.neighbors(u).any(|(x, xw)| x == v && xw == w));
            }
        }
    }

    #[test]
    fn slot_edge_ids_point_back_to_canonical_edges() {
        let g = CsrGraph::from_edges(
            4,
            [Edge::new(0, 1, 2), Edge::new(1, 2, 3), Edge::new(2, 3, 4)],
        );
        for v in 0..4u32 {
            for ((t, w, eid), slot) in g.neighbors_with_eid(v).zip(g.slot_range(v)) {
                let e = g.edge(eid);
                assert_eq!(g.slot_edge_id(slot), eid);
                assert_eq!(e.w, w);
                assert!((e.u == v && e.v == t) || (e.v == v && e.u == t));
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = CsrGraph::from_edges(0, std::iter::empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = CsrGraph::from_edges(5, std::iter::empty());
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(3), 0);
        assert!((g.weight_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_statistics() {
        let g = CsrGraph::from_edges(3, [Edge::new(0, 1, 2), Edge::new(1, 2, 8)]);
        assert_eq!(g.min_weight(), Some(2));
        assert_eq!(g.max_weight(), Some(8));
        assert_eq!(g.total_weight(), 10);
        assert!((g.weight_ratio() - 4.0).abs() < 1e-12);
        assert!(!g.is_unit_weight());
        assert!(triangle().is_unit_weight());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let _ = CsrGraph::from_unit_edges(2, [(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "weights must be >= 1")]
    fn rejects_zero_weight() {
        let _ = CsrGraph::from_edges(2, [Edge::new(0, 1, 0)]);
    }

    proptest! {
        /// CSR invariants hold for arbitrary edge soups.
        #[test]
        fn prop_csr_invariants(raw in proptest::collection::vec((0u32..50, 0u32..50, 1u64..100), 0..200)) {
            let g = CsrGraph::from_edges(50, raw.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
            // degree sum is twice the edge count
            let degsum: usize = (0..50u32).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.m());
            // edges are canonical, strictly sorted, self-loop free
            for win in g.edges().windows(2) {
                prop_assert!((win[0].u, win[0].v) < (win[1].u, win[1].v));
            }
            for e in g.edges() {
                prop_assert!(e.u < e.v);
            }
            // adjacency is symmetric with matching weights
            for v in 0..50u32 {
                for (u, w) in g.neighbors(v) {
                    prop_assert!(g.neighbors(u).any(|(x, xw)| x == v && xw == w));
                }
            }
        }

        /// Merged parallel edges always keep the global minimum weight.
        #[test]
        fn prop_parallel_edge_merge_is_min(ws in proptest::collection::vec(1u64..1000, 1..20)) {
            let g = CsrGraph::from_edges(2, ws.iter().map(|&w| Edge::new(0, 1, w)));
            prop_assert_eq!(g.m(), 1);
            prop_assert_eq!(g.edges()[0].w, *ws.iter().min().unwrap());
        }
    }
}
