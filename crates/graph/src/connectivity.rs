//! Connected components.
//!
//! Two engines with identical outputs:
//!
//! * [`components_union_find`] — work-efficient, processes the edge list
//!   through the concurrent union-find (the \[SDB14\] shape the paper cites).
//! * [`components_label_propagation`] — round-synchronous min-label
//!   propagation, the textbook PRAM algorithm; its depth is the graph
//!   diameter, and it exists mostly to cross-check the union-find engine
//!   and to give a depth-meaningful baseline for the cost model.
//!
//! Both return dense labels: `labels[v] in 0..count`, equal iff connected.

use crate::csr::{CsrGraph, VertexId};
use crate::union_find::AtomicUnionFind;
use psh_pram::Cost;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Output of a connectivity computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Dense component label per vertex (`0..count`).
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// True if `a` and `b` are in the same component.
    pub fn same(&self, a: VertexId, b: VertexId) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }

    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count];
        for &l in &self.labels {
            s[l as usize] += 1;
        }
        s
    }

    /// Vertices of each component (index = label).
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(v as u32);
        }
        out
    }
}

/// Connected components via concurrent union-find over the edge list.
pub fn components_union_find(g: &CsrGraph) -> (Components, Cost) {
    let uf = AtomicUnionFind::new(g.n());
    g.edges().par_iter().for_each(|e| {
        uf.union(e.u, e.v);
    });
    let (labels, count) = uf.labels();
    // Work: one union per edge plus the relabel scan. Depth: the union-find
    // phase is a single logical round in the cost model (unions commute);
    // the relabel is another.
    let cost = Cost::new(g.m() as u64 + g.n() as u64, 2);
    (Components { labels, count }, cost)
}

/// Connected components via synchronous min-label propagation.
///
/// Depth equals the number of rounds to reach a fixpoint, which is at most
/// the maximum component diameter plus one.
pub fn components_label_propagation(g: &CsrGraph) -> (Components, Cost) {
    let n = g.n();
    // Round-synchronous (Jacobi) iteration with double buffering: every
    // round reads only the previous round's labels, so the number of rounds
    // — and hence the measured depth — is the same regardless of thread
    // count or scheduling. In-place updates would "cheat" on one thread by
    // collapsing a whole path in a single sweep.
    let mut cur: Vec<u32> = (0..n as u32).collect();
    let mut next: Vec<u32> = vec![0; n];
    let mut cost = Cost::ZERO;
    loop {
        let changed = AtomicBool::new(false);
        let cur_ref = &cur;
        let changed_ref = &changed;
        next.par_iter_mut().enumerate().for_each(|(v, out)| {
            let mine = cur_ref[v];
            let mut best = mine;
            for (u, _) in g.neighbors(v as u32) {
                best = best.min(cur_ref[u as usize]);
            }
            if best < mine {
                changed_ref.store(true, Ordering::Relaxed);
            }
            *out = best;
        });
        cost = cost.then(Cost::flat(2 * g.m() as u64 + n as u64));
        std::mem::swap(&mut cur, &mut next);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    let raw = cur;
    // densify
    let mut map = vec![u32::MAX; n];
    let mut dense = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n {
        let r = raw[v] as usize;
        if map[r] == u32::MAX {
            map[r] = next;
            next += 1;
        }
        dense[v] = map[r];
    }
    cost = cost.then(Cost::flat(n as u64));
    (
        Components {
            labels: dense,
            count: next as usize,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Edge;
    use proptest::prelude::*;

    fn two_triangles() -> CsrGraph {
        CsrGraph::from_unit_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn union_find_finds_two_components() {
        let (c, _) = components_union_find(&two_triangles());
        assert_eq!(c.count, 2);
        assert!(c.same(0, 2));
        assert!(c.same(3, 5));
        assert!(!c.same(0, 3));
        assert_eq!(c.sizes(), vec![3, 3]);
    }

    #[test]
    fn label_propagation_matches_union_find() {
        let g = two_triangles();
        let (a, _) = components_union_find(&g);
        let (b, _) = components_label_propagation(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = CsrGraph::from_unit_edges(4, [(1, 2)]);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes().iter().sum::<usize>(), 4);
    }

    #[test]
    fn members_partition_the_vertex_set() {
        let (c, _) = components_union_find(&two_triangles());
        let members = c.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        for (label, verts) in members.iter().enumerate() {
            for &v in verts {
                assert_eq!(c.labels[v as usize] as usize, label);
            }
        }
    }

    #[test]
    fn label_propagation_depth_tracks_diameter() {
        // a path has diameter n-1; label propagation needs ~that many rounds
        let n = 32;
        let g = CsrGraph::from_unit_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)));
        let (c, cost) = components_label_propagation(&g);
        assert_eq!(c.count, 1);
        assert!(
            cost.depth >= n as u64 - 1,
            "depth {} should be at least the path diameter",
            cost.depth
        );
    }

    proptest! {
        #[test]
        fn prop_engines_agree(raw in proptest::collection::vec((0u32..40, 0u32..40), 0..120)) {
            let g = CsrGraph::from_edges(40, raw.iter().map(|&(u, v)| Edge::new(u, v, 1)));
            let (a, _) = components_union_find(&g);
            let (b, _) = components_label_propagation(&g);
            prop_assert_eq!(a, b);
        }
    }
}
