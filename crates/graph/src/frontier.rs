//! The shared level-synchronous frontier engine.
//!
//! Every bucketed search in this workspace — the clustering race
//! (Algorithm 1 / Appendix A), parallel BFS \[UY91\], Dial's bucketed SSSP
//! \[KS97\], Δ-stepping, and the hopset round loops built on them — has the
//! same skeleton: a priority queue of integer-keyed buckets of *claims*,
//! processed in key order, where each round
//!
//! 1. **filters** the popped bucket down to claims that are still live,
//! 2. **resolves** contention by sorting and keeping, per target vertex,
//!    the minimum claim under a total tie-breaking order,
//! 3. **commits** the winners to the algorithm's state, and
//! 4. **expands** each winner into future claims pushed at later keys.
//!
//! Before this module each algorithm hand-rolled that loop; now they all
//! implement [`Frontier`] and let [`drive`] run the rounds. The engine
//! owns both the parallelism and the accounting:
//!
//! * phases 1, 2, and 4 execute on a [`psh_exec::Executor`] via the
//!   deterministic chunked combinators, so artifacts are byte-identical
//!   for any [`psh_exec::ExecutionPolicy`] — ties are fixed by the claim
//!   type's `Ord`, never by scheduling;
//! * *work* is accumulated in a [`psh_pram::OpCounter`] (claims examined,
//!   edges scanned, winners committed — the same currency the paper
//!   charges), and *depth* is the number of rounds the engine actually
//!   ran, so the reported [`Cost`] is measured from the execution itself
//!   rather than estimated alongside it.
//!
//! Two-phase claim/commit is what makes determinism cheap: state is only
//! read during filtering/expansion and only written between them, so no
//! parallel phase ever races on the arrays the algorithms update.

use crate::csr::VertexId;
use psh_exec::Executor;
use psh_pram::{Cost, OpCounter};
use std::collections::BTreeMap;

/// Claims per chunk when filtering a popped bucket (claims are small
/// PODs; below this a pool round-trip costs more than the scan).
const FILTER_GRAIN: usize = 4096;

/// Winners per chunk when expanding (each expansion scans an adjacency
/// list, so chunks are heavier than filter chunks).
const EXPAND_GRAIN: usize = 256;

/// An ordered multimap from integer round keys to pending claims — the
/// lazy bucket structure shared by every search engine. Sparse key ranges
/// skip empty buckets in `O(log)` time.
#[derive(Clone, Debug, Default)]
pub struct BucketQueue<T> {
    buckets: BTreeMap<u64, Vec<T>>,
}

impl<T> BucketQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BucketQueue {
            buckets: BTreeMap::new(),
        }
    }

    /// Append `item` to the bucket at `key`.
    pub fn push(&mut self, key: u64, item: T) {
        self.buckets.entry(key).or_default().push(item);
    }

    /// Remove and return the non-empty bucket with the smallest key.
    /// One tree descent (`pop_first`), not a find-then-remove pair —
    /// this runs once per round in every search engine.
    pub fn pop_min(&mut self) -> Option<(u64, Vec<T>)> {
        self.buckets.pop_first()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// One algorithm's view of the race: what a claim is, when it is still
/// live, how winners update state, and what they spawn next.
///
/// # Contract
///
/// * `Claim`'s `Ord` **must order by target first** (the engine groups
///   winners by runs of equal targets in sorted order), and the remaining
///   fields must totally order claims so the per-target minimum is the
///   unique deterministic winner.
/// * [`Frontier::live`] and [`Frontier::expand`] take `&self` and run in
///   parallel — they must not mutate state (interior-mutable counters
///   aside). [`Frontier::commit`] runs sequentially, in sorted winner
///   order, between them.
/// * `expand` returns the work units (edge scans) it performed, which the
///   engine adds to the run's [`Cost::work`].
pub trait Frontier: Sync {
    /// A pending assignment attempt on some target vertex.
    type Claim: Copy + Ord + Send + Sync;

    /// The vertex this claim tries to acquire.
    fn target(claim: &Self::Claim) -> VertexId;

    /// Is this claim still meaningful, given current state? Runs in the
    /// parallel filter phase; stale claims are dropped (their examination
    /// is still charged as work).
    fn live(&self, claim: &Self::Claim) -> bool;

    /// Apply a winning claim. Runs sequentially; `round` is the bucket
    /// key being processed.
    fn commit(&mut self, claim: &Self::Claim, round: u64);

    /// Emit the follow-up claims of a committed winner as
    /// `(key, claim)` pairs with `key >= round`; returns the number of
    /// work units (e.g. edges scanned) performed. Runs in the parallel
    /// expansion phase, after every commit of this round.
    fn expand(&self, claim: &Self::Claim, round: u64, out: &mut Vec<(u64, Self::Claim)>) -> u64;
}

/// Run the level-synchronous rounds to exhaustion.
///
/// Returns the engine-measured cost: `work` = claims examined + work
/// units reported by `expand` + winners committed (from the internal
/// [`OpCounter`]); `depth` = number of rounds in which at least one claim
/// won (rounds whose bucket was entirely stale cost work but no depth,
/// matching the PRAM schedule where such a round does not exist).
pub fn drive<F: Frontier>(
    exec: &Executor,
    queue: &mut BucketQueue<F::Claim>,
    frontier: &mut F,
) -> Cost {
    let counter = OpCounter::new();
    let mut rounds: u64 = 0;
    let mut winners: Vec<F::Claim> = Vec::new();
    while let Some((round, claims)) = queue.pop_min() {
        counter.add(claims.len() as u64);
        // Phase 1: parallel filter of stale claims.
        let shared: &F = frontier;
        let mut live = exec.par_filter(&claims, FILTER_GRAIN, |c| shared.live(c));
        if live.is_empty() {
            continue;
        }
        // Phase 2: deterministic contention resolution — sort puts each
        // target's minimum claim first; keep the first of each run.
        exec.par_sort_unstable(&mut live);
        winners.clear();
        let mut last: Option<VertexId> = None;
        for claim in live {
            let t = F::target(&claim);
            if last != Some(t) {
                winners.push(claim);
                last = Some(t);
            }
        }
        // Phase 3: sequential commit in sorted winner order.
        for claim in &winners {
            frontier.commit(claim, round);
        }
        // Phase 4: parallel expansion; emitted claims land in later (or
        // re-opened current) buckets, concatenated in winner order.
        let shared: &F = frontier;
        let expansion = exec.par_flat_map(&winners, EXPAND_GRAIN, |claim, out| {
            let before = out.len();
            let scanned = shared.expand(claim, round, out);
            debug_assert!(out[before..].iter().all(|&(k, _)| k >= round));
            counter.add(scanned);
        });
        for (key, claim) in expansion {
            queue.push(key, claim);
        }
        counter.add(winners.len() as u64);
        rounds += 1;
    }
    Cost::new(counter.get(), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_queue_pops_in_key_order() {
        let mut q = BucketQueue::new();
        q.push(5, 'b');
        q.push(2, 'a');
        q.push(5, 'c');
        assert!(!q.is_empty());
        assert_eq!(q.pop_min(), Some((2, vec!['a'])));
        assert_eq!(q.pop_min(), Some((5, vec!['b', 'c'])));
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn reinserting_at_the_popped_key_reopens_the_bucket() {
        // Δ-stepping's light-phase iterations rely on this: claims pushed
        // at the current key are processed as an extra sub-round.
        let mut q = BucketQueue::new();
        q.push(3, 1u32);
        let (k, _) = q.pop_min().unwrap();
        q.push(k, 2u32);
        assert_eq!(q.pop_min(), Some((3, vec![2])));
    }

    /// Toy frontier: propagate the smallest source id along a path, one
    /// vertex per round — a miniature BFS exercising all four phases.
    struct Label {
        adj: Vec<Vec<VertexId>>,
        owner: Vec<u32>,
    }

    impl Frontier for Label {
        type Claim = (VertexId, u32); // (target, proposed owner)

        fn target(c: &Self::Claim) -> VertexId {
            c.0
        }

        fn live(&self, c: &Self::Claim) -> bool {
            self.owner[c.0 as usize] == u32::MAX
        }

        fn commit(&mut self, c: &Self::Claim, _round: u64) {
            self.owner[c.0 as usize] = c.1;
        }

        fn expand(&self, c: &Self::Claim, round: u64, out: &mut Vec<(u64, Self::Claim)>) -> u64 {
            for &w in &self.adj[c.0 as usize] {
                if self.owner[w as usize] == u32::MAX {
                    out.push((round + 1, (w, c.1)));
                }
            }
            self.adj[c.0 as usize].len() as u64
        }
    }

    #[test]
    fn drive_resolves_ties_deterministically_and_counts_rounds() {
        // path 0-1-2-3-4 with sources 0 (owner 7) and 4 (owner 3): vertex
        // 2 is contested at round 2 and the smaller claim (owner 3) wins.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        for exec in [
            Executor::sequential(),
            Executor::new(psh_exec::ExecutionPolicy::Parallel { threads: 3 }),
        ] {
            let mut f = Label {
                adj: adj.clone(),
                owner: vec![u32::MAX; 5],
            };
            let mut q = BucketQueue::new();
            q.push(0, (0, 7u32));
            q.push(0, (4, 3u32));
            let cost = drive(&exec, &mut q, &mut f);
            assert_eq!(f.owner, vec![7, 7, 3, 3, 3]);
            assert_eq!(cost.depth, 3, "rounds 0, 1, 2");
            assert!(cost.work > 0);
        }
    }
}
