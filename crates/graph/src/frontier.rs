//! The shared level-synchronous frontier engine.
//!
//! Every bucketed search in this workspace — the clustering race
//! (Algorithm 1 / Appendix A), parallel BFS \[UY91\], Dial's bucketed SSSP
//! \[KS97\], Δ-stepping, and the hopset round loops built on them — has the
//! same skeleton: a priority queue of integer-keyed buckets of *claims*,
//! processed in key order, where each round
//!
//! 1. **filters** the popped bucket down to claims that are still live,
//! 2. **resolves** contention by sorting and keeping, per target vertex,
//!    the minimum claim under a total tie-breaking order,
//! 3. **commits** the winners to the algorithm's state, and
//! 4. **expands** each winner into future claims pushed at later keys.
//!
//! Before this module each algorithm hand-rolled that loop; now they all
//! implement [`Frontier`] and let [`drive`] run the rounds. The engine
//! owns both the parallelism and the accounting:
//!
//! * phases 1, 2, and 4 execute on a [`psh_exec::Executor`] via the
//!   deterministic chunked combinators, so artifacts are byte-identical
//!   for any [`psh_exec::ExecutionPolicy`] — ties are fixed by the claim
//!   type's `Ord`, never by scheduling;
//! * *work* is accumulated in a [`psh_pram::OpCounter`] (claims examined,
//!   edges scanned, winners committed — the same currency the paper
//!   charges), and *depth* is the number of rounds the engine actually
//!   ran, so the reported [`Cost`] is measured from the execution itself
//!   rather than estimated alongside it.
//!
//! Two-phase claim/commit is what makes determinism cheap: state is only
//! read during filtering/expansion and only written between them, so no
//! parallel phase ever races on the arrays the algorithms update.

use crate::csr::VertexId;
use psh_exec::Executor;
use psh_pram::{Cost, OpCounter};
use std::collections::BTreeMap;

/// Claims per chunk when filtering a popped bucket (claims are small
/// PODs; below this a pool round-trip costs more than the scan).
const FILTER_GRAIN: usize = 4096;

/// Winners per chunk when expanding (each expansion scans an adjacency
/// list, so chunks are heavier than filter chunks).
const EXPAND_GRAIN: usize = 256;

/// Ring slots in the calendar queue's dense window (power of two so the
/// slot index is a mask). Keys outside `[base, base + CALENDAR_SLOTS)`
/// spill to the sparse overflow tree and are promoted into the ring as
/// the window advances.
const CALENDAR_SLOTS: usize = 1024;

/// Recycled bucket `Vec`s kept around for reuse; beyond this they are
/// dropped so a burst of wide rounds cannot pin memory forever.
const FREE_POOL_CAP: usize = 256;

/// The bucket store every search engine pushes claims into and
/// [`drive_on`] pops rounds from. `Vec<T>` buckets keyed by `u64` round
/// keys, popped in ascending key order, whole bucket at a time.
///
/// Implementations must keep each key's bucket *whole*: all items pushed
/// at one key come back in a single `pop_min` (plus later sub-rounds for
/// items pushed after that pop). Splitting a key across pops would split
/// its contention-resolution sort and change committed artifacts.
pub trait ClaimQueue<T> {
    /// Append `item` to the bucket at `key`.
    fn push(&mut self, key: u64, item: T);

    /// Remove and return the non-empty bucket with the smallest key.
    fn pop_min(&mut self) -> Option<(u64, Vec<T>)>;

    /// True when no items are queued.
    fn is_empty(&self) -> bool;

    /// Hand a spent bucket back for reuse. Implementations may keep its
    /// allocation for a future `push`; the default drops it.
    fn recycle(&mut self, bucket: Vec<T>) {
        drop(bucket);
    }
}

/// A calendar (circular multi-list) bucket queue: the near future is a
/// flat ring of `CALENDAR_SLOTS` lazily-allocated `Vec` buckets indexed
/// by `key % CALENDAR_SLOTS`, the far future is a sparse `BTreeMap`
/// overflow, and spent bucket `Vec`s recycle through a free-list — in
/// steady state a round of push/pop traffic allocates nothing and never
/// chases `BTreeMap` node pointers.
///
/// Invariants that keep pop order exact (and therefore every artifact
/// byte-identical to the old `BTreeMap` implementation):
///
/// * the window base only advances (to each popped key), so within a
///   window every ring slot corresponds to exactly one key;
/// * a key's bucket lives *either* in the ring (keys inside
///   `[base, base + CALENDAR_SLOTS)`) *or* in the overflow tree (keys
///   beyond the window, or below `base` from out-of-order pushes) —
///   never both, so buckets are popped whole;
/// * whenever the base advances, overflow keys that fell inside the new
///   window are promoted into their ring slots, restoring the first
///   invariant before the next push.
///
/// `pop_min` finds the ring minimum through a per-slot occupancy bitmap
/// (one `trailing_zeros` per 64 slots) and compares it against the first
/// overflow key, so sparse key ranges cost a handful of word scans
/// instead of a tree descent.
#[derive(Clone, Debug, Default)]
pub struct BucketQueue<T> {
    /// `CALENDAR_SLOTS` buckets once the first push arrives; empty until
    /// then so an unused queue costs nothing.
    ring: Vec<Vec<T>>,
    /// One bit per ring slot: does the slot hold any items?
    occupied: Vec<u64>,
    /// Start of the dense window. Never decreases.
    base: u64,
    /// Far-future (or below-base) buckets, sparse.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Spent bucket `Vec`s awaiting reuse (all empty, capacity kept).
    free: Vec<Vec<T>>,
    /// Total queued items across ring and overflow.
    len: usize,
}

impl<T> BucketQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BucketQueue {
            ring: Vec::new(),
            occupied: Vec::new(),
            base: 0,
            overflow: BTreeMap::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn slot_of(key: u64) -> usize {
        (key & (CALENDAR_SLOTS as u64 - 1)) as usize
    }

    #[inline]
    fn in_window(&self, key: u64) -> bool {
        key >= self.base && key - self.base < CALENDAR_SLOTS as u64
    }

    fn ensure_ring(&mut self) {
        if self.ring.is_empty() {
            self.ring.resize_with(CALENDAR_SLOTS, Vec::new);
            self.occupied = vec![0u64; CALENDAR_SLOTS / 64];
        }
    }

    /// Install `bucket` (non-empty) into the ring slot for `key`. The
    /// slot must currently be unoccupied; its resident empty `Vec` moves
    /// to the free-list if it carries capacity.
    fn install(&mut self, key: u64, bucket: Vec<T>) {
        let slot = Self::slot_of(key);
        debug_assert_eq!(self.occupied[slot / 64] & (1 << (slot % 64)), 0);
        self.occupied[slot / 64] |= 1 << (slot % 64);
        let old = std::mem::replace(&mut self.ring[slot], bucket);
        debug_assert!(old.is_empty());
        if old.capacity() > 0 && self.free.len() < FREE_POOL_CAP {
            self.free.push(old);
        }
    }

    /// Append `item` to the bucket at `key`.
    pub fn push(&mut self, key: u64, item: T) {
        self.len += 1;
        if self.in_window(key) {
            self.ensure_ring();
            let slot = Self::slot_of(key);
            if self.occupied[slot / 64] & (1 << (slot % 64)) == 0 {
                self.occupied[slot / 64] |= 1 << (slot % 64);
                if self.ring[slot].capacity() == 0 {
                    if let Some(spare) = self.free.pop() {
                        self.ring[slot] = spare;
                    }
                }
            }
            self.ring[slot].push(item);
        } else {
            let free = &mut self.free;
            self.overflow
                .entry(key)
                .or_insert_with(|| free.pop().unwrap_or_default())
                .push(item);
        }
    }

    /// Smallest key with an occupied ring slot, scanning the occupancy
    /// bitmap forward from `base` (with wrap-around).
    fn ring_min_key(&self) -> Option<u64> {
        if self.ring.is_empty() {
            return None;
        }
        let base_slot = Self::slot_of(self.base);
        let (base_word, base_bit) = (base_slot / 64, base_slot % 64);
        let words = self.occupied.len();
        let key_at = |slot: usize| {
            let dist = (slot + CALENDAR_SLOTS - base_slot) % CALENDAR_SLOTS;
            self.base + dist as u64
        };
        // Unwrapped region: slots base_slot..CALENDAR_SLOTS.
        let head = self.occupied[base_word] & (!0u64 << base_bit);
        if head != 0 {
            return Some(key_at(base_word * 64 + head.trailing_zeros() as usize));
        }
        for w in base_word + 1..words {
            if self.occupied[w] != 0 {
                return Some(key_at(w * 64 + self.occupied[w].trailing_zeros() as usize));
            }
        }
        // Wrapped region: slots 0..base_slot (later keys in the window).
        for w in 0..base_word {
            if self.occupied[w] != 0 {
                return Some(key_at(w * 64 + self.occupied[w].trailing_zeros() as usize));
            }
        }
        let tail = self.occupied[base_word] & !(!0u64 << base_bit);
        if tail != 0 {
            return Some(key_at(base_word * 64 + tail.trailing_zeros() as usize));
        }
        None
    }

    /// Remove and return the non-empty bucket with the smallest key,
    /// advancing the window to it and promoting overflow buckets that
    /// the new window now covers.
    pub fn pop_min(&mut self) -> Option<(u64, Vec<T>)> {
        if self.len == 0 {
            return None;
        }
        let ring_key = self.ring_min_key();
        let over_key = self.overflow.keys().next().copied();
        let from_overflow = match (ring_key, over_key) {
            (Some(rk), Some(ok)) => ok < rk,
            (None, _) => true,
            (Some(_), None) => false,
        };
        let (key, bucket) = if from_overflow {
            self.overflow.pop_first().expect("len > 0 and ring empty")
        } else {
            let key = ring_key.expect("ring side selected");
            let slot = Self::slot_of(key);
            self.occupied[slot / 64] &= !(1 << (slot % 64));
            (key, std::mem::take(&mut self.ring[slot]))
        };
        self.len -= bucket.len();
        if key > self.base {
            self.base = key;
            // The window moved: any overflow bucket now inside it must
            // return to the ring before the next push, or that key could
            // end up split across both stores.
            let horizon = self.base + CALENDAR_SLOTS as u64;
            let promote: Vec<u64> = self
                .overflow
                .range(self.base..horizon)
                .map(|(&k, _)| k)
                .collect();
            if !promote.is_empty() {
                self.ensure_ring();
                for k in promote {
                    let v = self.overflow.remove(&k).expect("key just listed");
                    self.install(k, v);
                }
            }
        }
        Some((key, bucket))
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hand a spent bucket back so its allocation feeds future pushes.
    pub fn recycle(&mut self, mut bucket: Vec<T>) {
        bucket.clear();
        if bucket.capacity() > 0 && self.free.len() < FREE_POOL_CAP {
            self.free.push(bucket);
        }
    }
}

impl<T> ClaimQueue<T> for BucketQueue<T> {
    #[inline]
    fn push(&mut self, key: u64, item: T) {
        BucketQueue::push(self, key, item);
    }

    #[inline]
    fn pop_min(&mut self) -> Option<(u64, Vec<T>)> {
        BucketQueue::pop_min(self)
    }

    #[inline]
    fn is_empty(&self) -> bool {
        BucketQueue::is_empty(self)
    }

    #[inline]
    fn recycle(&mut self, bucket: Vec<T>) {
        BucketQueue::recycle(self, bucket);
    }
}

/// Which [`ClaimQueue`] drives a traversal. Algorithms default to
/// [`QueueKind::Calendar`]; the benchsuite `frontier` table uses the
/// explicit knob to race both stores over identical workloads (the
/// artifacts must be identical either way — only the wall clock may
/// differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// The cache-conscious ring-of-buckets [`BucketQueue`].
    Calendar,
    /// The [`BTreeBucketQueue`] baseline.
    Btree,
}

/// The pre-calendar bucket store: an ordered multimap from round keys to
/// claims, one `BTreeMap` node per non-empty bucket. Kept as the named
/// baseline the benchsuite `frontier` table races [`BucketQueue`]
/// against; algorithms should use [`BucketQueue`].
#[derive(Clone, Debug, Default)]
pub struct BTreeBucketQueue<T> {
    buckets: BTreeMap<u64, Vec<T>>,
}

impl<T> BTreeBucketQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BTreeBucketQueue {
            buckets: BTreeMap::new(),
        }
    }
}

impl<T> ClaimQueue<T> for BTreeBucketQueue<T> {
    fn push(&mut self, key: u64, item: T) {
        self.buckets.entry(key).or_default().push(item);
    }

    fn pop_min(&mut self) -> Option<(u64, Vec<T>)> {
        self.buckets.pop_first()
    }

    fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
    // recycle: default drop — recycling is the calendar queue's edge and
    // the baseline must measure the old allocation behavior honestly.
}

/// One algorithm's view of the race: what a claim is, when it is still
/// live, how winners update state, and what they spawn next.
///
/// # Contract
///
/// * `Claim`'s `Ord` **must order by target first** (the engine groups
///   winners by runs of equal targets in sorted order), and the remaining
///   fields must totally order claims so the per-target minimum is the
///   unique deterministic winner.
/// * [`Frontier::live`] and [`Frontier::expand`] take `&self` and run in
///   parallel — they must not mutate state (interior-mutable counters
///   aside). [`Frontier::commit`] runs sequentially, in sorted winner
///   order, between them.
/// * `expand` returns the work units (edge scans) it performed, which the
///   engine adds to the run's [`Cost::work`].
pub trait Frontier: Sync {
    /// A pending assignment attempt on some target vertex.
    type Claim: Copy + Ord + Send + Sync;

    /// The vertex this claim tries to acquire.
    fn target(claim: &Self::Claim) -> VertexId;

    /// Is this claim still meaningful, given current state? Runs in the
    /// parallel filter phase; stale claims are dropped (their examination
    /// is still charged as work).
    fn live(&self, claim: &Self::Claim) -> bool;

    /// Apply a winning claim. Runs sequentially; `round` is the bucket
    /// key being processed.
    fn commit(&mut self, claim: &Self::Claim, round: u64);

    /// Emit the follow-up claims of a committed winner as
    /// `(key, claim)` pairs with `key >= round`; returns the number of
    /// work units (e.g. edges scanned) performed. Runs in the parallel
    /// expansion phase, after every commit of this round.
    fn expand(&self, claim: &Self::Claim, round: u64, out: &mut Vec<(u64, Self::Claim)>) -> u64;
}

/// Run the level-synchronous rounds to exhaustion.
///
/// Returns the engine-measured cost: `work` = claims examined + work
/// units reported by `expand` + winners committed (from the internal
/// [`OpCounter`]); `depth` = number of rounds in which at least one claim
/// won (rounds whose bucket was entirely stale cost work but no depth,
/// matching the PRAM schedule where such a round does not exist).
pub fn drive<F: Frontier>(
    exec: &Executor,
    queue: &mut BucketQueue<F::Claim>,
    frontier: &mut F,
) -> Cost {
    drive_on(exec, queue, frontier)
}

/// [`drive`], generic over the bucket store. Exists so the benchsuite
/// can race queue implementations under identical real workloads; the
/// popped-key/pushed-claim sequence — and therefore the committed
/// artifact and the returned [`Cost`] — is the same for any conforming
/// [`ClaimQueue`].
pub fn drive_on<Q: ClaimQueue<F::Claim>, F: Frontier>(
    exec: &Executor,
    queue: &mut Q,
    frontier: &mut F,
) -> Cost {
    let counter = OpCounter::new();
    let mut rounds: u64 = 0;
    let mut winners: Vec<F::Claim> = Vec::new();
    while let Some((round, claims)) = queue.pop_min() {
        counter.add(claims.len() as u64);
        // Phase 1: parallel filter of stale claims.
        let shared: &F = frontier;
        let mut live = exec.par_filter(&claims, FILTER_GRAIN, |c| shared.live(c));
        if live.is_empty() {
            queue.recycle(claims);
            continue;
        }
        // Phase 2: deterministic contention resolution — sort puts each
        // target's minimum claim first; keep the first of each run.
        exec.par_sort_unstable(&mut live);
        winners.clear();
        let mut last: Option<VertexId> = None;
        for claim in live {
            let t = F::target(&claim);
            if last != Some(t) {
                winners.push(claim);
                last = Some(t);
            }
        }
        // Phase 3: sequential commit in sorted winner order.
        for claim in &winners {
            frontier.commit(claim, round);
        }
        // Phase 4: parallel expansion; emitted claims land in later (or
        // re-opened current) buckets, concatenated in winner order.
        let shared: &F = frontier;
        let expansion = exec.par_flat_map(&winners, EXPAND_GRAIN, |claim, out| {
            let before = out.len();
            let scanned = shared.expand(claim, round, out);
            debug_assert!(out[before..].iter().all(|&(k, _)| k >= round));
            counter.add(scanned);
        });
        for (key, claim) in expansion {
            queue.push(key, claim);
        }
        counter.add(winners.len() as u64);
        rounds += 1;
        queue.recycle(claims);
    }
    Cost::new(counter.get(), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_queue_pops_in_key_order() {
        let mut q = BucketQueue::new();
        q.push(5, 'b');
        q.push(2, 'a');
        q.push(5, 'c');
        assert!(!q.is_empty());
        assert_eq!(q.pop_min(), Some((2, vec!['a'])));
        assert_eq!(q.pop_min(), Some((5, vec!['b', 'c'])));
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn reinserting_at_the_popped_key_reopens_the_bucket() {
        // Δ-stepping's light-phase iterations rely on this: claims pushed
        // at the current key are processed as an extra sub-round.
        let mut q = BucketQueue::new();
        q.push(3, 1u32);
        let (k, _) = q.pop_min().unwrap();
        q.push(k, 2u32);
        assert_eq!(q.pop_min(), Some((3, vec![2])));
    }

    #[test]
    fn far_future_keys_overflow_and_promote_as_the_window_advances() {
        // CALENDAR_SLOTS = 1024: keys ≥ 1024 start in the overflow tree.
        // Popping 1500 moves the window to [1500, 2524), which must pull
        // 2500 into the ring (same residue class as 1500 + 1000) before
        // any push could split its bucket.
        let mut q = BucketQueue::new();
        q.push(0, 'a');
        q.push(1500, 'b');
        q.push(2500, 'c');
        assert_eq!(q.pop_min(), Some((0, vec!['a'])));
        assert_eq!(q.pop_min(), Some((1500, vec!['b'])));
        // 2500 is now a ring key; pushing to it must append to the same
        // bucket, not open a second one in overflow.
        q.push(2500, 'd');
        assert_eq!(q.pop_min(), Some((2500, vec!['c', 'd'])));
        assert!(q.is_empty());
    }

    #[test]
    fn keys_below_the_window_base_still_pop_first() {
        // The engine never pushes below the current round, but the queue
        // is a public type: late keys route through overflow and still
        // win the min comparison.
        let mut q = BucketQueue::new();
        q.push(10, 'a');
        assert_eq!(q.pop_min(), Some((10, vec!['a'])));
        q.push(2, 'b');
        q.push(11, 'c');
        assert_eq!(q.pop_min(), Some((2, vec!['b'])));
        assert_eq!(q.pop_min(), Some((11, vec!['c'])));
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_queue_matches_the_btree_baseline_on_random_traffic() {
        // Deterministic xorshift traffic: interleaved pushes (some far
        // beyond the window, forcing overflow + promotion) and pops must
        // produce the exact (key, bucket) sequence of the sorted-map
        // baseline.
        let mut cal: BucketQueue<u64> = BucketQueue::new();
        let mut btree: BTreeBucketQueue<u64> = BTreeBucketQueue::new();
        let mut floor = 0u64; // emulate drive(): never push below the last pop
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000 {
            if step % 3 == 2 {
                let got = cal.pop_min();
                let want = btree.pop_min();
                assert_eq!(got, want, "pop diverged at step {step}");
                if let Some((k, bucket)) = got {
                    floor = k;
                    cal.recycle(bucket);
                }
            } else {
                let r = rand();
                // Mostly near keys, occasionally far past the window.
                let key = floor
                    + if r % 11 == 0 {
                        5000 + r % 3000
                    } else {
                        r % 700
                    };
                cal.push(key, r);
                btree.push(key, r);
            }
        }
        loop {
            let got = cal.pop_min();
            let want = btree.pop_min();
            assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
        assert!(cal.is_empty() && btree.is_empty());
    }

    /// Toy frontier: propagate the smallest source id along a path, one
    /// vertex per round — a miniature BFS exercising all four phases.
    struct Label {
        adj: Vec<Vec<VertexId>>,
        owner: Vec<u32>,
    }

    impl Frontier for Label {
        type Claim = (VertexId, u32); // (target, proposed owner)

        fn target(c: &Self::Claim) -> VertexId {
            c.0
        }

        fn live(&self, c: &Self::Claim) -> bool {
            self.owner[c.0 as usize] == u32::MAX
        }

        fn commit(&mut self, c: &Self::Claim, _round: u64) {
            self.owner[c.0 as usize] = c.1;
        }

        fn expand(&self, c: &Self::Claim, round: u64, out: &mut Vec<(u64, Self::Claim)>) -> u64 {
            for &w in &self.adj[c.0 as usize] {
                if self.owner[w as usize] == u32::MAX {
                    out.push((round + 1, (w, c.1)));
                }
            }
            self.adj[c.0 as usize].len() as u64
        }
    }

    #[test]
    fn drive_resolves_ties_deterministically_and_counts_rounds() {
        // path 0-1-2-3-4 with sources 0 (owner 7) and 4 (owner 3): vertex
        // 2 is contested at round 2 and the smaller claim (owner 3) wins.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        for exec in [
            Executor::sequential(),
            Executor::new(psh_exec::ExecutionPolicy::Parallel { threads: 3 }),
        ] {
            let mut f = Label {
                adj: adj.clone(),
                owner: vec![u32::MAX; 5],
            };
            let mut q = BucketQueue::new();
            q.push(0, (0, 7u32));
            q.push(0, (4, 3u32));
            let cost = drive(&exec, &mut q, &mut f);
            assert_eq!(f.owner, vec![7, 7, 3, 3, 3]);
            assert_eq!(cost.depth, 3, "rounds 0, 1, 2");
            assert!(cost.work > 0);
        }
    }
}
