//! Synthetic workload generators.
//!
//! The paper's guarantees are distribution-free, so the experiment suite
//! needs workloads spanning the regimes the analyses distinguish:
//!
//! * sparse vs. dense random graphs (Erdős–Rényi by edge count),
//! * heavy-tailed degree graphs (preferential attachment — the "RMAT-like"
//!   stand-in for social/web graphs),
//! * high-diameter structured graphs (paths, cycles, 2-D grids/tori) where
//!   hop counts actually bind,
//! * trees (spanner/hopset degenerate cases),
//! * geometric graphs (road-network-like locality),
//! * weight assigners controlling the ratio `U` between the heaviest and
//!   lightest edge — the parameter that drives the `O(log U)` depth of
//!   Theorem 1.1 and Appendix B's preprocessing.
//!
//! All generators are deterministic given the `Rng`, and every experiment
//! constructs its `StdRng` from a recorded seed.

use crate::csr::{CsrGraph, Edge, VertexId, Weight};
use rand::Rng;
use std::collections::HashSet;

/// Path on `n` vertices: `0 - 1 - … - n-1`, unit weights.
pub fn path(n: usize) -> CsrGraph {
    CsrGraph::from_unit_edges(n, (1..n as u32).map(|v| (v - 1, v)))
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let edges = (1..n as u32)
        .map(|v| (v - 1, v))
        .chain(std::iter::once((n as u32 - 1, 0)));
    CsrGraph::from_unit_edges(n, edges)
}

/// Star: vertex 0 joined to all others.
pub fn star(n: usize) -> CsrGraph {
    CsrGraph::from_unit_edges(n, (1..n as u32).map(|v| (0, v)))
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// 2-D grid of `rows × cols` vertices, unit weights, 4-neighbor topology.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    CsrGraph::from_unit_edges(rows * cols, edges)
}

/// 2-D grid with 8-neighbor (king-move) topology: the 4-neighbor [`grid`]
/// plus both diagonals of every cell. Denser local structure at the same
/// diameter scale — the "grid2d" scenario of the workload registry.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(4 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
                if c + 1 < cols {
                    edges.push((id(r, c), id(r + 1, c + 1)));
                }
                if c > 0 {
                    edges.push((id(r, c), id(r + 1, c - 1)));
                }
            }
        }
    }
    CsrGraph::from_unit_edges(rows * cols, edges)
}

/// 2-D torus (grid with wraparound), so it is vertex-transitive.
pub fn torus(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    CsrGraph::from_unit_edges(rows * cols, edges)
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniformly random edges.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "asked for {m} edges but K_{n} has only {max_m}");
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// Connected Erdős–Rényi-style graph: a uniform random spanning tree plus
/// `extra` random edges. Used where experiments need connectivity (spanner
/// stretch is only defined within components).
pub fn connected_random<R: Rng>(n: usize, extra: usize, rng: &mut R) -> CsrGraph {
    assert!(n >= 1);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n - 1 + extra);
    // random attachment tree (uniform over recursive trees)
    for v in 1..n as u32 {
        let parent = rng.random_range(0..v);
        edges.push((parent, v));
    }
    let mut seen: HashSet<(u32, u32)> = edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    let mut added = 0;
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let budget = extra.min(max_extra);
    while added < budget {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
            added += 1;
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// Preferential attachment ("Barabási–Albert"): each new vertex attaches to
/// `deg` existing vertices chosen proportionally to degree. Heavy-tailed
/// degree distribution; the "RMAT-like" social-graph stand-in.
pub fn preferential_attachment<R: Rng>(n: usize, deg: usize, rng: &mut R) -> CsrGraph {
    assert!(deg >= 1 && n > deg, "need n > deg >= 1");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * deg);
    // endpoint pool: each edge contributes both endpoints, so sampling a
    // uniform pool element is degree-proportional sampling
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * deg);
    // seed clique on deg+1 vertices
    for u in 0..=(deg as u32) {
        for v in (u + 1)..=(deg as u32) {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    for v in (deg as u32 + 1)..n as u32 {
        // ordered container: HashSet iteration order is instance-seeded,
        // which would break determinism of subsequent pool sampling
        let mut chosen: Vec<u32> = Vec::with_capacity(deg);
        let mut guard = 0;
        while chosen.len() < deg && guard < 100 * deg {
            let t = pool[rng.random_range(0..pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        chosen.sort_unstable();
        for &t in &chosen {
            edges.push((t, v));
            pool.push(t);
            pool.push(v);
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// R-MAT (recursive matrix) graph [Chakrabarti–Zhan–Faloutsos]: each edge
/// lands in a quadrant of the adjacency matrix with probabilities
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` (the Graph500 mix),
/// recursively, producing a heavy-tailed power-law degree distribution.
///
/// `attempts` edge samples are drawn; self-loops are rerolled and
/// duplicate pairs merge in CSR construction, so `m ≤ attempts`. Vertex
/// ids are sampled in the enclosing power-of-two square and rejected when
/// `≥ n`, which keeps `n` exact without disturbing the skew. Deterministic
/// given the `Rng`.
pub fn rmat<R: Rng>(n: usize, attempts: usize, rng: &mut R) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let scale = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut edges = Vec::with_capacity(attempts);
    let mut draws = 0usize;
    // generous cap: rejection discards < 1/2 of the square, self-loops a
    // sliver — the cap only guards degenerate rng behaviour
    let max_draws = attempts.saturating_mul(16).max(1024);
    while edges.len() < attempts && draws < max_draws {
        draws += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let p: f64 = rng.random();
            let (du, dv) = if p < A {
                (0, 0)
            } else if p < A + B {
                (0, 1)
            } else if p < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v && (u as usize) < n && (v as usize) < n {
            edges.push((u, v));
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// Random geometric graph on the unit square: vertices are random points,
/// edges join pairs within `radius`, weighted by scaled Euclidean distance
/// (minimum weight 1). Road-network-like locality.
pub fn random_geometric<R: Rng>(n: usize, radius: f64, rng: &mut R) -> CsrGraph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    // grid-bucket the points so this is O(n + edges), not O(n^2)
    let cell = radius.max(1e-9);
    let cells = (1.0 / cell).ceil() as i64 + 1;
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets
            .entry(((x / cell) as i64, (y / cell) as i64))
            .or_default()
            .push(i as u32);
    }
    let scale = 1000.0 / radius; // distances land in [1, ~1000]
    let mut edges = Vec::new();
    for (&(cx, cy), members) in &buckets {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
                    continue;
                }
                if let Some(others) = buckets.get(&(nx, ny)) {
                    for &a in members {
                        for &b in others {
                            if a < b {
                                let (ax, ay) = pts[a as usize];
                                let (bx, by) = pts[b as usize];
                                let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                                if d <= radius {
                                    let w = ((d * scale) as u64).max(1);
                                    edges.push(Edge::new(a, b, w));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Random recursive tree on `n` vertices (each vertex attaches to a uniform
/// earlier vertex).
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> CsrGraph {
    let edges = (1..n as u32)
        .map(|v| (rng.random_range(0..v), v))
        .collect::<Vec<_>>();
    CsrGraph::from_unit_edges(n, edges)
}

/// Reweight a graph with independent uniform weights in `[lo, hi]`.
pub fn with_uniform_weights<R: Rng>(g: &CsrGraph, lo: Weight, hi: Weight, rng: &mut R) -> CsrGraph {
    assert!(1 <= lo && lo <= hi);
    CsrGraph::from_edges(
        g.n(),
        g.edges()
            .iter()
            .map(|e| Edge::new(e.u, e.v, rng.random_range(lo..=hi))),
    )
}

/// Reweight with log-uniform weights spanning the ratio `U`: weights are
/// `2^X` for `X` uniform in `[0, log2 U]`, clamped to `[1, U]`. This is the
/// weight distribution that exercises every bucket of the §3 hierarchy.
pub fn with_log_uniform_weights<R: Rng>(g: &CsrGraph, ratio_u: f64, rng: &mut R) -> CsrGraph {
    assert!(ratio_u >= 1.0);
    let logu = ratio_u.log2();
    CsrGraph::from_edges(
        g.n(),
        g.edges().iter().map(|e| {
            let x = rng.random::<f64>() * logu;
            let w = (x.exp2()).round().clamp(1.0, ratio_u) as Weight;
            Edge::new(e.u, e.v, w)
        }),
    )
}

/// Caterpillar: a path of length `spine` with `legs` pendant vertices per
/// spine vertex. Adversarial for clustering (many boundary vertices).
pub fn caterpillar(spine: usize, legs: usize) -> CsrGraph {
    let n = spine * (legs + 1);
    let mut edges = Vec::new();
    for s in 0..spine {
        let sid = (s * (legs + 1)) as u32;
        if s + 1 < spine {
            edges.push((sid, ((s + 1) * (legs + 1)) as u32));
        }
        for l in 1..=legs {
            edges.push((sid, sid + l as u32));
        }
    }
    CsrGraph::from_unit_edges(n, edges)
}

/// Two cliques of size `k` joined by a path of length `bridge`; the classic
/// dumbbell that separates diameter-sensitive algorithms.
pub fn dumbbell(k: usize, bridge: usize) -> CsrGraph {
    assert!(k >= 2 && bridge >= 1);
    let n = 2 * k + bridge.saturating_sub(1);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let clique = |base: u32, edges: &mut Vec<(u32, u32)>| {
        for u in 0..k as u32 {
            for v in (u + 1)..k as u32 {
                edges.push((base + u, base + v));
            }
        }
    };
    clique(0, &mut edges);
    clique((k + bridge - 1) as u32, &mut edges);
    // path from vertex k-1 (in clique A) to vertex k+bridge-1 (first of B)
    let mut prev = (k - 1) as u32;
    for i in 0..bridge {
        let next = (k + i) as u32;
        edges.push((prev, next));
        prev = next;
    }
    CsrGraph::from_unit_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::components_union_find;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.m(), 7);
        for v in 0..7 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_degrees() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        // horizontal: 3*3, vertical: 2*4
        assert_eq!(g.m(), 17);
    }

    #[test]
    fn grid2d_adds_diagonals() {
        let g = grid2d(3, 4);
        assert_eq!(g.n(), 12);
        // 4-neighbor grid edges (17) plus 2 diagonals per interior cell
        // pair: (rows-1)*(cols-1)*2 = 12
        assert_eq!(g.m(), 17 + 12);
        // interior vertex has all 8 neighbors
        assert_eq!(g.degree(5), 8);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g1 = rmat(500, 2000, &mut StdRng::seed_from_u64(11));
        let g2 = rmat(500, 2000, &mut StdRng::seed_from_u64(11));
        assert_eq!(g1.edges(), g2.edges());
        assert_eq!(g1.n(), 500);
        assert!(g1.m() > 500, "expected a dense-ish sample, m={}", g1.m());
        // heavy tail: the max degree dwarfs the mean
        let maxdeg = (0..500u32).map(|v| g1.degree(v)).max().unwrap();
        let mean = 2.0 * g1.m() as f64 / 500.0;
        assert!(
            maxdeg as f64 > 4.0 * mean,
            "no hub: max {maxdeg} vs mean {mean:.1}"
        );
        // non-power-of-two n must hold exactly (rejection sampling)
        let g3 = rmat(100, 300, &mut StdRng::seed_from_u64(12));
        assert_eq!(g3.n(), 100);
        assert!(g3.edges().iter().all(|e| (e.v as usize) < 100));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.m(), 40);
    }

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(100, 250, &mut rng);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 250);
    }

    #[test]
    fn connected_random_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = connected_random(200, 100, &mut rng);
        assert_eq!(g.m(), 299);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn preferential_attachment_basics() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(300, 3, &mut rng);
        assert_eq!(g.n(), 300);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
        // heavy tail: some vertex has much more than average degree
        let maxdeg = (0..300u32).map(|v| g.degree(v)).max().unwrap();
        assert!(maxdeg >= 10, "expected a hub, max degree {maxdeg}");
    }

    #[test]
    fn geometric_weights_scale_with_distance() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_geometric(400, 0.12, &mut rng);
        assert!(g.m() > 0);
        assert!(g.min_weight().unwrap() >= 1);
        assert!(g.max_weight().unwrap() <= 1001);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_tree(128, &mut rng);
        assert_eq!(g.m(), 127);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn uniform_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = with_uniform_weights(&cycle(50), 5, 20, &mut rng);
        assert!(g.min_weight().unwrap() >= 5);
        assert!(g.max_weight().unwrap() <= 20);
    }

    #[test]
    fn log_uniform_weights_span_the_ratio() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = with_log_uniform_weights(&complete(40), 1024.0, &mut rng);
        assert!(g.min_weight().unwrap() >= 1);
        assert!(g.max_weight().unwrap() <= 1024);
        assert!(
            g.weight_ratio() > 16.0,
            "weights should spread, U={}",
            g.weight_ratio()
        );
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 3 + 12);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(5, 4);
        let (c, _) = components_union_find(&g);
        assert_eq!(c.count, 1);
        assert_eq!(g.n(), 13);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = erdos_renyi(80, 160, &mut StdRng::seed_from_u64(42));
        let g2 = erdos_renyi(80, 160, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1.edges(), g2.edges());
        let t1 = random_tree(64, &mut StdRng::seed_from_u64(9));
        let t2 = random_tree(64, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1.edges(), t2.edges());
    }
}
