//! The sampled-clique exact hopset — Figure 2's `[KS97, SS99]` row.
//!
//! Sample `s = Θ(√(n·log n))` vertices uniformly; run an exact SSSP from
//! each; connect every sampled pair by an edge carrying the exact
//! distance. Any shortest path with `≥ c·(n/s)·log n` hops touches a
//! sampled vertex in every window of that length w.h.p., so the path has
//! an equivalent using `O(n/s · log n + 2)` graph hops plus one clique
//! hop — the `O(√n)`-hop, zero-distortion trade-off of Klein–Subramanian
//! and Shi–Spencer, at `O(m·s)` construction work (the `O(m√n)` column).

use psh_core::hopset::Hopset;
use psh_graph::traversal::dial::dial_sssp;
use psh_graph::{CsrGraph, Edge, VertexId, INF};
use psh_pram::Cost;
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

/// Build the sampled-clique hopset with an explicit sample size.
pub fn sampled_clique_hopset_with_size<R: Rng>(
    g: &CsrGraph,
    sample_size: usize,
    rng: &mut R,
) -> (Hopset, Cost) {
    let n = g.n();
    let mut verts: Vec<VertexId> = (0..n as u32).collect();
    verts.shuffle(rng);
    verts.truncate(sample_size.min(n));
    verts.sort_unstable();

    // one exact SSSP per sample, all in parallel
    let searches: Vec<(Vec<u64>, Cost)> = verts
        .par_iter()
        .map(|&v| {
            let (sssp, c) = dial_sssp(g, v);
            (sssp.dist, c)
        })
        .collect();
    let mut edges = Vec::new();
    for (i, &u) in verts.iter().enumerate() {
        for &v in verts.iter().skip(i + 1) {
            let d = searches[i].0[v as usize];
            if d != INF && d > 0 {
                edges.push(Edge::new(u, v, d));
            }
        }
    }
    let cost = Cost::par_all(searches.iter().map(|(_, c)| *c))
        .then(Cost::flat((verts.len() * verts.len()) as u64));
    let clique_count = edges.len();
    (
        Hopset {
            n,
            edges,
            star_count: 0,
            clique_count,
            levels: 1,
        },
        cost,
    )
}

/// Build with the standard sample size `√(n·ln n)` (at least 2).
pub fn sampled_clique_hopset<R: Rng>(g: &CsrGraph, rng: &mut R) -> (Hopset, Cost) {
    let n = g.n().max(2) as f64;
    let s = ((n * n.ln()).sqrt().ceil() as usize).clamp(2, g.n());
    sampled_clique_hopset_with_size(g, s, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
    use psh_graph::traversal::dijkstra::dijkstra_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clique_edges_carry_exact_distances() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::grid(8, 8);
        let g = generators::with_uniform_weights(&base, 1, 5, &mut rng);
        let (h, _) = sampled_clique_hopset_with_size(&g, 10, &mut rng);
        for e in &h.edges {
            assert_eq!(e.w, dijkstra_pair(&g, e.u, e.v), "edge ({}, {})", e.u, e.v);
        }
    }

    #[test]
    fn hopset_gives_exact_distance_in_few_hops() {
        // long path: sampled vertices break it into short windows
        let n = 400;
        let g = generators::path(n);
        let mut rng = StdRng::seed_from_u64(2);
        let (h, _) = sampled_clique_hopset(&g, &mut rng);
        let extra = ExtraEdges::from_edges(n, &h.edges);
        let (d, hops, _) = hop_limited_pair(&g, Some(&extra), 0, (n - 1) as u32, n / 3);
        assert_eq!(d, (n - 1) as u64, "sampled-clique hopsets are exact");
        assert!((hops as usize) < n - 1);
    }

    #[test]
    fn size_is_at_most_sample_squared() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(300, 900, &mut rng);
        let (h, _) = sampled_clique_hopset_with_size(&g, 20, &mut rng);
        assert!(h.size() <= 20 * 19 / 2);
        assert_eq!(h.star_count, 0);
    }

    #[test]
    fn sample_size_clamps_to_n() {
        let g = generators::path(5);
        let mut rng = StdRng::seed_from_u64(4);
        let (h, _) = sampled_clique_hopset_with_size(&g, 100, &mut rng);
        assert_eq!(h.size(), 5 * 4 / 2);
    }
}
