//! The greedy `t`-spanner [ADD+93] — Figure 1's quality-optimal,
//! work-heavy sequential baseline.
//!
//! Process edges in increasing weight; keep an edge iff the spanner built
//! so far does not already connect its endpoints within `t·w`. A classic
//! girth argument shows the result has `O(n^{1+1/k})` edges for
//! `t = 2k−1` with the best known constant — which is why the experiment
//! harness uses it as the *size* yardstick for the ESTC spanner.
//!
//! Work is `O(m)` bounded Dijkstra runs (`O(m·n^{1+1/k})` in the paper's
//! table); this baseline is intentionally sequential and unmeasured by the
//! cost model beyond a work count.

use psh_core::spanner::Spanner;
use psh_graph::traversal::dijkstra::dijkstra_bounded;
use psh_graph::{CsrGraph, Edge, INF};
use psh_pram::Cost;

/// Build the greedy `t`-spanner (use `t = 2k − 1` for the standard
/// size/stretch trade-off).
pub fn greedy_spanner(g: &CsrGraph, t: f64) -> (Spanner, Cost) {
    assert!(t >= 1.0, "stretch must be >= 1");
    let n = g.n();
    let mut order: Vec<Edge> = g.edges().to_vec();
    order.sort_unstable_by_key(|e| (e.w, e.u, e.v));
    let mut kept: Vec<Edge> = Vec::new();
    let mut work: u64 = 0;
    for e in order {
        let budget = (t * e.w as f64).floor() as u64;
        // distance in the current spanner, bounded by the budget
        let h = CsrGraph::from_edges(n, kept.iter().copied());
        let d = dijkstra_bounded(&h, e.u, budget).dist[e.v as usize];
        work += h.m() as u64 + 1;
        if d == INF || d > budget {
            kept.push(e);
        }
    }
    // Rebuilding the spanner graph per edge is O(m²) — fine for the
    // test/experiment scales this baseline runs at; `work` reflects it.
    (Spanner::new(n, kept), Cost::new(work, work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_core::spanner::verify::max_stretch_exact;
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stretch_is_exactly_bounded_by_t() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = generators::connected_random(60, 150, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 10, &mut rng);
        for t in [1.0, 3.0, 5.0] {
            let (s, _) = greedy_spanner(&g, t);
            assert!(s.is_subgraph_of(&g));
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch <= t + 1e-9,
                "t={t}: greedy stretch {stretch} exceeds t"
            );
        }
    }

    #[test]
    fn t_equals_one_keeps_all_shortest_path_edges() {
        let g = generators::grid(4, 4);
        let (s, _) = greedy_spanner(&g, 1.0);
        // every unit edge is its own unique shortest path in a grid
        assert_eq!(s.size(), g.m());
    }

    #[test]
    fn large_t_on_complete_graph_gives_near_tree() {
        let g = generators::complete(20);
        let (s, _) = greedy_spanner(&g, 100.0);
        // with unit weights, stretch 100 lets one spanning structure serve
        assert!(s.size() <= 2 * g.n(), "kept {} edges", s.size());
        assert!(max_stretch_exact(&g, &s).is_finite());
    }

    #[test]
    fn size_decreases_with_t() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi(80, 800, &mut rng);
        let (s3, _) = greedy_spanner(&g, 3.0);
        let (s7, _) = greedy_spanner(&g, 7.0);
        assert!(s7.size() <= s3.size());
    }
}
