//! The Baswana–Sen randomized `(2k−1)`-spanner \[BS07\] — Figure 1's
//! linear-time baseline, size `O(k·n^{1+1/k})` in expectation.
//!
//! `k−1` clustering phases followed by a vertex–cluster joining phase.
//! In phase `i`, each cluster of the current clustering survives with
//! probability `n^{−1/k}`; a vertex whose cluster dies either (a) has no
//! sampled neighboring cluster — it adds its lightest edge to *every*
//! neighboring cluster and retires, or (b) joins the nearest sampled
//! cluster through its lightest edge and additionally keeps one edge to
//! every neighboring cluster strictly lighter than that connection.
//!
//! The `O(k)` size overhead relative to the paper's construction — each
//! vertex can contribute edges in **every** phase — is precisely the gap
//! Figure 1 highlights (`O(k·n^{1+1/k})` vs `O(n^{1+1/k})`).

use psh_core::spanner::Spanner;
use psh_graph::{CsrGraph, Weight};
use psh_pram::Cost;
use rand::Rng;

const NONE: u32 = u32::MAX;

/// Build a Baswana–Sen `(2k−1)`-spanner. `k >= 1` must be an integer.
pub fn baswana_sen_spanner<R: Rng>(g: &CsrGraph, k: usize, rng: &mut R) -> (Spanner, Cost) {
    assert!(k >= 1, "k must be at least 1");
    let n = g.n();
    if n == 0 || g.m() == 0 {
        return (Spanner::new(n, Vec::new()), Cost::ZERO);
    }
    let p = (n as f64).powf(-1.0 / k as f64);
    // cluster[v] = id (the original center vertex) of v's cluster, or NONE
    let mut cluster: Vec<u32> = (0..n as u32).collect();
    let mut alive: Vec<bool> = vec![true; g.m()];
    let mut kept: Vec<u32> = Vec::new(); // canonical eids
    let mut work: u64 = 0;
    let mut depth: u64 = 0;

    for _phase in 1..k {
        // --- sample clusters ------------------------------------------
        let mut sampled = vec![false; n];
        for c in 0..n as u32 {
            // a cluster id is "live" if some vertex carries it
            // (sampling dead ids is harmless — nobody references them)
            if rng.random::<f64>() < p {
                sampled[c as usize] = true;
            }
        }
        let mut next_cluster: Vec<u32> = vec![NONE; n];
        let mut remove_mark: Vec<bool> = vec![false; g.m()];

        for v in 0..n as u32 {
            let cv = cluster[v as usize];
            if cv == NONE {
                continue;
            }
            if sampled[cv as usize] {
                next_cluster[v as usize] = cv; // sampled clusters persist
                continue;
            }
            // lightest alive edge per neighboring cluster
            let mut best: Vec<(u32, Weight, u32)> = Vec::new(); // (cluster, w, eid)
            for (t, w, eid) in g.neighbors_with_eid(v) {
                work += 1;
                if !alive[eid as usize] {
                    continue;
                }
                let ct = cluster[t as usize];
                if ct == NONE || ct == cv {
                    continue;
                }
                best.push((ct, w, eid));
            }
            best.sort_unstable();
            best.dedup_by_key(|&mut (c, _, _)| c);
            // nearest sampled neighboring cluster
            let nearest_sampled = best
                .iter()
                .filter(|&&(c, _, _)| sampled[c as usize])
                .min_by_key(|&&(_, w, eid)| (w, eid))
                .copied();
            match nearest_sampled {
                None => {
                    // (a): connect to every neighboring cluster, retire
                    for &(c, _, eid) in &best {
                        kept.push(eid);
                        // remove all v-edges into that cluster
                        mark_edges_to_cluster(g, v, c, &cluster, &mut remove_mark);
                        work += 1;
                    }
                    // v leaves the clustering; its remaining edges go too
                    for (_, _, eid) in g.neighbors_with_eid(v) {
                        remove_mark[eid as usize] = true;
                    }
                }
                Some((cj, wj, ej)) => {
                    // (b): join cj via its lightest edge
                    kept.push(ej);
                    next_cluster[v as usize] = cj;
                    mark_edges_to_cluster(g, v, cj, &cluster, &mut remove_mark);
                    // keep one edge to each strictly lighter cluster
                    for &(c, w, eid) in &best {
                        if (w, eid) < (wj, ej) && c != cj {
                            kept.push(eid);
                            mark_edges_to_cluster(g, v, c, &cluster, &mut remove_mark);
                        }
                    }
                }
            }
        }

        // apply removals; drop edges inside one next-phase cluster
        for (eid, e) in g.edges().iter().enumerate() {
            if !alive[eid] {
                continue;
            }
            let (cu, cv2) = (next_cluster[e.u as usize], next_cluster[e.v as usize]);
            if remove_mark[eid] || cu == NONE || cv2 == NONE || cu == cv2 {
                alive[eid] = false;
            }
        }
        cluster = next_cluster;
        work += g.m() as u64 + n as u64;
        depth += 3; // sample, decide, filter — constant parallel rounds
    }

    // --- final vertex–cluster joining phase ---------------------------
    for v in 0..n as u32 {
        let mut best: Vec<(u32, Weight, u32)> = Vec::new();
        for (t, w, eid) in g.neighbors_with_eid(v) {
            work += 1;
            if !alive[eid as usize] {
                continue;
            }
            let ct = cluster[t as usize];
            if ct == NONE || ct == cluster[v as usize] {
                continue;
            }
            best.push((ct, w, eid));
        }
        best.sort_unstable();
        best.dedup_by_key(|&mut (c, _, _)| c);
        for (_, _, eid) in best {
            kept.push(eid);
        }
    }
    depth += 1;

    kept.sort_unstable();
    kept.dedup();
    let mut edges: Vec<_> = kept.iter().map(|&eid| g.edge(eid)).collect();
    // The cluster forests are implicit in the kept connection edges; add
    // intra-cluster tree edges from every phase by keeping each vertex's
    // lightest edge into its own final cluster if not already present —
    // BS keeps these as it goes (the "joins" above are those edges).
    edges.sort_unstable();
    edges.dedup();
    (Spanner::new(n, edges), Cost::new(work, depth))
}

/// Mark all of `v`'s edges whose other endpoint lies in cluster `c`.
fn mark_edges_to_cluster(g: &CsrGraph, v: u32, c: u32, cluster: &[u32], remove_mark: &mut [bool]) {
    for (t, _, eid) in g.neighbors_with_eid(v) {
        if cluster[t as usize] == c {
            remove_mark[eid as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_core::spanner::verify::max_stretch_exact;
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stretch_within_2k_minus_1() {
        for (seed, k) in [(1u64, 2usize), (2, 3), (3, 4)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_random(100, 300, &mut rng);
            let (s, _) = baswana_sen_spanner(&g, k, &mut rng);
            assert!(s.is_subgraph_of(&g));
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "k={k}: stretch {stretch} exceeds 2k-1"
            );
        }
    }

    #[test]
    fn weighted_stretch_within_2k_minus_1() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let base = generators::connected_random(80, 250, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 30, &mut rng);
            let k = 3;
            let (s, _) = baswana_sen_spanner(&g, k, &mut rng);
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "seed {seed}: weighted stretch {stretch}"
            );
        }
    }

    #[test]
    fn k_equals_one_returns_whole_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(40, 100, &mut rng);
        let (s, _) = baswana_sen_spanner(&g, 1, &mut rng);
        assert_eq!(s.size(), g.m(), "a 1-spanner must keep every edge");
    }

    #[test]
    fn sparsifies_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::erdos_renyi(200, 6000, &mut rng);
        let (s, _) = baswana_sen_spanner(&g, 3, &mut rng);
        assert!(
            s.size() < g.m() / 2,
            "spanner size {} of m={}",
            s.size(),
            g.m()
        );
    }

    #[test]
    fn empty_graph_ok() {
        let g = CsrGraph::from_edges(5, std::iter::empty());
        let mut rng = StdRng::seed_from_u64(7);
        let (s, _) = baswana_sen_spanner(&g, 2, &mut rng);
        assert_eq!(s.size(), 0);
    }
}
