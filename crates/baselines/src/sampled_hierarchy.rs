//! A multi-level sampled hopset — the stand-in for Cohen's \[Coh00\]
//! pairwise-cover construction in Figure 2. The substitution: Cohen's
//! full pairwise covers are replaced by per-level hop-radius-bounded
//! sampling with the same size/accuracy shape, because the cover
//! machinery is orthogonal to the comparison the figure makes.
//!
//! Level `ℓ` samples each vertex with probability `p^ℓ` and connects every
//! sampled vertex to all level-`ℓ` samples within a hop radius that
//! doubles per level (distances computed exactly by bounded searches).
//! Like Cohen's construction this yields a *hierarchy* of progressively
//! sparser, longer shortcuts and polylog-ish hop counts at
//! `O(n^{1+o(1)})` size — enough to reproduce the qualitative row of
//! Figure 2 (polylog hops, more-than-linear size, more-than-linear work)
//! without reimplementing the full pairwise-cover machinery.

use psh_core::hopset::Hopset;
use psh_graph::traversal::dial::dial_sssp_bounded;
use psh_graph::{CsrGraph, Edge, VertexId, INF};
use psh_pram::Cost;
use rand::Rng;
use rayon::prelude::*;

/// Configuration for the sampled hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Per-level survival probability (e.g. 0.5).
    pub thinning: f64,
    /// Hop/distance radius of level 0 searches.
    pub base_radius: u64,
    /// Number of levels.
    pub levels: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            thinning: 0.4,
            base_radius: 4,
            levels: 6,
        }
    }
}

/// Build the sampled-hierarchy hopset.
pub fn sampled_hierarchy_hopset<R: Rng>(
    g: &CsrGraph,
    cfg: &HierarchyConfig,
    rng: &mut R,
) -> (Hopset, Cost) {
    assert!(cfg.thinning > 0.0 && cfg.thinning < 1.0);
    let n = g.n();
    let mut active: Vec<VertexId> = (0..n as u32).collect();
    let mut edges: Vec<Edge> = Vec::new();
    let mut cost = Cost::ZERO;
    let mut radius = cfg.base_radius;

    for _level in 0..cfg.levels {
        // thin the sample
        active.retain(|_| rng.random::<f64>() < cfg.thinning);
        if active.len() < 2 {
            break;
        }
        let in_sample: Vec<bool> = {
            let mut m = vec![false; n];
            for &v in &active {
                m[v as usize] = true;
            }
            m
        };
        // bounded exact search from each sample; connect to reached samples
        let results: Vec<(Vec<Edge>, Cost)> = active
            .par_iter()
            .map(|&v| {
                let (sssp, c) = dial_sssp_bounded(g, &[(v, 0)], radius);
                let mut out = Vec::new();
                for (u, &d) in sssp.dist.iter().enumerate() {
                    if d != INF && d > 0 && in_sample[u] && (u as u32) > v {
                        out.push(Edge::new(v, u as u32, d));
                    }
                }
                (out, c)
            })
            .collect();
        cost = cost.then(Cost::par_all(results.iter().map(|(_, c)| *c)));
        for (es, _) in results {
            edges.extend(es);
        }
        radius = radius.saturating_mul(2);
    }

    let clique_count = edges.len();
    (
        Hopset {
            n,
            edges,
            star_count: 0,
            clique_count,
            levels: cfg.levels,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
    use psh_graph::traversal::dijkstra::dijkstra_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edges_are_exact_distances() {
        let g = generators::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let (h, _) = sampled_hierarchy_hopset(&g, &HierarchyConfig::default(), &mut rng);
        for e in h.edges.iter().take(50) {
            assert_eq!(e.w, dijkstra_pair(&g, e.u, e.v));
        }
    }

    #[test]
    fn reduces_hops_on_paths() {
        let n = 300;
        let g = generators::path(n);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = HierarchyConfig {
            thinning: 0.5,
            base_radius: 8,
            levels: 8,
        };
        let (h, _) = sampled_hierarchy_hopset(&g, &cfg, &mut rng);
        let extra = ExtraEdges::from_edges(n, &h.edges);
        let (d, hops, _) = hop_limited_pair(&g, Some(&extra), 0, (n - 1) as u32, n);
        assert_eq!(d, (n - 1) as u64, "hierarchy edges are exact");
        assert!(
            (hops as usize) < (n - 1) / 2,
            "expected substantial hop reduction, got {hops}"
        );
    }

    #[test]
    fn empty_when_thinning_kills_everything() {
        let g = generators::path(10);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = HierarchyConfig {
            thinning: 0.01,
            base_radius: 2,
            levels: 3,
        };
        let (h, _) = sampled_hierarchy_hopset(&g, &cfg, &mut rng);
        // overwhelmingly likely no two samples survive level 1
        assert!(h.size() <= 2);
    }
}
