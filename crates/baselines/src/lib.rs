//! # psh-baselines — the comparison rows of Figures 1 and 2
//!
//! Every algorithm the paper's tables compare against, implemented from
//! scratch:
//!
//! * [`greedy_spanner`] — the classic greedy `(2k−1)`-spanner of
//!   Althöfer et al. [ADD+93]: optimal size `O(n^{1+1/k})`, sequential,
//!   `O(m·n^{1+1/k})` work. Figure 1, row 1 (weighted).
//! * [`baswana_sen`] — the randomized linear-time `(2k−1)`-spanner of
//!   Baswana–Sen \[BS07\]: size `O(k·n^{1+1/k})`, `O(km)` work. Figure 1,
//!   row 2 (weighted) and the \[BKMP10\]-quality row (unweighted).
//! * [`ks_hopset`] — the sampled-clique exact hopset in the spirit of
//!   \[KS97\]/\[SS99\]/\[UY91\]: sample `Θ(√(n log n))` vertices, connect them
//!   by exact distances. `O(√n)`-ish hops, `O(n)` size, `O(m√n)` work.
//!   Figure 2, row 1.
//! * [`sampled_hierarchy`] — a multi-level sampling hopset standing in for
//!   Cohen \[Coh00\] (the substitution rationale is documented in [`sampled_hierarchy`]).
//!   Figure 2, rows 2–3.

pub mod baswana_sen;
pub mod greedy_spanner;
pub mod ks_hopset;
pub mod sampled_hierarchy;
