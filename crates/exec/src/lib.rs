//! # psh-exec — the real parallel execution layer
//!
//! The paper's algorithms are *level-synchronous*: each round does a bulk
//! of independent work (filter claims, sort them, expand a frontier) and
//! then synchronizes. Until this crate existed, the workspace only
//! *modelled* that parallelism in the [`psh_pram`](../psh_pram/index.html)
//! work/depth currency while every hot loop executed sequentially through
//! the vendored rayon stub. `psh-exec` supplies the missing substrate: a
//! `std::thread`-based, work-sharing pool (no external registry crates)
//! with deterministic chunked combinators, selected through an
//! [`ExecutionPolicy`].
//!
//! ## Determinism is the contract
//!
//! Every combinator returns results whose *values and order* are
//! byte-identical to sequential execution, for any thread count:
//!
//! * [`Executor::par_map`] / [`Executor::par_flat_map`] /
//!   [`Executor::par_filter`] split the input into chunks, process chunks
//!   concurrently, and concatenate the per-chunk outputs **in chunk
//!   order** — exactly the sequential output, independent of chunk
//!   boundaries and scheduling;
//! * [`Executor::par_sort_unstable`] requires a total order over `Copy`
//!   items (every field participates in `Ord`), so the fully sorted
//!   sequence is unique no matter how the parallel merge interleaves;
//! * [`Executor::par_map_chunks`] and [`Executor::par_for_each_init`]
//!   expose the chunk structure (for per-chunk scratch state); callers
//!   must combine per-chunk results associatively, which every in-repo
//!   caller does.
//!
//! The `seq↔par` equivalence is enforced end-to-end by the
//! `parallel_equivalence` integration tests and by a `PSH_THREADS` CI
//! matrix: the same seeds must produce byte-identical clusterings,
//! spanners, and hopsets under `Sequential` and `Parallel { 2, 4, 8 }`.
//!
//! ## Picking a policy
//!
//! ```
//! use psh_exec::{ExecutionPolicy, Executor};
//!
//! // explicit
//! let exec = Executor::new(ExecutionPolicy::Parallel { threads: 4 });
//! let doubled = exec.par_map(&[1u64, 2, 3], 1, |&x| 2 * x);
//! assert_eq!(doubled, vec![2, 4, 6]);
//!
//! // or process-wide: PSH_THREADS=1 forces Sequential, PSH_THREADS=k
//! // forces Parallel { k }, unset uses the machine's parallelism.
//! let _ = Executor::current();
//! ```

mod pool;

pub use pool::Scope;

use pool::Pool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How the algorithms should execute.
///
/// `Sequential` runs every combinator inline on the calling thread (the
/// vendored rayon stub's semantics); `Parallel { threads }` runs them on a
/// shared work-sharing pool sized so that `threads` threads (including the
/// caller, which always helps) are busy. Artifacts are byte-identical
/// either way — the policy only chooses wall-clock behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecutionPolicy {
    /// Run inline on the calling thread.
    Sequential,
    /// Run on a pool of `threads` threads (callers count toward the
    /// total; `threads <= 1` degenerates to `Sequential`).
    Parallel { threads: usize },
}

impl ExecutionPolicy {
    /// Number of threads this policy keeps busy.
    pub fn threads(self) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => threads.max(1),
        }
    }

    /// Policy from the environment: `PSH_THREADS=1` → `Sequential`,
    /// `PSH_THREADS=k` → `Parallel { k }`; unset or unparsable falls back
    /// to [`std::thread::available_parallelism`] (sequential on one core).
    pub fn from_env() -> Self {
        let threads = std::env::var("PSH_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        if threads <= 1 {
            ExecutionPolicy::Sequential
        } else {
            ExecutionPolicy::Parallel { threads }
        }
    }

    /// The executor realizing this policy (pools are cached per thread
    /// count and shared process-wide).
    pub fn executor(self) -> Executor {
        Executor::new(self)
    }
}

impl Default for ExecutionPolicy {
    /// The environment-driven policy ([`ExecutionPolicy::from_env`]).
    fn default() -> Self {
        ExecutionPolicy::from_env()
    }
}

impl std::fmt::Display for ExecutionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionPolicy::Sequential => write!(f, "sequential"),
            ExecutionPolicy::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

/// Below this length a parallel sort cannot beat a sequential one.
const SORT_GRAIN: usize = 4096;

/// Oversubscription factor: more chunks than threads so uneven chunks
/// (frontier expansions have skewed degrees) still balance.
const CHUNKS_PER_THREAD: usize = 4;

fn pool_for(threads: usize) -> Arc<Pool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(
        pools
            .lock()
            .unwrap()
            .entry(threads)
            .or_insert_with(|| Arc::new(Pool::new(threads))),
    )
}

/// A handle executing work under one [`ExecutionPolicy`]. Cheap to clone
/// (pools are shared, process-wide, and live forever once created).
#[derive(Clone)]
pub struct Executor {
    pool: Option<Arc<Pool>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::current()
    }
}

impl Executor {
    /// Executor for `policy`. `Parallel { 0 | 1 }` normalizes to
    /// sequential.
    pub fn new(policy: ExecutionPolicy) -> Executor {
        match policy {
            ExecutionPolicy::Sequential | ExecutionPolicy::Parallel { threads: 0 | 1 } => {
                Executor { pool: None }
            }
            ExecutionPolicy::Parallel { threads } => Executor {
                pool: Some(pool_for(threads)),
            },
        }
    }

    /// The strictly sequential executor.
    pub fn sequential() -> Executor {
        Executor { pool: None }
    }

    /// The process-wide default executor, resolved once from
    /// [`ExecutionPolicy::from_env`] and cached.
    pub fn current() -> Executor {
        static CURRENT: OnceLock<Executor> = OnceLock::new();
        CURRENT
            .get_or_init(|| Executor::new(ExecutionPolicy::from_env()))
            .clone()
    }

    /// Number of threads this executor keeps busy (1 when sequential).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map(|p| p.threads).unwrap_or(1)
    }

    /// True when work actually runs on a pool.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Structured fork/join: tasks spawned on the [`Scope`] all complete
    /// before `scope` returns, and may borrow from the enclosing frame.
    /// The calling thread helps drain the pool while waiting, so nested
    /// scopes cannot deadlock. The first panicking task's payload is
    /// re-raised here after the batch drains.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope, '_>) -> R) -> R {
        pool::run_scope(self.pool.as_deref(), f)
    }

    /// Run `a` and `b` concurrently, returning both results.
    pub fn join<RA: Send, RB: Send>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB) {
        if self.pool.is_none() {
            return (a(), b());
        }
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        let ra = self.scope(|s| {
            s.spawn(|| {
                *rb.lock().unwrap() = Some(b());
            });
            a()
        });
        (ra, rb.into_inner().unwrap().unwrap())
    }

    /// How many chunks to cut `len` items into for roughly `grain`-sized
    /// parallel work units. Returns 1 whenever parallelism cannot pay.
    fn chunk_count(&self, len: usize, grain: usize) -> usize {
        let grain = grain.max(1);
        match &self.pool {
            None => 1,
            Some(_) if len <= grain => 1,
            Some(p) => len.div_ceil(grain).min(p.threads * CHUNKS_PER_THREAD),
        }
    }

    /// Map each chunk of `items` to one result, concurrently; results are
    /// returned in chunk order. Chunk boundaries are unspecified (they
    /// depend on the thread count), so callers must only combine the
    /// results associatively — prefer [`Executor::par_map`] /
    /// [`Executor::par_flat_map`], which hide the boundaries entirely.
    pub fn par_map_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        grain: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let count = self.chunk_count(items.len(), grain);
        if count <= 1 {
            return vec![f(items)];
        }
        let size = items.len().div_ceil(count);
        let chunks: Vec<&[T]> = items.chunks(size).collect();
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(chunks.len(), || None);
        self.scope(|s| {
            for (slot, chunk) in out.iter_mut().zip(&chunks) {
                let f = &f;
                s.spawn(move || *slot = Some(f(chunk)));
            }
        });
        out.into_iter()
            .map(|r| r.expect("chunk completed"))
            .collect()
    }

    /// Map every item, preserving order. Deterministic: equal to the
    /// sequential `items.iter().map(f).collect()` for any thread count.
    pub fn par_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        grain: usize,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let parts = self.par_map_chunks(items, grain, |chunk| {
            chunk.iter().map(&f).collect::<Vec<R>>()
        });
        flatten(parts)
    }

    /// Emit any number of outputs per item via `f(item, &mut out)`;
    /// outputs appear in item order. Deterministic for any thread count.
    pub fn par_flat_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        grain: usize,
        f: impl Fn(&T, &mut Vec<R>) + Sync,
    ) -> Vec<R> {
        let parts = self.par_map_chunks(items, grain, |chunk| {
            let mut out = Vec::new();
            for item in chunk {
                f(item, &mut out);
            }
            out
        });
        flatten(parts)
    }

    /// Keep items satisfying `pred`, preserving order (`T: Copy` — the
    /// engine's claims are small PODs).
    pub fn par_filter<T: Copy + Sync + Send>(
        &self,
        items: &[T],
        grain: usize,
        pred: impl Fn(&T) -> bool + Sync,
    ) -> Vec<T> {
        self.par_flat_map(items, grain, |item, out| {
            if pred(item) {
                out.push(*item);
            }
        })
    }

    /// Visit every item with per-chunk scratch state built by `init` —
    /// the pool analogue of rayon's `for_each_init`. Item visit order
    /// within a chunk is sequential; side effects must be per-item
    /// independent (e.g. disjoint writes, atomic counters).
    pub fn par_for_each_init<T: Sync, S>(
        &self,
        items: &[T],
        grain: usize,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, &T) + Sync,
    ) {
        self.par_map_chunks(items, grain, |chunk| {
            let mut state = init();
            for item in chunk {
                f(&mut state, item);
            }
        });
    }

    /// Sort in place. `T: Copy + Ord` with a *total* order over all fields
    /// means the sorted sequence is unique, so the parallel merge path and
    /// `slice::sort_unstable` produce byte-identical output.
    pub fn par_sort_unstable<T: Copy + Ord + Send + Sync>(&self, v: &mut [T]) {
        let len = v.len();
        if self.pool.is_none() || len <= SORT_GRAIN {
            v.sort_unstable();
            return;
        }
        let runs = self.threads().min(len.div_ceil(SORT_GRAIN / 2)).max(2);
        let run_len = len.div_ceil(runs);
        self.scope(|s| {
            for chunk in v.chunks_mut(run_len) {
                s.spawn(move || chunk.sort_unstable());
            }
        });
        // Bottom-up parallel merge, ping-ponging between `v` and a copy.
        let mut buf: Vec<T> = v.to_vec();
        let mut width = run_len;
        let mut in_v = true;
        while width < len {
            if in_v {
                self.merge_pass(&*v, &mut buf, width);
            } else {
                self.merge_pass(&buf, v, width);
            }
            in_v = !in_v;
            width *= 2;
        }
        if !in_v {
            v.copy_from_slice(&buf);
        }
    }

    fn merge_pass<T: Copy + Ord + Send + Sync>(&self, src: &[T], dst: &mut [T], width: usize) {
        self.scope(|s| {
            let mut rest = dst;
            let mut start = 0;
            while start < src.len() {
                let mid = (start + width).min(src.len());
                let end = (start + 2 * width).min(src.len());
                let (out, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let (a, b) = (&src[start..mid], &src[mid..end]);
                s.spawn(move || merge_into(a, b, out));
                start = end;
            }
        });
    }
}

fn flatten<R>(parts: Vec<Vec<R>>) -> Vec<R> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

fn merge_into<T: Copy + Ord>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out[k] = a[i];
            i += 1;
        } else {
            out[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    out[k..k + (a.len() - i)].copy_from_slice(&a[i..]);
    k += a.len() - i;
    out[k..k + (b.len() - j)].copy_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn both() -> [Executor; 2] {
        [
            Executor::sequential(),
            Executor::new(ExecutionPolicy::Parallel { threads: 4 }),
        ]
    }

    #[test]
    fn policy_normalization_and_display() {
        assert_eq!(ExecutionPolicy::Sequential.threads(), 1);
        assert_eq!(ExecutionPolicy::Parallel { threads: 4 }.threads(), 4);
        assert!(!Executor::new(ExecutionPolicy::Parallel { threads: 1 }).is_parallel());
        assert!(Executor::new(ExecutionPolicy::Parallel { threads: 2 }).is_parallel());
        assert_eq!(ExecutionPolicy::Sequential.to_string(), "sequential");
        assert_eq!(
            ExecutionPolicy::Parallel { threads: 3 }.to_string(),
            "parallel(3)"
        );
    }

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [2, 3, 4, 8] {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads });
            assert_eq!(exec.par_map(&items, 1, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn par_flat_map_preserves_item_order() {
        let items: Vec<u32> = (0..5_000).collect();
        for exec in both() {
            let out = exec.par_flat_map(&items, 16, |&x, out| {
                if x % 3 == 0 {
                    out.push(x);
                    out.push(x + 1);
                }
            });
            let expect: Vec<u32> = items
                .iter()
                .filter(|&&x| x % 3 == 0)
                .flat_map(|&x| [x, x + 1])
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn par_filter_matches_sequential() {
        let items: Vec<i64> = (-4_000..4_000).collect();
        for exec in both() {
            let kept = exec.par_filter(&items, 64, |&x| x % 7 == 0);
            let expect: Vec<i64> = items.iter().copied().filter(|&x| x % 7 == 0).collect();
            assert_eq!(kept, expect);
        }
    }

    #[test]
    fn par_map_chunks_covers_every_item_exactly_once() {
        let items: Vec<u64> = (0..50_000).collect();
        for exec in both() {
            let sums = exec.par_map_chunks(&items, 128, |c| c.iter().sum::<u64>());
            assert_eq!(
                sums.iter().sum::<u64>(),
                items.iter().sum::<u64>(),
                "chunk sums must partition the total"
            );
        }
    }

    #[test]
    fn par_for_each_init_visits_all_with_chunk_state() {
        let items: Vec<u64> = (0..20_000).collect();
        for exec in both() {
            let total = AtomicU64::new(0);
            let inits = AtomicU64::new(0);
            exec.par_for_each_init(
                &items,
                256,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |acc, &x| {
                    *acc += 1;
                    total.fetch_add(x, Ordering::Relaxed);
                },
            );
            assert_eq!(total.load(Ordering::Relaxed), items.iter().sum::<u64>());
            assert!(inits.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn par_sort_sorts_and_matches_sequential() {
        // pseudo-random without rand: splitmix-ish scramble
        let mut items: Vec<u64> = (0..60_000u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 27)
            })
            .collect();
        let mut expect = items.clone();
        expect.sort_unstable();
        let exec = Executor::new(ExecutionPolicy::Parallel { threads: 4 });
        exec.par_sort_unstable(&mut items);
        assert_eq!(items, expect);
    }

    #[test]
    fn scope_joins_before_returning() {
        let exec = Executor::new(ExecutionPolicy::Parallel { threads: 4 });
        let counter = AtomicU64::new(0);
        exec.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // all spawned tasks completed (and their writes are visible)
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let exec = Executor::new(ExecutionPolicy::Parallel { threads: 2 });
        let counter = AtomicU64::new(0);
        exec.scope(|s| {
            for _ in 0..8 {
                let exec2 = exec.clone();
                let counter = &counter;
                s.spawn(move || {
                    exec2.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn join_returns_both_results() {
        for exec in both() {
            let (a, b) = exec.join(|| 6 * 7, || "ok");
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let exec = Executor::new(ExecutionPolicy::Parallel { threads: 2 });
        let result = std::panic::catch_unwind(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        });
        assert!(result.is_err(), "task panic must surface on the caller");
        // the pool stays usable afterwards
        assert_eq!(exec.par_map(&[1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for exec in both() {
            let empty: Vec<u64> = Vec::new();
            assert!(exec.par_map(&empty, 8, |x| *x).is_empty());
            assert!(exec.par_map_chunks(&empty, 8, |c| c.len()).is_empty());
            assert_eq!(exec.par_map(&[7u64], 8, |x| x + 1), vec![8]);
            let mut one = [3u64];
            exec.par_sort_unstable(&mut one);
            assert_eq!(one, [3]);
        }
    }
}
